"""Benchmark: the service tier under an injected fault schedule.

``service_swarm`` proves multi-process sharing is correct on a healthy disk;
this benchmark is the same claim on a *sick* one.  N service processes share
one catalog root while a seeded :mod:`repro.faults` schedule makes writes
fail transiently, fsyncs error, and checkpoint I/O stall — the failure modes
the retry policy, the circuit breaker and the lease table exist for — and the
books must still balance:

* every constraint text served by every worker is byte-identical to a direct
  in-process ``compose_chain`` — faults are retried or degraded around, they
  never change answers;
* the shared swarm log holds exactly N x ROUNDS versions — **zero lost
  updates** despite injected EIO inside the writes themselves;
* identical composed content still deduplicates to one catalog version;
* cross-process leases serialize the claimed work (each worker claims its
  round's job key before executing).

Recorded as the ``service_chaos`` workload in BENCH_compose.json: the
structural metrics (processes, rounds, request count, output identity, lost
versions, dedup) are gated exactly by ``check_regression.py``; the sustained
requests/second under faults and the number of faults survived are reported
for the trajectory but not gated (they measure the host and the schedule's
dice, not the algorithm).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower, compose_chain

#: Fixed (not env-tunable) so the gated structural metrics are deterministic.
PROCESSES = 2
ROUNDS = 3
NUM_HOPS = 6
SCHEMA_SIZE = 8

#: The fault schedule every worker runs under: seeded, so each worker's
#: per-point decisions replay across runs (interleaving between workers is
#: the only nondeterminism, and the assertions are interleaving-independent).
FAULT_SCHEDULE = (
    "seed=13;"
    "storage.write.begin:eio:p=0.08;"
    "storage.fsync:eio:p=0.04;"
    "checkpoint.persist:eio:p=0.15;"
    "checkpoint.load:slow:p=0.1:ms=1;"
    "catalog.shard.read:slow:p=0.05:ms=1"
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: One chaos worker: argv = root, output json path, worker tag, rounds.
#: Catalog puts get a small app-level retry loop on top of the built-in
#: per-write retries: with p=0.08 per write and 4 attempts inside, exhaustion
#: is rare but possible over a long run, and a worker dying to injected bad
#: luck would fail the zero-lost-versions accounting for the wrong reason.
_WORKER = """
import json, sys, time
from repro.catalog import MappingCatalog
from repro.schema.signature import RelationSchema, Signature
from repro.service import CompositionService, ServiceConfig

root, out_path, tag, rounds = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
catalog = MappingCatalog(root)

def put_retrying(op, attempts=8):
    for attempt in range(attempts):
        try:
            return op()
        except OSError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.005 * (attempt + 1))

served = set()
requests = 0
started = time.perf_counter()
config = ServiceConfig(
    micro_batch_wait_seconds=0.0,
    admission="block",
    deadline_seconds=120.0,
    lease_ttl_seconds=10.0,
)
with CompositionService(catalog, config) as svc:
    for round_index in range(rounds):
        result = svc.compose_catalog("chain", "history")
        requests += 1
        served.add(result.constraints.to_text())
        composed = svc.compose_chain(catalog.get_chain("history"))
        put_retrying(lambda: catalog.put_mapping(
            "composed", composed.to_mapping_with_residue()
        ))
        put_retrying(lambda: catalog.put_schema(
            "chaos-log",
            Signature((RelationSchema(f"L_{tag}_{round_index}", 1 + round_index % 4),)),
        ))
    lease_stats = svc.leases.stats() if svc.leases is not None else {}
elapsed = time.perf_counter() - started
payload = {
    "requests": requests,
    "seconds": elapsed,
    "served": sorted(served),
    "retries": catalog.stats()["retries"],
    "leases": lease_stats,
}
with open(out_path, "w") as handle:
    json.dump(payload, handle)
"""


def test_bench_service_chaos(benchmark, bench_params, bench_record, tmp_path):
    grower = ChainGrower(seed=bench_params["seed"] + 7, schema_size=SCHEMA_SIZE)
    chain = tuple(grower.grow_many(NUM_HOPS + 1))

    root = tmp_path / "shared-catalog"
    catalog = MappingCatalog(root)
    catalog.put_chain("history", chain)

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULTS"] = FAULT_SCHEDULE

    def run_chaos():
        workers = []
        outputs = []
        for index in range(PROCESSES):
            out_path = tmp_path / f"worker-{index}.json"
            fault_log = tmp_path / f"faults-{index}.jsonl"
            worker_env = dict(env)
            worker_env["REPRO_FAULTS_LOG"] = str(fault_log)
            outputs.append((out_path, fault_log))
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        _WORKER,
                        str(root),
                        str(out_path),
                        f"w{index}",
                        str(ROUNDS),
                    ],
                    env=worker_env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
        for worker in workers:
            out, err = worker.communicate(timeout=600)
            assert worker.returncode == 0, f"chaos worker failed:\n{out}\n{err}"
        reports = [json.loads(path.read_text()) for path, _ in outputs]
        faults_fired = sum(
            len(log.read_text().splitlines()) for _, log in outputs if log.exists()
        )
        return reports, faults_fired

    chaos_started = time.perf_counter()
    reports, faults_fired = run_chaos()
    chaos_seconds = time.perf_counter() - chaos_started
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Byte-identity: under the full schedule, every served text matches a
    # direct fault-free compose.
    reference = compose_chain(chain).constraints.to_text()
    outputs_identical = all(report["served"] == [reference] for report in reports)
    assert outputs_identical

    # No lost updates: N processes x ROUNDS distinct puts survived the faults.
    after = MappingCatalog(root)
    log_versions = len(after.versions("schema", "chaos-log"))
    lost_versions = PROCESSES * ROUNDS - log_versions
    assert lost_versions == 0, f"lost {lost_versions} chaos-log versions"
    # ...and identical composed content still deduplicated to one version.
    composed_versions = [e.version for e in after.versions("mapping", "composed")]
    assert composed_versions == [1]

    requests_total = sum(report["requests"] for report in reports)
    assert requests_total == PROCESSES * ROUNDS
    requests_per_second = requests_total / max(chaos_seconds, 1e-9)
    retries_absorbed = sum(
        report["retries"]["transient_errors"] for report in reports
    )

    bench_record(
        "service_chaos",
        processes=PROCESSES,
        rounds=ROUNDS,
        requests_total=requests_total,
        outputs_identical=outputs_identical,
        lost_versions=lost_versions,
        composed_versions=len(composed_versions),
        faults_fired=faults_fired,
        retries_absorbed=retries_absorbed,
        chaos_seconds=round(chaos_seconds, 4),
        requests_per_second=round(requests_per_second, 4),
    )
