"""Benchmark: incremental recomposition vs. from-scratch on an edit sequence.

The acceptance workload is the paper's schema-evolution loop: a 10-edit
sequence where every edit appends one mapping and the end-to-end composition
is rebuilt.  From scratch that costs 1+2+...+10 = 55 hops; the incremental
engine must replay at most 2 hops per edit on average (it replays exactly 1
for appends), be at least 2x faster end-to-end, and produce byte-identical
outputs after every edit.

Recorded as the ``evolution_incremental`` workload in BENCH_compose.json:
structural metrics (hop counts, operator count, output identity) are gated
exactly by ``check_regression.py``; the speedup is gated as a scale-free
ratio.  As in the engine benchmark, the speedup is asserted and recorded on
process CPU time (both contenders are single-threaded in-process loops, and
the incremental side is only milliseconds of work — on busy 1-CPU runners a
single scheduler stall would swamp a wall-clock ratio); wall-clock is
measured and recorded alongside.
"""

import gc
import time

from repro.engine import ChainGrower, IncrementalComposer, compose_chain


def _timed(fn):
    """Run ``fn`` once, returning (wall_seconds, cpu_seconds, result).

    The cyclic GC is paused over the call (the same trick BatchComposer
    uses during batches): the incremental side is only milliseconds of
    work, so a single generation-2 collection — whose cost scales with
    everything the surrounding pytest session has imported, not with this
    workload — would otherwise swamp the measured ratio.  Both contenders
    get identical treatment, so the gated speedup stays a pure measure of
    the algorithm.
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        result = fn()
        wall_elapsed = time.perf_counter() - wall_started
        cpu_elapsed = time.process_time() - cpu_started
    finally:
        if gc_was_enabled:
            gc.enable()
    return (wall_elapsed, cpu_elapsed, result)

#: The acceptance workload: 10 edits, each appending one mapping.  The schema
#: size keeps each hop substantial enough that the measured ratio reflects
#: composition work rather than timer noise.
NUM_EDITS = 10
SCHEMA_SIZE = 8


def _edit_prefixes(seed):
    grower = ChainGrower(seed=seed, schema_size=SCHEMA_SIZE)
    mappings = grower.grow_many(NUM_EDITS + 1)
    return [tuple(mappings[: k + 1]) for k in range(1, NUM_EDITS + 1)]


def _fingerprint(result):
    return (result.constraints.to_text(), tuple(result.residual_symbols))


def test_bench_incremental_beats_from_scratch(benchmark, bench_params, bench_record):
    prefixes = _edit_prefixes(bench_params["seed"])

    # Warm both code paths once on a disjoint chain so interpreter warm-up is
    # not part of the timing (same idiom as the engine benchmark).
    warm = ChainGrower(seed=bench_params["seed"] + 1, schema_size=4).grow_many(3)
    compose_chain(tuple(warm))
    IncrementalComposer().compose_chain(tuple(warm))

    from_scratch_seconds, from_scratch_cpu, scratch_results = _timed(
        lambda: [compose_chain(prefix) for prefix in prefixes]
    )

    def run_incremental():
        composer = IncrementalComposer()
        return [composer.compose_chain(prefix) for prefix in prefixes]

    incremental_seconds, incremental_cpu, incremental_results = _timed(run_incremental)
    benchmark.pedantic(run_incremental, rounds=1, iterations=1)

    # Byte-identical composed outputs after every edit.
    outputs_identical = all(
        _fingerprint(a) == _fingerprint(b)
        for a, b in zip(scratch_results, incremental_results)
    )
    assert outputs_identical

    # At most 2 hops replayed per edit on average (appends replay exactly 1).
    replayed = sum(result.replayed_hops for result in incremental_results)
    total_hops = sum(len(result.hops) for result in incremental_results)
    mean_replayed_per_edit = replayed / NUM_EDITS
    assert mean_replayed_per_edit <= 2.0, (
        f"replayed {replayed} hops over {NUM_EDITS} edits"
    )
    assert total_hops == NUM_EDITS * (NUM_EDITS + 1) // 2

    # At least 2x faster end-to-end than recomposing from scratch.
    speedup = from_scratch_cpu / incremental_cpu
    assert speedup >= 2.0, (
        f"incremental {incremental_cpu:.3f}s CPU vs "
        f"from-scratch {from_scratch_cpu:.3f}s CPU ({speedup:.2f}x; "
        f"wall {incremental_seconds:.3f}s vs {from_scratch_seconds:.3f}s)"
    )

    bench_record(
        "evolution_incremental",
        edits=NUM_EDITS,
        from_scratch_seconds=round(from_scratch_seconds, 4),
        incremental_seconds=round(incremental_seconds, 4),
        from_scratch_cpu_seconds=round(from_scratch_cpu, 4),
        incremental_cpu_seconds=round(incremental_cpu, 4),
        incremental_speedup=round(speedup, 4),
        hops_total=total_hops,
        hops_replayed=replayed,
        hops_replayed_ratio=round(replayed / total_hops, 4),
        mean_replayed_per_edit=round(mean_replayed_per_edit, 4),
        outputs_identical=outputs_identical,
        final_operator_count=incremental_results[-1].constraints.operator_count(),
    )
