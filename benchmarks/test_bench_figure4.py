"""Benchmark: Figure 4 — sorted execution time across runs ('no keys').

The paper uses this figure to justify reporting medians: most runs cluster
tightly while a few outliers skew the mean.  The benchmark regenerates the
sorted per-run times and checks the basic ordering statistics.
"""

from repro.experiments.figure4 import run_figure4


def test_bench_figure4(benchmark, bench_params):
    def workload():
        return run_figure4(
            schema_size=bench_params["schema_size"],
            num_edits=bench_params["num_edits"],
            runs=max(4, bench_params["runs"] * 2),
            seed=bench_params["seed"],
        )

    figure = benchmark.pedantic(workload, rounds=1, iterations=1)
    assert figure.sorted_durations == sorted(figure.sorted_durations)
    assert figure.median_seconds > 0.0
    assert figure.mean_seconds >= 0.0
    # The maximum is at least the median (outliers only ever push the mean up).
    assert figure.max_seconds >= figure.median_seconds
