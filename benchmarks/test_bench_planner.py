"""Benchmark: the cost-guided partitioned planner vs. fixed-order COMPOSE.

The acceptance workload is a seeded batch of multi-component composition
problems (16 independent components merged per problem — the shape sharded
metadata stores produce, where one mapping covers many unrelated schema
islands).  Fixed-order COMPOSE drags every per-symbol scan, equality split
and set rebuild across all components' constraints; the planner composes each
connected component of the symbol co-occurrence graph on its own small set,
cheapest eliminations first.  The planner must be >= 1.3x faster and its
outputs must stay semantically equivalent — every constructed satisfying
instance of the original chain must satisfy both outputs.

Recorded as the ``engine_partitioned`` workload in BENCH_compose.json:
structural metrics (problem/component counts, output operator count,
equivalence) are gated exactly by ``check_regression.py``; the speedup is
gated as a scale-free ratio.  As in the other engine benchmarks, the win is
asserted on process CPU time (both contenders are single-threaded in-process
loops; wall-clock on busy 1-CPU runners drowns in scheduler noise) while
wall-clock is measured and recorded alongside.
"""

import time

from repro.algebra.evaluation import SkolemInterpretation
from repro.compose import ComposerConfig, compose
from repro.constraints.satisfaction import satisfies_all
from repro.engine import (
    WorkloadConfig,
    generate_partitioned_workload,
    partitioned_forward_instance,
)
from repro.engine.workloads import forward_event_vector

#: The acceptance workload: each problem merges 16 independent two-mapping
#: components (schema size 4), so the whole-problem constraint set is ~16x
#: the size each elimination actually needs to look at.
NUM_PROBLEMS = 8
NUM_COMPONENTS = 16
SCHEMA_SIZE = 4

DEFAULT_SKOLEMS = SkolemInterpretation(
    default=lambda name, arguments: (name,) + tuple(arguments)
)


def _best_of_interleaved(fns, rounds=5):
    """Best-of-N measurement for several contenders, round-robin (shared idiom
    with ``test_bench_engine.py``: load spikes hit both contenders)."""
    wall = [[] for _ in fns]
    cpu = [[] for _ in fns]
    results = [None] * len(fns)
    for _ in range(rounds):
        for position, fn in enumerate(fns):
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            results[position] = fn()
            cpu[position].append(time.process_time() - cpu_started)
            wall[position].append(time.perf_counter() - wall_started)
    return [
        (min(wall_series), min(cpu_series), result)
        for wall_series, cpu_series, result in zip(wall, cpu, results)
    ]


def _acceptance_workload(seed):
    workload = generate_partitioned_workload(
        WorkloadConfig(
            num_problems=NUM_PROBLEMS,
            schema_size=SCHEMA_SIZE,
            keys_fraction=0.0,
            event_vector=forward_event_vector(),
            num_components=NUM_COMPONENTS,
            seed=seed,
        )
    )
    assert all(problem.num_components == NUM_COMPONENTS for problem in workload)
    return workload


def test_bench_planner_beats_fixed_order(benchmark, bench_params, bench_record):
    workload = _acceptance_workload(bench_params["seed"])
    fixed_config = ComposerConfig()
    cost_config = ComposerConfig.cost_guided()

    # Warm both code paths once so interpreter warm-up is not part of the timing.
    compose(workload[0].problem, fixed_config)
    compose(workload[0].problem, cost_config)

    (
        (fixed_seconds, fixed_cpu, fixed_results),
        (cost_seconds, cost_cpu, cost_results),
    ) = _best_of_interleaved(
        (
            lambda: [compose(p.problem, fixed_config) for p in workload],
            lambda: [compose(p.problem, cost_config) for p in workload],
        )
    )
    benchmark.pedantic(
        lambda: [compose(p.problem, cost_config) for p in workload],
        rounds=1,
        iterations=1,
    )

    # The planner actually decomposed the problems.
    assert all(result.components >= NUM_COMPONENTS for result in cost_results)
    assert all("planner" in result.phase_breakdown() for result in cost_results)

    # Semantic equivalence: every constructed satisfying instance of the
    # original constraints satisfies both outputs.
    outputs_equivalent = True
    for partitioned, fixed_result, cost_result in zip(
        workload, fixed_results, cost_results
    ):
        for instance_seed in range(2):
            instance = partitioned_forward_instance(
                partitioned, seed=partitioned.seed + instance_seed
            )
            assert satisfies_all(
                instance, partitioned.problem.all_constraints, skolems=DEFAULT_SKOLEMS
            ), f"{partitioned.name}: bad construction"
            outputs_equivalent = outputs_equivalent and satisfies_all(
                instance, fixed_result.constraints, skolems=DEFAULT_SKOLEMS
            )
            outputs_equivalent = outputs_equivalent and satisfies_all(
                instance, cost_result.constraints, skolems=DEFAULT_SKOLEMS
            )
    assert outputs_equivalent

    # The acceptance bar: >= 1.3x on CPU time over the same problems.
    speedup = fixed_cpu / cost_cpu
    assert speedup >= 1.3, (
        f"planner {cost_cpu:.3f}s CPU vs fixed order {fixed_cpu:.3f}s CPU "
        f"({speedup:.2f}x; wall {cost_seconds:.3f}s vs {fixed_seconds:.3f}s)"
    )

    bench_record(
        "engine_partitioned",
        problems=NUM_PROBLEMS,
        components_per_problem=NUM_COMPONENTS,
        fixed_seconds=round(fixed_seconds, 4),
        partitioned_seconds=round(cost_seconds, 4),
        fixed_cpu_seconds=round(fixed_cpu, 4),
        partitioned_cpu_seconds=round(cost_cpu, 4),
        # The gated ratio compares CPU seconds: scale-free and immune to
        # co-tenant load on 1-CPU runners.
        partitioned_speedup=round(speedup, 4),
        outputs_equivalent=outputs_equivalent,
        components_total=sum(result.components for result in cost_results),
        reorderings_total=sum(result.reorderings for result in cost_results),
        output_operator_count=sum(
            result.output_operator_count for result in cost_results
        ),
    )
