"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section on a scaled-down workload (so the whole suite runs in minutes on a
laptop) and checks the *shape* of the result — who wins, what gets harder —
rather than absolute numbers.  The workload sizes can be raised to the paper's
scale through the environment variables below.

The harness also emits machine-readable results: benchmarks opt in through
the ``bench_record`` fixture, and at session end the collected measurements
are written as BENCH_compose JSON so the performance trajectory is tracked
across PRs.  Local runs write the gitignored ``BENCH_compose.local.json``;
refreshing the committed ``BENCH_compose.json`` baseline requires pointing
``REPRO_BENCH_JSON`` at it explicitly.  ``benchmarks/check_regression.py``
compares two such files.

Environment variables
---------------------
REPRO_BENCH_RUNS        number of editing runs per configuration (default 2)
REPRO_BENCH_EDITS       number of edits per run (default 20)
REPRO_BENCH_SCHEMA_SIZE size of the initial schema (default 15)
REPRO_BENCH_JSON        output path of the machine-readable results
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

#: Collected measurements of this session: name -> {metric: value}.
_RECORDS: dict = {}


def _int_env(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_params() -> dict:
    """Scaled-down workload parameters (overridable via environment variables)."""
    return {
        "runs": _int_env("REPRO_BENCH_RUNS", 2),
        "num_edits": _int_env("REPRO_BENCH_EDITS", 20),
        "schema_size": _int_env("REPRO_BENCH_SCHEMA_SIZE", 15),
        "seed": 2006,
    }


@pytest.fixture(scope="session")
def bench_record():
    """Callable recording one workload's measurements for BENCH_compose.json.

    Usage: ``bench_record("figure6", wall_seconds=1.23, operator_count=456)``.
    Metrics must be JSON-serializable numbers/strings; recording the same
    workload twice merges the metric dictionaries.
    """

    def record(workload: str, **metrics) -> None:
        _RECORDS.setdefault(workload, {}).update(metrics)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS or exitstatus != 0:
        return
    baseline = Path(__file__).parent / "BENCH_compose.json"
    path = Path(os.environ.get("REPRO_BENCH_JSON", baseline))
    payload = {
        "schema_version": 1,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "params": {
            "runs": _int_env("REPRO_BENCH_RUNS", 2),
            "num_edits": _int_env("REPRO_BENCH_EDITS", 20),
            "schema_size": _int_env("REPRO_BENCH_SCHEMA_SIZE", 15),
        },
        "workloads": _RECORDS,
    }
    if path == baseline and baseline.exists() and "REPRO_BENCH_JSON" not in os.environ:
        # Never clobber the committed trajectory point implicitly: local runs
        # land in a gitignored sibling file.  Refreshing the baseline is an
        # explicit act — point REPRO_BENCH_JSON at it.
        path = baseline.with_suffix(".local.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
