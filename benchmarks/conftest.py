"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section on a scaled-down workload (so the whole suite runs in minutes on a
laptop) and checks the *shape* of the result — who wins, what gets harder —
rather than absolute numbers.  The workload sizes can be raised to the paper's
scale through the environment variables below.

Environment variables
---------------------
REPRO_BENCH_RUNS        number of editing runs per configuration (default 2)
REPRO_BENCH_EDITS       number of edits per run (default 20)
REPRO_BENCH_SCHEMA_SIZE size of the initial schema (default 15)
"""

from __future__ import annotations

import os

import pytest


def _int_env(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_params() -> dict:
    """Scaled-down workload parameters (overridable via environment variables)."""
    return {
        "runs": _int_env("REPRO_BENCH_RUNS", 2),
        "num_edits": _int_env("REPRO_BENCH_EDITS", 20),
        "schema_size": _int_env("REPRO_BENCH_SCHEMA_SIZE", 15),
        "seed": 2006,
    }
