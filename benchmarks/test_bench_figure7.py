"""Benchmark: Figure 7 — schema reconciliation vs. number of edits.

The paper's claim: longer edit sequences make composition harder — the
fraction of eliminated symbols drops while the running time grows.
"""

import time

from repro.experiments.figure7 import run_figure7


def test_bench_figure7(benchmark, bench_params, bench_record):
    edit_counts = [5, 15, 30]

    def workload():
        return run_figure7(
            edit_counts=edit_counts,
            schema_size=max(8, bench_params["schema_size"] // 2),
            tasks_per_point=max(1, bench_params["runs"] // 2),
            seed=bench_params["seed"],
        )

    started = time.perf_counter()
    figure = benchmark.pedantic(workload, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - started

    fractions = figure.fraction_series()
    times = figure.time_series()
    assert len(fractions) == len(edit_counts)
    # More edits never make the composition easier, and the cost grows.
    assert fractions[-1] <= fractions[0] + 0.1
    assert times[-1] >= times[0] * 0.5
    assert all(0.0 <= value <= 1.0 for value in fractions)

    bench_record(
        "figure7",
        wall_seconds=round(wall_seconds, 4),
        fractions=[round(f, 4) for f in fractions],
    )
