"""Benchmark: the thread/process crossover for planner component sizes.

The ROADMAP's open question from the planner PR: per-component process tasks
pay pickling of component constraint sets, so parallel backends only win once
components are large enough — *where* is the crossover?  This sweep measures
``run_partitioned`` on the serial, thread and process backends over three
component scales (the per-component schema size drives the constraint-set
size each sub-task composes and, for the process backend, pickles).

The numbers are recorded — per size and backend, plus the process-vs-serial
ratio — as the ``planner_crossover`` workload in BENCH_compose.json so the
trajectory is machine-readable, but **not gated**: which backend wins is a
property of the host (core count, fork cost), not of the algorithm, and CI
runners range from 1 to many cores.  What *is* asserted is correctness —
every backend must succeed on every problem and produce byte-identical
outputs.  The interpretation (when to pick which backend) lives in the
README's "when to use which backend" note, which these measurements back.
"""

import time

from repro.engine import BatchComposer, WorkloadConfig, generate_partitioned_workload
from repro.engine.batch import BatchConfig
from repro.engine.workloads import forward_event_vector

#: Per-component schema sizes of the sweep: the paper-scale small components
#: the planner usually sees, and two progressively heavier scales.
COMPONENT_SCALES = (("small", 3), ("medium", 6), ("large", 9))
NUM_PROBLEMS = 3
NUM_COMPONENTS = 8
BACKENDS = ("serial", "thread", "process")


def _workload(schema_size, seed):
    return generate_partitioned_workload(
        WorkloadConfig(
            num_problems=NUM_PROBLEMS,
            schema_size=schema_size,
            keys_fraction=0.0,
            event_vector=forward_event_vector(),
            num_components=NUM_COMPONENTS,
            seed=seed,
        )
    )


def _constraint_texts(report):
    return [result.constraints.to_text() for result in report.results()]


def test_bench_backend_crossover(benchmark, bench_params, bench_record):
    metrics = {
        "problems": NUM_PROBLEMS,
        "components_per_problem": NUM_COMPONENTS,
    }
    for label, schema_size in COMPONENT_SCALES:
        workload = _workload(schema_size, bench_params["seed"])
        reference = None
        for backend in BACKENDS:
            composer = BatchComposer(
                BatchConfig(backend=backend, max_workers=4)
            )
            started = time.perf_counter()
            report = composer.run_partitioned(workload)
            elapsed = time.perf_counter() - started
            assert report.all_succeeded, report.summary()
            texts = _constraint_texts(report)
            if reference is None:
                reference = texts
            else:
                # Byte-identical outputs across backends at every scale.
                assert texts == reference, f"{backend} diverged at scale {label}"
            metrics[f"{backend}_{label}_seconds"] = round(elapsed, 4)
        metrics[f"process_vs_serial_{label}"] = round(
            metrics[f"serial_{label}_seconds"]
            / max(metrics[f"process_{label}_seconds"], 1e-9),
            4,
        )
    benchmark.pedantic(
        lambda: BatchComposer(BatchConfig(backend="serial")).run_partitioned(
            _workload(COMPONENT_SCALES[0][1], bench_params["seed"])
        ),
        rounds=1,
        iterations=1,
    )
    bench_record("planner_crossover", **metrics)
