#!/usr/bin/env python
"""Compare a fresh BENCH_compose.json against the committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json]

CI runners differ wildly in absolute speed, so raw wall-clock seconds are
reported but not gated.  What is gated:

* **structural metrics must match exactly** — operator counts and eliminated
  fractions are deterministic, so any drift means the algorithm's outputs
  changed;
* **scale-free ratios must not regress by more than 25%** — the batch-
  vs-serial speedup and the cache hit rate compare two measurements taken on
  the same machine in the same process, so they are stable across hosts.

Exits non-zero on any violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Metrics compared exactly (deterministic outputs of the algorithm).
EXACT_METRICS = {
    "figure6": (
        "fractions_complete",
        "fractions_no_view_unfolding",
        "fractions_no_right_compose",
    ),
    "figure7": ("fractions",),
    "engine_chain_batch": ("output_operator_count", "problems"),
    "engine_partitioned": (
        "problems",
        "components_per_problem",
        "components_total",
        "outputs_equivalent",
        "output_operator_count",
    ),
    "evolution_incremental": (
        "edits",
        "hops_total",
        "hops_replayed",
        "hops_replayed_ratio",
        "outputs_identical",
        "final_operator_count",
    ),
    "service_warm_restart": (
        "hops_total",
        "hops_replayed_warm",
        "outputs_identical",
        "disk_checkpoints",
        "final_operator_count",
    ),
    "service_swarm": (
        "processes",
        "rounds",
        "requests_total",
        "outputs_identical",
        "lost_versions",
        "composed_versions",
    ),
    "service_chaos": (
        "processes",
        "rounds",
        "requests_total",
        "outputs_identical",
        "lost_versions",
        "composed_versions",
    ),
    "service_failover": (
        "processes",
        "writes_total",
        "writes_acknowledged",
        "outputs_identical",
        "lost_versions",
        "failovers_observed",
    ),
    "service_election": (
        "processes",
        "writes_total",
        "writes_acknowledged",
        "outputs_identical",
        "lost_versions",
        "stale_epoch_rejected",
    ),
}

#: Metrics gated as ratios: current must be >= baseline * (1 - tolerance).
RATIO_METRICS = {
    "engine_chain_batch": ("batch_speedup_vs_serial", "cache_hit_rate"),
    "engine_partitioned": ("partitioned_speedup",),
    "evolution_incremental": ("incremental_speedup",),
    "service_warm_restart": ("warm_speedup",),
}

TOLERANCE = 0.25


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    current_path = Path(argv[1])
    baseline_path = (
        Path(argv[2]) if len(argv) > 2 else Path(__file__).parent / "BENCH_compose.json"
    )
    current_payload = json.loads(current_path.read_text())
    baseline_payload = json.loads(baseline_path.read_text())
    current = current_payload["workloads"]
    baseline = baseline_payload["workloads"]

    failures = []
    if current_payload.get("params") != baseline_payload.get("params"):
        failures.append(
            "workload params differ: current "
            f"{current_payload.get('params')} vs baseline {baseline_payload.get('params')} "
            "(set REPRO_BENCH_* to the baseline's values)"
        )
    for workload, metrics in EXACT_METRICS.items():
        if workload not in current or workload not in baseline:
            failures.append(f"{workload}: missing from current or baseline results")
            continue
        for metric in metrics:
            got = current[workload].get(metric)
            want = baseline[workload].get(metric)
            if got != want:
                failures.append(f"{workload}.{metric}: expected {want!r}, got {got!r}")

    for workload, metrics in RATIO_METRICS.items():
        for metric in metrics:
            got = current.get(workload, {}).get(metric)
            want = baseline.get(workload, {}).get(metric)
            if got is None or want is None:
                failures.append(f"{workload}.{metric}: missing measurement")
                continue
            floor = want * (1.0 - TOLERANCE)
            if got < floor:
                failures.append(
                    f"{workload}.{metric}: {got:.4f} regressed more than "
                    f"{TOLERANCE:.0%} below the baseline {want:.4f} (floor {floor:.4f})"
                )

    def _wall(record: dict):
        for metric in (
            "wall_seconds",
            "batch_seconds",
            "incremental_seconds",
            "partitioned_seconds",
            "cold_seconds",
            "swarm_seconds",
            "chaos_seconds",
            "failover_seconds",
            "election_seconds",
        ):
            if record.get(metric) is not None:
                return record[metric]
        return None

    for workload in sorted(set(current) | set(baseline)):
        cur_s = _wall(current.get(workload, {}))
        base_s = _wall(baseline.get(workload, {}))
        print(f"{workload:24s} baseline {base_s!s:>10}s  current {cur_s!s:>10}s")

    if failures:
        print("\nREGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno regressions against the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
