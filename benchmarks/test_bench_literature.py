"""Benchmark: the literature composition problems (the paper's first data set).

The paper uses 22 problems from the literature as a correctness suite; this
benchmark measures how long the composition algorithm takes to work through
the whole suite and asserts that every documented outcome is reproduced.
"""

from repro.experiments.literature_study import run_literature_study


def test_bench_literature_suite(benchmark):
    study = benchmark(run_literature_study)
    assert study.total_problems >= 22
    # Every problem with a documented outcome must match it.
    assert study.matching_expectations == study.total_problems
    # The paper reports eliminating 50-100% of symbols across composition tasks.
    assert study.fraction_symbols_eliminated() >= 0.5
