"""Benchmark: Figure 6 — schema reconciliation vs. intermediate schema size.

The paper's claims: a larger intermediate schema makes the composition easier
(the two edit sequences interact less), and disabling view unfolding or right
compose eliminates fewer symbols.
"""

import time

from repro.experiments.figure6 import run_figure6


def test_bench_figure6(benchmark, bench_params, bench_record):
    sizes = [6, 12, 24]

    def workload():
        return run_figure6(
            schema_sizes=sizes,
            num_edits=max(10, bench_params["num_edits"] // 2),
            tasks_per_point=max(1, bench_params["runs"] // 2),
            seed=bench_params["seed"],
        )

    started = time.perf_counter()
    figure = benchmark.pedantic(workload, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - started

    complete = figure.series("complete")
    # Larger intermediate schemas are easier (paper's main observation for Fig. 6);
    # allow a small tolerance for the scaled-down workload.
    assert complete[-1] >= complete[0] - 0.1
    # The crippled configurations never beat the complete algorithm (averaged over sizes).
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - tiny local helper
    assert mean(figure.series("no view unfolding")) <= mean(complete) + 1e-9
    assert mean(figure.series("no right compose")) <= mean(complete) + 1e-9

    bench_record(
        "figure6",
        wall_seconds=round(wall_seconds, 4),
        fractions_complete=[round(f, 4) for f in complete],
        fractions_no_view_unfolding=[
            round(f, 4) for f in figure.series("no view unfolding")
        ],
        fractions_no_right_compose=[
            round(f, 4) for f in figure.series("no right compose")
        ],
    )
