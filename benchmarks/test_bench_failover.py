"""Benchmark: the kill-the-primary failover drill, measured.

``service_chaos`` proves one shared root survives a sick disk; this drill
proves the *replicated* tier survives losing the primary outright.  Three
processes — a primary service, a follower tailing its journal, and the
health-routing front tier — take a write load through the router; the
primary is SIGKILLed mid-load (with a seeded fault schedule tearing journal
appends underneath it first), the follower is promoted, and the load
finishes through the promoted replica.

The books that must balance (gated exactly by ``check_regression.py``):

* **zero lost versions** — every write acknowledged through the router
  before the kill is present in the promoted catalog;
* **fingerprint identity** — the promoted catalog's stored versions carry
  exactly the fingerprints a single-process reference run produces, so
  replication + promotion changed nothing about the content;
* the structural shape of the drill (process count, write counts).

Reported for the trajectory but not gated (they measure the host): the
requests/second sustained through the router before and after failover, the
journal entries the promotion's final catch-up drained, and the wall time
from SIGKILL to the first write through the promoted replica.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower, compose_chain
from repro.textio.records import chain_to_text

PROCESSES = 3
WRITES_BEFORE_KILL = 4
WRITES_AFTER_PROMOTE = 4
NUM_HOPS = 4
SCHEMA_SIZE = 8

#: Seeded journal chaos on the primary: ~10% of appends tear (bounded), the
#: catalog's retry heals every tear — acknowledged still means journaled.
FAULT_SCHEDULE = "seed=13;journal.append.torn:torn:p=0.1:limit=3"

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_PRIMARY = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import CompositionService, ServiceConfig, ServiceHTTPServer

catalog = MappingCatalog(sys.argv[1])
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_FOLLOWER = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, ReplicationFollower, ServiceConfig, ServiceHTTPServer,
    open_source,
)

catalog = MappingCatalog(sys.argv[1])
follower = ReplicationFollower(
    catalog, open_source(sys.argv[2]), poll_interval_seconds=0.05
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, follower=follower)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_ROUTER = """
import sys, time
from repro.service import RouterHTTPServer

router = RouterHTTPServer(
    sys.argv[1:], port=0, health_interval_seconds=0.1, health_timeout_seconds=1.0
).start()
print(f"ready {router.address[1]}", flush=True)
while True:
    time.sleep(1)
"""


def _spawn(code, *args, env=None):
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _await_ready(proc):
    line = proc.stdout.readline()
    assert line.startswith("ready "), f"worker did not come up: {line!r}"
    return int(line.split()[1])


def _post(url, body=b"", timeout=120):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _get_json(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def test_bench_service_failover(benchmark, bench_params, bench_record, tmp_path):
    grower = ChainGrower(seed=bench_params["seed"] + 19, schema_size=SCHEMA_SIZE)
    hops = tuple(grower.grow_many(NUM_HOPS + WRITES_BEFORE_KILL + WRITES_AFTER_PROMOTE))
    total_writes = WRITES_BEFORE_KILL + WRITES_AFTER_PROMOTE
    chains = [hops[index : index + NUM_HOPS] for index in range(total_writes)]

    primary_root = tmp_path / "primary"
    follower_root = tmp_path / "follower"

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    primary_env = dict(env)
    primary_env["REPRO_FAULTS"] = FAULT_SCHEDULE
    primary_env["REPRO_FAULTS_LOG"] = str(tmp_path / "primary-faults.jsonl")

    procs = []
    try:
        primary = _spawn(_PRIMARY, str(primary_root), env=primary_env)
        procs.append(primary)
        primary_base = f"http://127.0.0.1:{_await_ready(primary)}"
        follower = _spawn(_FOLLOWER, str(follower_root), str(primary_root), env=env)
        procs.append(follower)
        follower_base = f"http://127.0.0.1:{_await_ready(follower)}"
        router = _spawn(_ROUTER, primary_base, follower_base, env=env)
        procs.append(router)
        router_base = f"http://127.0.0.1:{_await_ready(router)}"

        # Phase 1: write load through the router against the live primary.
        acknowledged = []
        phase1_started = time.perf_counter()
        for index in range(WRITES_BEFORE_KILL):
            name = f"drill-{index}"
            status, _, headers = _post(
                f"{router_base}/compose?store={name}",
                chain_to_text(chains[index]).encode(),
            )
            assert status == 200
            if "X-Repro-Store-Dropped" not in headers:
                acknowledged.append(name)
        phase1_seconds = time.perf_counter() - phase1_started

        # The primary dies mid-load: SIGKILL, no cleanup, no flush.
        lag_payload = _get_json(f"{follower_base}/healthz")
        killed_at = time.perf_counter()
        primary.kill()
        primary.wait(timeout=60)

        # Promote the follower; its final catch-up drains the dead primary's
        # journal from disk.
        promote_started = time.perf_counter()
        _, body, _ = _post(f"{follower_base}/admin/promote")
        promote_report = json.loads(body)
        promote_seconds = time.perf_counter() - promote_started
        assert promote_report["promoted"] is True

        # Wait for the router's health loop to observe the role flip, then
        # finish the load through the promoted replica.
        first_write_seconds = None
        for index in range(WRITES_BEFORE_KILL, total_writes):
            name = f"drill-{index}"
            body = chain_to_text(chains[index]).encode()
            while True:
                try:
                    status, _, headers = _post(
                        f"{router_base}/compose?store={name}", body
                    )
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 503:
                        raise
                    time.sleep(0.05)  # the router has not seen the promotion yet
            assert status == 200
            if first_write_seconds is None:
                first_write_seconds = time.perf_counter() - killed_at
            if "X-Repro-Store-Dropped" not in headers:
                acknowledged.append(name)
        phase2_seconds = time.perf_counter() - killed_at
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

        router_status = _get_json(f"{router_base}/router/status")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.communicate()

    # Zero lost versions, fingerprint-identical to a single-process reference.
    promoted = MappingCatalog(follower_root)
    reference_root = tmp_path / "reference"
    reference = MappingCatalog(reference_root)
    outputs_identical = True
    lost_versions = 0
    for index, name in enumerate(f"drill-{n}" for n in range(total_writes)):
        if name not in acknowledged:
            continue
        composed = compose_chain(chains[index]).to_mapping_with_residue()
        expected = reference.put_mapping(name, composed).fingerprint
        if name not in promoted.names("mapping"):
            lost_versions += 1
            continue
        if promoted.entry("mapping", name).fingerprint != expected:
            outputs_identical = False
    assert lost_versions == 0, f"failover lost {lost_versions} acknowledged writes"
    assert outputs_identical, "promoted catalog diverged from the reference"

    writes_per_second = len(acknowledged) / max(phase1_seconds + phase2_seconds, 1e-9)
    replication = lag_payload.get("replication", {})

    bench_record(
        "service_failover",
        processes=PROCESSES,
        writes_total=total_writes,
        writes_acknowledged=len(acknowledged),
        lost_versions=lost_versions,
        outputs_identical=outputs_identical,
        failovers_observed=router_status["failovers_observed"],
        request_retries=router_status["request_retries"],
        catch_up_entries=promote_report["entries_applied"],
        lag_before_kill=replication.get("lag_entries"),
        promote_seconds=round(promote_seconds, 4),
        first_write_after_kill_seconds=round(first_write_seconds or 0.0, 4),
        failover_seconds=round(phase2_seconds, 4),
        writes_per_second=round(writes_per_second, 4),
    )
