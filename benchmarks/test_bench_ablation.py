"""Ablation benchmark: contribution of the individual design choices.

DESIGN.md calls out three design decisions of the algorithm beyond the
paper's headline configurations: the left-compose step (the paper's new
technique), the best-effort retry of leftover symbols, and the output
simplification.  This benchmark measures the editing workload with each of
them toggled and checks that none of the ablations *improves* the
symbol-eliminating power (i.e. each feature pays its way or is neutral).
"""

from repro.compose.config import ComposerConfig
from repro.evolution.scenarios import run_editing_scenario


def _total_fraction(composer_config: ComposerConfig, retry_leftovers: bool, params) -> float:
    eliminated = 0
    attempted = 0
    for run_index in range(params["runs"]):
        result = run_editing_scenario(
            schema_size=params["schema_size"],
            num_edits=params["num_edits"],
            seed=params["seed"] + run_index,
            composer_config=composer_config,
            retry_leftovers=retry_leftovers,
        )
        for record in result.records:
            attempted += len(record.consumed_symbols)
            eliminated += len(record.consumed_eliminated)
    return eliminated / attempted if attempted else 1.0


def test_bench_ablation(benchmark, bench_params):
    def workload():
        return {
            "full": _total_fraction(ComposerConfig.default(), True, bench_params),
            "no left compose": _total_fraction(
                ComposerConfig.no_left_compose(), True, bench_params
            ),
            "no retry of leftovers": _total_fraction(
                ComposerConfig.default(), False, bench_params
            ),
            "no output simplification": _total_fraction(
                ComposerConfig(simplify_output=False), True, bench_params
            ),
        }

    fractions = benchmark.pedantic(workload, rounds=1, iterations=1)
    full = fractions["full"]
    assert full >= 0.5
    # No ablation may *increase* the fraction of eliminated symbols beyond noise.
    for name, value in fractions.items():
        assert value <= full + 0.05, f"ablation {name!r} unexpectedly beats the full algorithm"
    # Output simplification does not change which symbols get eliminated.
    assert abs(fractions["no output simplification"] - full) <= 0.05
