"""Benchmark: Figure 2 — fraction of symbols eliminated per primitive.

Regenerates the per-primitive elimination-success series for the paper's four
configurations ('no keys', 'keys', 'no unfolding', 'no right compose') on a
scaled-down schema-editing workload, and checks the qualitative claims of
Section 4.2:

* the algorithm eliminates a large share of the symbols overall,
* adding keys does not substantially change the elimination rate,
* disabling view unfolding or right compose weakens the algorithm.
"""

from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import run_editing_study


def test_bench_figure2(benchmark, bench_params):
    def workload():
        study = run_editing_study(
            schema_size=bench_params["schema_size"],
            num_edits=bench_params["num_edits"],
            runs=bench_params["runs"],
            seed=bench_params["seed"],
        )
        return run_figure2(study=study)

    figure = benchmark.pedantic(workload, rounds=1, iterations=1)
    study = figure.study

    complete = study.total_fraction_eliminated("no keys")
    keyed = study.total_fraction_eliminated("keys")
    no_unfolding = study.total_fraction_eliminated("no unfolding")
    no_right = study.total_fraction_eliminated("no right compose")

    # The paper: "it eliminated 50-100% of the symbols" across composition tasks.
    assert complete >= 0.5
    # Keys barely change the symbol-eliminating power (allow a generous band).
    assert abs(complete - keyed) <= 0.35
    # Crippled configurations never beat the complete algorithm.
    assert no_unfolding <= complete + 1e-9
    assert no_right <= complete + 1e-9

    # The figure itself must cover the full primitive axis for the main config.
    assert figure.series("no keys")
