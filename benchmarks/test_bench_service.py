"""Benchmark: the serving layer's durability — cold start vs. warm restart.

The acceptance workload simulates a service restart: a mapping chain is
registered in a catalog, composed once through the composition service (cold
— every hop computed, every checkpoint written through to disk), and then the
whole serving stack is torn down and rebuilt on the same catalog root (a
fresh :class:`MappingCatalog` + :class:`CompositionService` is exactly what a
new process constructs — ``tests/test_cli.py`` proves the same reuse across
real processes).  The warm recomposition must

* replay **zero** hops (the persistent checkpoint store answers the deepest
  prefix probe from disk),
* produce byte-identical outputs, and
* be at least 2x faster end-to-end than the cold serve — asserted on process
  CPU time, as in the other engine benchmarks (both contenders are
  deterministic in-process work; wall-clock on busy CI runners drowns in
  scheduler noise), with wall-clock recorded alongside.

Recorded as the ``service_warm_restart`` workload in BENCH_compose.json:
structural metrics (hop counts, checkpoint counts, output identity, operator
count) are gated exactly by ``check_regression.py``; the cold/warm speedup is
gated as a scale-free ratio.
"""

import time

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower
from repro.service import CompositionService, ServiceConfig

#: The acceptance workload: one 14-hop chain over a 14-relation schema —
#: large enough that the cold composition dominates scheduling overhead.
#: Fixed (not env-tunable) so the gated structural metrics are deterministic.
NUM_HOPS = 14
SCHEMA_SIZE = 14
ROUNDS = 3


def _serve_once(root):
    """One full serving stack lifetime on ``root``: construct, serve, tear down."""
    catalog = MappingCatalog(root)
    with CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0)) as svc:
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        result = svc.compose_catalog("chain", "history")
        return (
            time.perf_counter() - wall_started,
            time.process_time() - cpu_started,
            result,
        )


def test_bench_service_warm_restart(benchmark, bench_params, bench_record, tmp_path):
    chain = ChainGrower(seed=bench_params["seed"], schema_size=SCHEMA_SIZE).grow_many(
        NUM_HOPS + 1
    )

    # Best-of-N cold serves, each on a fresh catalog root (no stored state).
    cold_wall, cold_cpu = [], []
    cold_result = None
    for round_index in range(ROUNDS):
        root = tmp_path / f"cold{round_index}"
        MappingCatalog(root).put_chain("history", chain)
        wall, cpu, cold_result = _serve_once(root)
        cold_wall.append(wall)
        cold_cpu.append(cpu)
    assert cold_result.reused_hops == 0

    # One warmed root, then best-of-N restarts against it.
    warm_root = tmp_path / "warm"
    warm_catalog = MappingCatalog(warm_root)
    warm_catalog.put_chain("history", chain)
    _serve_once(warm_root)
    disk_checkpoints = warm_catalog.checkpoints.disk_entries()

    warm_wall, warm_cpu = [], []
    warm_result = None
    for _ in range(ROUNDS):
        wall, cpu, warm_result = _serve_once(warm_root)  # fresh stack = restart
        warm_wall.append(wall)
        warm_cpu.append(cpu)
    benchmark.pedantic(lambda: _serve_once(warm_root), rounds=1, iterations=1)

    # Durability: the restarted stack replays nothing and answers identically.
    assert warm_result.reused_hops == len(warm_result.hops) == NUM_HOPS
    outputs_identical = (
        warm_result.constraints.to_text() == cold_result.constraints.to_text()
        and warm_result.residual_symbols == cold_result.residual_symbols
    )
    assert outputs_identical
    assert disk_checkpoints == NUM_HOPS

    warm_speedup = min(cold_cpu) / max(min(warm_cpu), 1e-9)
    assert warm_speedup >= 2.0, (
        f"warm restart must be >= 2x faster: cold {min(cold_cpu):.4f}s "
        f"vs warm {min(warm_cpu):.4f}s"
    )

    bench_record(
        "service_warm_restart",
        hops_total=NUM_HOPS,
        hops_replayed_warm=warm_result.replayed_hops,
        outputs_identical=outputs_identical,
        disk_checkpoints=disk_checkpoints,
        final_operator_count=warm_result.constraints.operator_count(),
        cold_seconds=round(min(cold_wall), 4),
        cold_cpu_seconds=round(min(cold_cpu), 4),
        warm_seconds=round(min(warm_wall), 4),
        warm_cpu_seconds=round(min(warm_cpu), 4),
        warm_speedup=round(warm_speedup, 4),
    )
