"""Benchmark: the batch composition engine vs. a naive serial loop.

The acceptance workload is a seeded batch of >= 50 randomized chained
composition problems (chain length >= 4) from the workload generator.  The
engine must (a) complete the whole batch with zero crashes and (b) beat a
naive per-problem loop for the same workload.

The engine's edge on a single CPU comes from the shared expression cache:
repeated sub-expressions across hops and problems are simplified once and
symbol-mention probes become memo lookups.  The engine is pinned to the
``serial`` backend here so the comparison measures exactly that, independent
of the host's core count (the thread backend cannot beat the GIL on this
pure-Python workload; the process backend only pays off for much larger
problems).  Because both contenders are single-threaded in-process loops,
the win is *asserted* on process CPU time — immune to other processes
stealing the core on busy 1-CPU runners, where the few-percent wall margin
drowns in scheduler noise — while wall-clock is still measured and recorded.
"""

import time

from repro.engine import (
    BatchComposer,
    BatchConfig,
    WorkloadConfig,
    compose_chain,
    generate_workload,
)


def _best_of_interleaved(fns, rounds=5):
    """Best-of-N measurement for several contenders, round-robin.

    The batch-vs-serial margin on this workload is a few percent, so the
    contenders are measured in alternating rounds — a load spike or thermal
    drift then hits both, instead of biasing whichever ran second — and the
    minima get enough samples to shake off scheduler noise.  Returns
    ``[(best_wall_seconds, best_cpu_seconds, last_result), ...]`` in input
    order.
    """
    wall = [[] for _ in fns]
    cpu = [[] for _ in fns]
    results = [None] * len(fns)
    for _ in range(rounds):
        for position, fn in enumerate(fns):
            wall_started = time.perf_counter()
            cpu_started = time.process_time()
            results[position] = fn()
            cpu[position].append(time.process_time() - cpu_started)
            wall[position].append(time.perf_counter() - wall_started)
    return [
        (min(wall_series), min(cpu_series), result)
        for wall_series, cpu_series, result in zip(wall, cpu, results)
    ]


def _acceptance_workload(seed):
    config = WorkloadConfig(
        num_problems=50,
        min_chain_length=10,
        max_chain_length=14,
        schema_size=5,
        seed=seed,
    )
    workload = generate_workload(config)
    assert len(workload) >= 50
    assert all(problem.chain_length >= 4 for problem in workload)
    return workload


def test_bench_engine_batch_beats_serial(benchmark, bench_params, bench_record):
    workload = _acceptance_workload(bench_params["seed"])
    # Hop checkpoints are disabled so repeat runs of the same workload keep
    # exercising the expression cache (a warm checkpoint store would turn
    # every measured round into pure replay); the incremental benchmark
    # (test_bench_incremental.py) measures the checkpoint effect.
    composer = BatchComposer(BatchConfig(backend="serial", share_checkpoints=False))

    # Warm both paths once so interpreter warm-up is not part of the timing.
    for problem in workload[:2]:
        compose_chain(problem.mappings)
    composer.run_chains(workload[:2])

    (
        (serial_seconds, serial_cpu, serial_results),
        (batch_seconds, batch_cpu, report),
    ) = _best_of_interleaved(
        (
            lambda: [compose_chain(problem.mappings) for problem in workload],
            lambda: composer.run_chains(workload),
        )
    )
    benchmark.pedantic(lambda: composer.run_chains(workload), rounds=1, iterations=1)

    # Zero crashes over the full acceptance workload.
    assert len(report) == len(workload)
    assert report.all_succeeded, report.summary()

    # Batch mode must do less work than the naive serial loop on the same
    # workload (CPU time: both loops are single-threaded and in-process, so
    # this is the noise-immune form of "batch is faster").
    assert batch_cpu < serial_cpu, (
        f"batch {batch_cpu:.3f}s CPU did not beat serial {serial_cpu:.3f}s CPU "
        f"(wall: {batch_seconds:.3f}s vs {serial_seconds:.3f}s)"
    )

    # The shared cache is doing real work, and the results are identical to
    # the serial loop's (memoization must not change any output).
    assert report.cache_stats is not None
    assert report.cache_stats["hit_rate"] > 0.2
    for serial_result, item in zip(serial_results, report.items):
        assert serial_result.constraints == item.result.constraints
        assert serial_result.residual_symbols == item.result.residual_symbols

    bench_record(
        "engine_chain_batch",
        serial_seconds=round(serial_seconds, 4),
        batch_seconds=round(batch_seconds, 4),
        serial_cpu_seconds=round(serial_cpu, 4),
        batch_cpu_seconds=round(batch_cpu, 4),
        # The gated ratio compares CPU seconds: scale-free and immune to
        # co-tenant load on 1-CPU runners.
        batch_speedup_vs_serial=round(serial_cpu / batch_cpu, 4),
        cache_hit_rate=round(report.cache_stats["hit_rate"], 4),
        output_operator_count=sum(
            item.result.constraints.operator_count() for item in report.items
        ),
        problems=len(report),
    )


def test_bench_engine_pairwise_problems(benchmark, bench_params):
    """The pair-wise entry point composes every adjacent hop of the workload."""
    from repro.engine import pairwise_problems

    workload = _acceptance_workload(bench_params["seed"])[:10]
    problems = [problem for chain in workload for problem in pairwise_problems(chain)]
    composer = BatchComposer(BatchConfig(backend="serial"))

    report = benchmark.pedantic(
        lambda: composer.run(problems), rounds=1, iterations=1
    )
    assert report.all_succeeded, report.summary()
    # Every hop consumes its whole input schema; almost all of it is renames,
    # so the pair-wise compositions should eliminate the bulk of the symbols.
    assert report.mean_fraction_eliminated() > 0.5
