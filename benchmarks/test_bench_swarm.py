"""Benchmark: a multi-process client swarm against one shared catalog.

The tentpole claim of the multi-process catalog: several *service processes*
can share one on-disk root — per-shard file locks serialize index writes, so
no version is ever lost, and the persistent checkpoint store is a common
accelerator — without changing a single output byte.  This benchmark is that
claim under load:

* the parent registers two mapping chains in a fresh catalog root;
* N worker *processes* start (real ``subprocess`` children, each with its own
  :class:`MappingCatalog` handle and its own :class:`CompositionService`) and
  hammer the shared root concurrently: every round each worker serves both
  stored chains through its service, stores the composed mapping of the
  first chain under one shared name, and appends a distinct version to a
  shared ``swarm-log`` schema;
* the parent then checks the books: every constraint text served by every
  worker is byte-identical to a direct in-process ``compose_chain``; the
  shared composed mapping deduplicated to exactly one version (identical
  content from N processes is one catalog version, not N); and the swarm log
  holds exactly N x ROUNDS versions — **zero lost updates**.

Recorded as the ``service_swarm`` workload in BENCH_compose.json next to
``service_warm_restart``: the structural metrics (process count, request
count, output identity, lost versions) are gated exactly by
``check_regression.py``; the sustained requests/second is reported for the
trajectory but not gated (it measures the host, not the algorithm).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower, compose_chain

#: Fixed (not env-tunable) so the gated structural metrics are deterministic.
PROCESSES = 3
ROUNDS = 3
NUM_HOPS = 8
SCHEMA_SIZE = 10

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: One swarm worker: argv = root, output json path, worker tag, rounds.
_WORKER = """
import json, sys, time
from repro.catalog import MappingCatalog
from repro.schema.signature import RelationSchema, Signature
from repro.service import CompositionService, ServiceConfig

root, out_path, tag, rounds = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
catalog = MappingCatalog(root)
served = {}
requests = 0
started = time.perf_counter()
config = ServiceConfig(
    micro_batch_wait_seconds=0.0, admission="block", deadline_seconds=120.0
)
with CompositionService(catalog, config) as svc:
    for round_index in range(rounds):
        for name in ("history-a", "history-b"):
            result = svc.compose_catalog("chain", name)
            requests += 1
            served.setdefault(name, set()).add(result.constraints.to_text())
        composed = svc.compose_chain(catalog.get_chain("history-a"))
        catalog.put_mapping("composed", composed.to_mapping_with_residue())
        catalog.put_schema(
            "swarm-log",
            Signature((RelationSchema(f"L_{tag}_{round_index}", 1 + round_index % 4),)),
        )
elapsed = time.perf_counter() - started
payload = {
    "requests": requests,
    "seconds": elapsed,
    "served": {name: sorted(texts) for name, texts in served.items()},
}
with open(out_path, "w") as handle:
    json.dump(payload, handle)
"""


def test_bench_service_swarm(benchmark, bench_params, bench_record, tmp_path):
    grower = ChainGrower(seed=bench_params["seed"], schema_size=SCHEMA_SIZE)
    chain_a = tuple(grower.grow_many(NUM_HOPS + 1))
    grower_b = ChainGrower(seed=bench_params["seed"] + 1, schema_size=SCHEMA_SIZE)
    chain_b = tuple(grower_b.grow_many(NUM_HOPS + 1))

    root = tmp_path / "shared-catalog"
    catalog = MappingCatalog(root)
    catalog.put_chain("history-a", chain_a)
    catalog.put_chain("history-b", chain_b)

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")

    def run_swarm():
        workers = []
        outputs = []
        for index in range(PROCESSES):
            out_path = tmp_path / f"worker-{index}.json"
            outputs.append(out_path)
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        _WORKER,
                        str(root),
                        str(out_path),
                        f"w{index}",
                        str(ROUNDS),
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )
        for worker in workers:
            out, err = worker.communicate(timeout=600)
            assert worker.returncode == 0, f"swarm worker failed:\n{out}\n{err}"
        return [json.loads(path.read_text()) for path in outputs]

    swarm_started = time.perf_counter()
    reports = run_swarm()
    swarm_seconds = time.perf_counter() - swarm_started
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Byte-identity: every text any worker served matches direct compose.
    reference = {
        "history-a": compose_chain(chain_a).constraints.to_text(),
        "history-b": compose_chain(chain_b).constraints.to_text(),
    }
    outputs_identical = all(
        report["served"][name] == [reference[name]]
        for report in reports
        for name in reference
    )
    assert outputs_identical

    # No lost updates: N processes x ROUNDS distinct puts = that many versions.
    after = MappingCatalog(root)
    log_versions = len(after.versions("schema", "swarm-log"))
    lost_versions = PROCESSES * ROUNDS - log_versions
    assert lost_versions == 0, f"lost {lost_versions} swarm-log versions"
    # ...and identical content from N processes deduplicated to one version.
    composed_versions = [e.version for e in after.versions("mapping", "composed")]
    assert composed_versions == [1]

    requests_total = sum(report["requests"] for report in reports)
    assert requests_total == PROCESSES * ROUNDS * 2
    requests_per_second = requests_total / max(swarm_seconds, 1e-9)

    bench_record(
        "service_swarm",
        processes=PROCESSES,
        rounds=ROUNDS,
        requests_total=requests_total,
        outputs_identical=outputs_identical,
        lost_versions=lost_versions,
        composed_versions=len(composed_versions),
        swarm_seconds=round(swarm_seconds, 4),
        requests_per_second=round(requests_per_second, 4),
    )
