"""Benchmark: the unattended kill-and-recover drill, measured.

``service_failover`` measures failover with an operator in the loop (the
drill POSTs ``/admin/promote``).  This drill removes the operator: primary
and candidate both run a :class:`~repro.service.election.LeaderElector` over
a shared election directory, the primary is SIGKILLed mid-load, and the
candidate must win the ``leader`` lease race and self-promote with a fresh
fencing epoch — no promote call anywhere in this file.

The books that must balance (gated exactly by ``check_regression.py``):

* **zero lost versions** — every write acknowledged through the router
  before the kill survives in the self-promoted catalog;
* **fingerprint identity** — the promoted catalog matches a single-process
  reference run exactly;
* **fencing works** — the resurrected ex-primary's write attempt is
  refused (counted as ``stale_epoch_rejected``), not silently accepted;
* the structural shape of the drill (process count, write counts).

Reported for the trajectory but not gated (they measure the host):
``election_seconds`` — SIGKILL to the first write accepted through the
self-promoted replica, the time a client is without a writable backend with
nobody watching — plus the raw throughput numbers.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.catalog import MappingCatalog
from repro.engine import ChainGrower, compose_chain
from repro.textio.records import chain_to_text

PROCESSES = 3
WRITES_BEFORE_KILL = 4
WRITES_AFTER_PROMOTE = 4
NUM_HOPS = 4
SCHEMA_SIZE = 8
ELECTION_TIMEOUT = 1.0

#: Seeded chaos on both sides: the primary's journal appends tear (healed by
#: the retry policy), the candidate's lease writes and election race run
#: slowed — the election must still win inside its timeout budget.
PRIMARY_FAULTS = "seed=13;journal.append.torn:torn:p=0.1:limit=3"
CANDIDATE_FAULTS = (
    "seed=13;lease.write:slow:p=0.3:ms=5;election.acquire:slow:p=0.5:ms=10"
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

_PRIMARY = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, LeaderElector, ServiceConfig, ServiceHTTPServer,
)

catalog = MappingCatalog(sys.argv[1])
elector = LeaderElector(
    catalog, election_dir=sys.argv[2], election_timeout_seconds=float(sys.argv[3])
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, elector=elector)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_CANDIDATE = """
import sys, time
from repro.catalog import MappingCatalog
from repro.service import (
    CompositionService, LeaderElector, ReplicationFollower, ServiceConfig,
    ServiceHTTPServer, open_source,
)

catalog = MappingCatalog(sys.argv[1])
follower = ReplicationFollower(
    catalog, open_source(sys.argv[2]), poll_interval_seconds=0.05
).start()
elector = LeaderElector(
    catalog,
    follower=follower,
    election_dir=sys.argv[3],
    source_root=sys.argv[2],
    primary_url=sys.argv[4],
    election_timeout_seconds=float(sys.argv[5]),
    health_timeout_seconds=0.5,
).start()
service = CompositionService(catalog, ServiceConfig(micro_batch_wait_seconds=0.0))
service.start()
server = ServiceHTTPServer(service, port=0, follower=follower, elector=elector)
server.start()
print(f"ready {server.address[1]}", flush=True)
while True:
    time.sleep(1)
"""

_ROUTER = """
import sys, time
from repro.service import RouterHTTPServer

router = RouterHTTPServer(
    sys.argv[1:], port=0, health_interval_seconds=0.1, health_timeout_seconds=1.0
).start()
print(f"ready {router.address[1]}", flush=True)
while True:
    time.sleep(1)
"""


def _spawn(code, *args, env=None):
    return subprocess.Popen(
        [sys.executable, "-c", code, *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _await_ready(proc):
    line = proc.stdout.readline()
    assert line.startswith("ready "), f"worker did not come up: {line!r}"
    return int(line.split()[1])


def _post(url, body=b"", timeout=120):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read().decode(), dict(response.headers)


def _get_json(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def test_bench_service_election(benchmark, bench_params, bench_record, tmp_path):
    grower = ChainGrower(seed=bench_params["seed"] + 23, schema_size=SCHEMA_SIZE)
    hops = tuple(grower.grow_many(NUM_HOPS + WRITES_BEFORE_KILL + WRITES_AFTER_PROMOTE))
    total_writes = WRITES_BEFORE_KILL + WRITES_AFTER_PROMOTE
    chains = [hops[index : index + NUM_HOPS] for index in range(total_writes)]

    primary_root = tmp_path / "primary"
    candidate_root = tmp_path / "candidate"
    election_dir = tmp_path / "election"

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    primary_env = dict(env)
    primary_env["REPRO_FAULTS"] = PRIMARY_FAULTS
    primary_env["REPRO_FAULTS_LOG"] = str(tmp_path / "primary-faults.jsonl")
    candidate_env = dict(env)
    candidate_env["REPRO_FAULTS"] = CANDIDATE_FAULTS
    candidate_env["REPRO_FAULTS_LOG"] = str(tmp_path / "candidate-faults.jsonl")

    stale_epoch_rejected = 0
    procs = []
    try:
        primary = _spawn(
            _PRIMARY,
            str(primary_root),
            str(election_dir),
            str(ELECTION_TIMEOUT),
            env=primary_env,
        )
        procs.append(primary)
        primary_base = f"http://127.0.0.1:{_await_ready(primary)}"
        candidate = _spawn(
            _CANDIDATE,
            str(candidate_root),
            str(primary_root),
            str(election_dir),
            primary_base,
            str(ELECTION_TIMEOUT),
            env=candidate_env,
        )
        procs.append(candidate)
        candidate_base = f"http://127.0.0.1:{_await_ready(candidate)}"
        router = _spawn(_ROUTER, primary_base, candidate_base, env=env)
        procs.append(router)
        router_base = f"http://127.0.0.1:{_await_ready(router)}"

        # Phase 1: write load through the router against the live primary.
        acknowledged = []
        phase1_started = time.perf_counter()
        for index in range(WRITES_BEFORE_KILL):
            name = f"drill-{index}"
            status, _, headers = _post(
                f"{router_base}/compose?store={name}",
                chain_to_text(chains[index]).encode(),
            )
            assert status == 200
            if "X-Repro-Store-Dropped" not in headers:
                acknowledged.append(name)
        phase1_seconds = time.perf_counter() - phase1_started

        # The primary dies mid-load: SIGKILL, no cleanup, no flush — and no
        # operator.  The candidate's elector must do the whole recovery.
        killed_at = time.perf_counter()
        primary.kill()
        primary.wait(timeout=60)

        # Finish the load through the router.  503s are the router waiting
        # for the election; the first accepted write stamps the headline
        # number: SIGKILL to writable again, with nobody watching.
        first_write_seconds = None
        for index in range(WRITES_BEFORE_KILL, total_writes):
            name = f"drill-{index}"
            body = chain_to_text(chains[index]).encode()
            while True:
                try:
                    status, _, headers = _post(
                        f"{router_base}/compose?store={name}", body
                    )
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 503:
                        raise
                    time.sleep(0.05)  # the election has not finished yet
            assert status == 200
            if first_write_seconds is None:
                first_write_seconds = time.perf_counter() - killed_at
            if "X-Repro-Store-Dropped" not in headers:
                acknowledged.append(name)
        phase2_seconds = time.perf_counter() - killed_at
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

        candidate_health = _get_json(f"{candidate_base}/healthz")
        assert candidate_health["election"]["role"] == "leader"
        assert candidate_health["election"]["elections_won"] == 1
        router_status = _get_json(f"{router_base}/router/status")

        # Epilogue: resurrect the ex-primary over its fenced root and count
        # its refused zombie write.
        zombie = _spawn(
            _PRIMARY,
            str(primary_root),
            str(tmp_path / "zombie-election"),
            str(ELECTION_TIMEOUT),
            env=env,
        )
        procs.append(zombie)
        zombie_base = f"http://127.0.0.1:{_await_ready(zombie)}"
        try:
            _post(
                f"{zombie_base}/compose?store=zombie-write",
                chain_to_text(chains[0]).encode(),
            )
        except urllib.error.HTTPError as exc:
            if exc.code == 409:
                stale_epoch_rejected = 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            proc.communicate()

    # Zero lost versions, fingerprint-identical to a single-process reference.
    promoted = MappingCatalog(candidate_root)
    reference = MappingCatalog(tmp_path / "reference")
    outputs_identical = True
    lost_versions = 0
    for index, name in enumerate(f"drill-{n}" for n in range(total_writes)):
        if name not in acknowledged:
            continue
        composed = compose_chain(chains[index]).to_mapping_with_residue()
        expected = reference.put_mapping(name, composed).fingerprint
        if name not in promoted.names("mapping"):
            lost_versions += 1
            continue
        if promoted.entry("mapping", name).fingerprint != expected:
            outputs_identical = False
    assert lost_versions == 0, f"unattended failover lost {lost_versions} writes"
    assert outputs_identical, "promoted catalog diverged from the reference"
    assert stale_epoch_rejected == 1, "the zombie ex-primary was not fenced"
    assert "zombie-write" not in promoted.names("mapping")

    writes_per_second = len(acknowledged) / max(phase1_seconds + phase2_seconds, 1e-9)

    bench_record(
        "service_election",
        processes=PROCESSES,
        writes_total=total_writes,
        writes_acknowledged=len(acknowledged),
        lost_versions=lost_versions,
        outputs_identical=outputs_identical,
        stale_epoch_rejected=stale_epoch_rejected,
        failovers_observed=router_status["failovers_observed"],
        election_timeout_seconds=ELECTION_TIMEOUT,
        election_seconds=round(first_write_seconds or 0.0, 4),
        recovery_seconds=round(phase2_seconds, 4),
        writes_per_second=round(writes_per_second, 4),
    )
