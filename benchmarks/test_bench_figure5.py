"""Benchmark: Figure 5 — increasing the proportion of inclusion primitives.

The paper's claim: as the share of open-world (Sub/Sup) edits grows from 0% to
20%, composition gets harder overall (fewer symbols eliminated, mostly because
view unfolding applies less often).  The benchmark sweeps three proportions
and checks that the 20% point never beats the 0% point.
"""

from repro.experiments.figure5 import run_figure5


def test_bench_figure5(benchmark, bench_params):
    def workload():
        return run_figure5(
            proportions=[0.0, 0.1, 0.2],
            schema_size=bench_params["schema_size"],
            num_edits=bench_params["num_edits"],
            runs=max(1, bench_params["runs"] // 2),
            seed=bench_params["seed"],
        )

    figure = benchmark.pedantic(workload, rounds=1, iterations=1)
    totals = figure.total_series()
    assert len(totals) == 3
    assert all(0.0 <= value <= 1.0 for value in totals)
    # More inclusion edits never make composition easier overall.
    assert totals[-1] <= totals[0] + 0.1
    assert all(value >= 0.0 for value in figure.time_series())
