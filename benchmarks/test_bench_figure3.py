"""Benchmark: Figure 3 — execution time per edit for each primitive.

Checks the paper's qualitative claims: per-edit composition runs in the
millisecond-to-subsecond range, and the 'keys' and 'no unfolding'
configurations are substantially more expensive than 'no keys'.
"""

from repro.experiments.figure3 import run_figure3
from repro.experiments.runner import run_editing_study


def test_bench_figure3(benchmark, bench_params):
    def workload():
        study = run_editing_study(
            schema_size=bench_params["schema_size"],
            num_edits=bench_params["num_edits"],
            runs=bench_params["runs"],
            seed=bench_params["seed"],
        )
        return run_figure3(study=study)

    figure = benchmark.pedantic(workload, rounds=1, iterations=1)

    medians = figure.median_run_seconds
    # All four configurations are present.
    assert set(medians) == {"no keys", "keys", "no unfolding", "no right compose"}
    # The expensive configurations cost at least as much as the cheap ones
    # (the paper reports roughly an order of magnitude; we only require the ordering).
    assert medians["keys"] >= medians["no keys"] * 0.5
    assert medians["no unfolding"] >= medians["no keys"] * 0.5
    # Per-primitive timings are non-negative and finite.
    for series in figure.times_ms.values():
        assert all(value >= 0.0 for value in series.values())
