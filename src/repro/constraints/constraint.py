"""Containment and equality constraints between relational expressions.

A mapping in the paper is a finite set of constraints, each of the form
``E1 ⊆ E2`` (containment) or ``E1 = E2`` (equality) where ``E1`` and ``E2``
are relational-algebra expressions over the combined signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.algebra.expressions import Expression, Relation, _install_cached_hash
from repro.algebra import traversal
from repro.algebra.summary import node_summary
from repro.exceptions import ArityError, ConstraintError

__all__ = ["Constraint", "ContainmentConstraint", "EqualityConstraint"]


class Constraint:
    """Abstract base class for the two constraint forms.

    Symbol and size queries read the one-pass cached node summaries of both
    sides (:mod:`repro.algebra.summary`), so after the first probe every later
    ``mentions`` / ``operator_count`` call is a set lookup or an integer read —
    the elimination drivers issue these queries for every σ2 symbol against
    every constraint.
    """

    left: Expression
    right: Expression

    # -- symbol queries -------------------------------------------------------

    def relation_names(self) -> FrozenSet[str]:
        """All base relation symbols mentioned on either side (cached)."""
        try:
            return self._relation_names
        except AttributeError:
            pass
        names = node_summary(self.left).relation_names | node_summary(
            self.right
        ).relation_names
        object.__setattr__(self, "_relation_names", names)
        return names

    def mentions(self, name: str) -> bool:
        """Return ``True`` iff the constraint mentions relation ``name``."""
        return name in self.relation_names()

    def mentions_on_left(self, name: str) -> bool:
        """Return ``True`` iff ``name`` occurs in the left-hand side."""
        return name in node_summary(self.left).relation_names

    def mentions_on_right(self, name: str) -> bool:
        """Return ``True`` iff ``name`` occurs in the right-hand side."""
        return name in node_summary(self.right).relation_names

    def occurrences(self, name: str) -> int:
        """Total number of occurrences of relation ``name`` in the constraint."""
        return traversal.relation_occurrences(self.left, name) + traversal.relation_occurrences(
            self.right, name
        )

    def contains_skolem(self) -> bool:
        """Return ``True`` iff either side contains a Skolem application."""
        return node_summary(self.left).contains_skolem or node_summary(
            self.right
        ).contains_skolem

    def contains_domain(self) -> bool:
        """Return ``True`` iff either side contains the active-domain relation."""
        return node_summary(self.left).contains_domain or node_summary(
            self.right
        ).contains_domain

    def contains_empty(self) -> bool:
        """Return ``True`` iff either side contains the empty relation."""
        return node_summary(self.left).contains_empty or node_summary(
            self.right
        ).contains_empty

    def operator_count(self) -> int:
        """Number of operator nodes on both sides (the paper's size metric, cached)."""
        try:
            return self._operator_count
        except AttributeError:
            pass
        count = node_summary(self.left).operator_count + node_summary(
            self.right
        ).operator_count
        object.__setattr__(self, "_operator_count", count)
        return count

    def digest(self) -> bytes:
        """Deterministic content digest of the constraint (kind plus both sides).

        Unlike the per-process salted structural hash, the digest survives
        pickling and names the constraint identically in every process — the
        property the incremental-recomposition checkpoints rely on.  Cached on
        the (immutable) constraint.
        """
        try:
            return self._digest
        except AttributeError:
            pass
        from hashlib import blake2b

        from repro.algebra.digest import DIGEST_SIZE, expression_digest

        h = blake2b(digest_size=DIGEST_SIZE)
        h.update(type(self).__name__.encode())
        h.update(expression_digest(self.left))
        h.update(expression_digest(self.right))
        value = h.digest()
        object.__setattr__(self, "_digest", value)
        return value

    # -- rewriting ------------------------------------------------------------

    def substituting(self, name: str, replacement: Expression) -> "Constraint":
        """Return a copy with every occurrence of relation ``name`` replaced."""
        raise NotImplementedError

    def sides(self) -> Tuple[Expression, Expression]:
        """Return the ``(left, right)`` pair."""
        return (self.left, self.right)

    def is_trivial(self) -> bool:
        """Return ``True`` for constraints that every instance satisfies (``E ⊆ E``, ``E = E``)."""
        return self.left == self.right

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self}>"

    def __getstate__(self):
        # Drop the lazily cached hash (string hashing is salted per process)
        # and the "already simplified" marker (it references a live memo
        # table); the cached name set and operator count are structural and
        # survive pickling.
        state = dict(self.__dict__)
        state.pop("_hash_value", None)
        state.pop("_simplified_for", None)
        return state


@dataclass(frozen=True, repr=False)
class ContainmentConstraint(Constraint):
    """A constraint ``left ⊆ right``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _validate_sides(self.left, self.right)

    def substituting(self, name: str, replacement: Expression) -> "ContainmentConstraint":
        left = traversal.substitute_relation(self.left, name, replacement)
        right = traversal.substitute_relation(self.right, name, replacement)
        if left is self.left and right is self.right:
            return self
        return ContainmentConstraint(left, right)

    def is_identity_definition_of(self, name: str) -> bool:
        """Containments never define a symbol outright (only equalities do)."""
        return False

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"


@dataclass(frozen=True, repr=False)
class EqualityConstraint(Constraint):
    """A constraint ``left = right``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _validate_sides(self.left, self.right)

    def substituting(self, name: str, replacement: Expression) -> "EqualityConstraint":
        left = traversal.substitute_relation(self.left, name, replacement)
        right = traversal.substitute_relation(self.right, name, replacement)
        if left is self.left and right is self.right:
            return self
        return EqualityConstraint(left, right)

    def as_containments(self) -> Tuple[ContainmentConstraint, ContainmentConstraint]:
        """Split into the two containments ``left ⊆ right`` and ``right ⊆ left``."""
        return (
            ContainmentConstraint(self.left, self.right),
            ContainmentConstraint(self.right, self.left),
        )

    def definition_of(self, name: str):
        """If this equality defines ``name`` (the symbol alone on one side and
        absent from the other), return the defining expression, else ``None``.

        This is exactly the shape the view-unfolding step looks for:
        ``S = E`` with ``S`` not occurring in ``E``.
        """
        left_is_symbol = isinstance(self.left, Relation) and self.left.name == name
        right_is_symbol = isinstance(self.right, Relation) and self.right.name == name
        if left_is_symbol and not traversal.contains_relation(self.right, name):
            return self.right
        if right_is_symbol and not traversal.contains_relation(self.left, name):
            return self.left
        return None

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def _validate_sides(left: Expression, right: Expression) -> None:
    if not isinstance(left, Expression) or not isinstance(right, Expression):
        raise ConstraintError("both sides of a constraint must be expressions")
    if left.arity != right.arity:
        raise ArityError(
            f"constraint sides must have equal arity, got {left.arity} and {right.arity} "
            f"({left} vs {right})"
        )


# Constraints are hashed as often as expressions (constraint-set dedup happens
# on every rewrite); cache their structural hash the same way.
for _constraint_type in (ContainmentConstraint, EqualityConstraint):
    _install_cached_hash(_constraint_type)
del _constraint_type
