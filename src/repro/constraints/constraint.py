"""Containment and equality constraints between relational expressions.

A mapping in the paper is a finite set of constraints, each of the form
``E1 ⊆ E2`` (containment) or ``E1 = E2`` (equality) where ``E1`` and ``E2``
are relational-algebra expressions over the combined signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.algebra.expressions import Expression, Relation, _install_cached_hash
from repro.algebra import traversal
from repro.exceptions import ArityError, ConstraintError

__all__ = ["Constraint", "ContainmentConstraint", "EqualityConstraint"]


class Constraint:
    """Abstract base class for the two constraint forms."""

    left: Expression
    right: Expression

    # -- symbol queries -------------------------------------------------------

    def relation_names(self) -> FrozenSet[str]:
        """All base relation symbols mentioned on either side."""
        return traversal.relation_names(self.left) | traversal.relation_names(self.right)

    def mentions(self, name: str) -> bool:
        """Return ``True`` iff the constraint mentions relation ``name``."""
        return traversal.contains_relation(self.left, name) or traversal.contains_relation(
            self.right, name
        )

    def mentions_on_left(self, name: str) -> bool:
        """Return ``True`` iff ``name`` occurs in the left-hand side."""
        return traversal.contains_relation(self.left, name)

    def mentions_on_right(self, name: str) -> bool:
        """Return ``True`` iff ``name`` occurs in the right-hand side."""
        return traversal.contains_relation(self.right, name)

    def occurrences(self, name: str) -> int:
        """Total number of occurrences of relation ``name`` in the constraint."""
        return traversal.relation_occurrences(self.left, name) + traversal.relation_occurrences(
            self.right, name
        )

    def contains_skolem(self) -> bool:
        """Return ``True`` iff either side contains a Skolem application."""
        return traversal.contains_skolem(self.left) or traversal.contains_skolem(self.right)

    def contains_domain(self) -> bool:
        """Return ``True`` iff either side contains the active-domain relation."""
        return traversal.contains_domain(self.left) or traversal.contains_domain(self.right)

    def contains_empty(self) -> bool:
        """Return ``True`` iff either side contains the empty relation."""
        return traversal.contains_empty(self.left) or traversal.contains_empty(self.right)

    def operator_count(self) -> int:
        """Number of operator nodes on both sides (the paper's size metric)."""
        return traversal.operator_count(self.left) + traversal.operator_count(self.right)

    # -- rewriting ------------------------------------------------------------

    def substituting(self, name: str, replacement: Expression) -> "Constraint":
        """Return a copy with every occurrence of relation ``name`` replaced."""
        raise NotImplementedError

    def sides(self) -> Tuple[Expression, Expression]:
        """Return the ``(left, right)`` pair."""
        return (self.left, self.right)

    def is_trivial(self) -> bool:
        """Return ``True`` for constraints that every instance satisfies (``E ⊆ E``, ``E = E``)."""
        return self.left == self.right

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self}>"

    def __getstate__(self):
        # Drop the lazily cached hash; string hashing is salted per process.
        state = dict(self.__dict__)
        state.pop("_hash_value", None)
        return state


@dataclass(frozen=True, repr=False)
class ContainmentConstraint(Constraint):
    """A constraint ``left ⊆ right``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _validate_sides(self.left, self.right)

    def substituting(self, name: str, replacement: Expression) -> "ContainmentConstraint":
        left = traversal.substitute_relation(self.left, name, replacement)
        right = traversal.substitute_relation(self.right, name, replacement)
        if left is self.left and right is self.right:
            return self
        return ContainmentConstraint(left, right)

    def is_identity_definition_of(self, name: str) -> bool:
        """Containments never define a symbol outright (only equalities do)."""
        return False

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"


@dataclass(frozen=True, repr=False)
class EqualityConstraint(Constraint):
    """A constraint ``left = right``."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        _validate_sides(self.left, self.right)

    def substituting(self, name: str, replacement: Expression) -> "EqualityConstraint":
        left = traversal.substitute_relation(self.left, name, replacement)
        right = traversal.substitute_relation(self.right, name, replacement)
        if left is self.left and right is self.right:
            return self
        return EqualityConstraint(left, right)

    def as_containments(self) -> Tuple[ContainmentConstraint, ContainmentConstraint]:
        """Split into the two containments ``left ⊆ right`` and ``right ⊆ left``."""
        return (
            ContainmentConstraint(self.left, self.right),
            ContainmentConstraint(self.right, self.left),
        )

    def definition_of(self, name: str):
        """If this equality defines ``name`` (the symbol alone on one side and
        absent from the other), return the defining expression, else ``None``.

        This is exactly the shape the view-unfolding step looks for:
        ``S = E`` with ``S`` not occurring in ``E``.
        """
        left_is_symbol = isinstance(self.left, Relation) and self.left.name == name
        right_is_symbol = isinstance(self.right, Relation) and self.right.name == name
        if left_is_symbol and not traversal.contains_relation(self.right, name):
            return self.right
        if right_is_symbol and not traversal.contains_relation(self.left, name):
            return self.left
        return None

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def _validate_sides(left: Expression, right: Expression) -> None:
    if not isinstance(left, Expression) or not isinstance(right, Expression):
        raise ConstraintError("both sides of a constraint must be expressions")
    if left.arity != right.arity:
        raise ArityError(
            f"constraint sides must have equal arity, got {left.arity} and {right.arity} "
            f"({left} vs {right})"
        )


# Constraints are hashed as often as expressions (constraint-set dedup happens
# on every rewrite); cache their structural hash the same way.
for _constraint_type in (ContainmentConstraint, EqualityConstraint):
    _install_cached_hash(_constraint_type)
del _constraint_type
