"""Checking whether instances satisfy constraints (``A |= ξ`` and ``A |= Σ``).

This module gives the library an executable notion of constraint satisfaction,
used by the satisfaction-preservation (soundness) tests of the composition
algorithm and by the data-migration example.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.algebra.evaluation import Evaluator, SkolemInterpretation
from repro.constraints.constraint import (
    Constraint,
    ContainmentConstraint,
    EqualityConstraint,
)
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import ConstraintError
from repro.schema.instance import Instance

__all__ = ["satisfies", "satisfies_all", "violated_constraints", "check_soundness_on_instance"]


def satisfies(
    instance: Instance,
    constraint: Constraint,
    skolems: Optional[SkolemInterpretation] = None,
    extra_domain: Iterable[object] = (),
) -> bool:
    """Return ``True`` iff ``instance |= constraint``."""
    evaluator = Evaluator(instance, skolems, extra_domain)
    return _satisfies_with(evaluator, constraint)


def _satisfies_with(evaluator: Evaluator, constraint: Constraint) -> bool:
    left = evaluator.evaluate(constraint.left)
    right = evaluator.evaluate(constraint.right)
    if isinstance(constraint, ContainmentConstraint):
        return left <= right
    if isinstance(constraint, EqualityConstraint):
        return left == right
    raise ConstraintError(f"unknown constraint type {type(constraint).__name__}")


def satisfies_all(
    instance: Instance,
    constraints: Iterable[Constraint],
    skolems: Optional[SkolemInterpretation] = None,
    extra_domain: Iterable[object] = (),
) -> bool:
    """Return ``True`` iff the instance satisfies every constraint."""
    evaluator = Evaluator(instance, skolems, extra_domain)
    return all(_satisfies_with(evaluator, constraint) for constraint in constraints)


def violated_constraints(
    instance: Instance,
    constraints: Iterable[Constraint],
    skolems: Optional[SkolemInterpretation] = None,
    extra_domain: Iterable[object] = (),
) -> List[Constraint]:
    """Return the constraints the instance violates (useful in error messages)."""
    evaluator = Evaluator(instance, skolems, extra_domain)
    return [c for c in constraints if not _satisfies_with(evaluator, c)]


def check_soundness_on_instance(
    instance: Instance,
    original: ConstraintSet,
    rewritten: ConstraintSet,
    skolems: Optional[SkolemInterpretation] = None,
    extra_domain: Iterable[object] = (),
) -> Tuple[bool, List[Constraint]]:
    """Check the *soundness* direction of constraint-set equivalence on one instance.

    If ``instance`` satisfies ``original`` then it must satisfy every constraint
    of ``rewritten`` that only mentions relations present in the instance.
    Returns ``(vacuous_or_ok, violated)`` where ``violated`` lists the
    constraints of ``rewritten`` that fail although ``original`` holds.

    This is the workhorse of the property-based tests: rewrites performed by
    normalization and composition must never turn a satisfying instance into a
    violating one (after restriction to the surviving symbols).
    """
    if not satisfies_all(instance, original, skolems, extra_domain):
        return True, []
    names = set(instance.relation_names())
    applicable = [c for c in rewritten if c.relation_names() <= names]
    violated = violated_constraints(instance, applicable, skolems, extra_domain)
    return not violated, violated
