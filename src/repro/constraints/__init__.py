"""Constraints (containment / equality), constraint sets and satisfaction checking."""

from repro.constraints.constraint import Constraint, ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.satisfaction import (
    check_soundness_on_instance,
    satisfies,
    satisfies_all,
    violated_constraints,
)
from repro.constraints.dependencies import (
    inclusion_dependency,
    key_constraint,
    key_constraints_for,
    view_definition,
)

__all__ = [
    "Constraint",
    "ContainmentConstraint",
    "EqualityConstraint",
    "ConstraintSet",
    "satisfies",
    "satisfies_all",
    "violated_constraints",
    "check_soundness_on_instance",
    "key_constraint",
    "key_constraints_for",
    "inclusion_dependency",
    "view_definition",
]
