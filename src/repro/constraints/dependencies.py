"""Helpers for encoding classical dependencies as algebraic constraints.

The paper's language of algebraic constraints subsumes embedded dependencies.
This module provides the encodings used by the experiments and the literature
test suite:

* **Key constraints** via the active-domain trick of Example 2:
  "the first attribute of binary ``S`` is a key" becomes
  ``π_{1,3}(σ_{0=2}(S × S)) ⊆ σ_{0=1}(D^2)`` (0-based indices).
* **Inclusion dependencies** ``R[I] ⊆ S[J]`` as ``π_I(R) ⊆ π_J(S)``.
* **Functional-style GAV view definitions** (a target symbol equals a
  source-side query).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.algebra.builders import project
from repro.algebra.conditions import conjunction, equals
from repro.algebra.expressions import CrossProduct, Domain, Expression, Relation, Selection
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.exceptions import ConstraintError

__all__ = [
    "key_constraint",
    "key_constraints_for",
    "inclusion_dependency",
    "view_definition",
]


def key_constraint(relation: Relation, key: Sequence[int]) -> ContainmentConstraint:
    """Encode "``key`` is a key of ``relation``" as an algebraic containment.

    Following Example 2 of the paper, the equality-generating dependency
    ``S(x̄, ȳ), S(x̄, z̄) → ȳ = z̄`` is expressed by selecting pairs of tuples of
    ``S`` that agree on the key columns and requiring each pair of
    corresponding non-key values to be equal, i.e. to land in
    ``σ_{0=1}(D^2) × ... `` — concretely we require, for every non-key column
    ``c``, that the projection onto the two copies of ``c`` is contained in
    ``σ_{0=1}(D^2)``.  We emit one containment whose left side projects all
    non-key column pairs and whose right side is the corresponding product of
    "equal pairs" relations; for a relation where every column is a key the
    constraint is trivial and a ``ConstraintError`` is raised.
    """
    key = tuple(sorted(set(int(i) for i in key)))
    arity = relation.arity
    for index in key:
        if index < 0 or index >= arity:
            raise ConstraintError(f"key column #{index} out of range for arity {arity}")
    non_key = [i for i in range(arity) if i not in key]
    if not non_key:
        raise ConstraintError("every column is a key column; the key constraint is trivial")

    # Pairs of tuples of the relation agreeing on the key columns.
    pair = CrossProduct(relation, relation)
    agree_on_key = Selection(pair, conjunction(equals(i, arity + i) for i in key))

    # Project the non-key columns of both copies: (c1, c1', c2, c2', ...).
    projection_indices: Tuple[int, ...] = tuple(
        index for column in non_key for index in (column, arity + column)
    )
    left = project(agree_on_key, projection_indices)

    # The right side forces each adjacent pair of columns to be equal: a
    # selection over D^{2k} requiring positions (0,1), (2,3), ... to agree.
    width = 2 * len(non_key)
    right: Expression = Selection(
        Domain(width), conjunction(equals(2 * i, 2 * i + 1) for i in range(len(non_key)))
    )
    return ContainmentConstraint(left, right)


def key_constraints_for(signature) -> list:
    """Build key constraints for every keyed relation of a signature.

    Relations whose key covers all columns are skipped (their key constraint
    is trivially satisfied).
    """
    constraints = []
    for schema in signature.relations():
        if schema.key is None or len(schema.key) >= schema.arity:
            continue
        constraints.append(key_constraint(schema.to_expression(), schema.key))
    return constraints


def inclusion_dependency(
    source: Relation,
    source_columns: Sequence[int],
    target: Relation,
    target_columns: Sequence[int],
) -> ContainmentConstraint:
    """Encode the inclusion dependency ``source[source_columns] ⊆ target[target_columns]``."""
    if len(source_columns) != len(target_columns):
        raise ConstraintError("inclusion dependency column lists must have equal length")
    return ContainmentConstraint(
        project(source, source_columns), project(target, target_columns)
    )


def view_definition(view: Relation, query: Expression) -> EqualityConstraint:
    """Encode a GAV view definition ``view = query``."""
    return EqualityConstraint(view, query)
