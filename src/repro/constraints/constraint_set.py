"""Finite sets of constraints with the query and rewrite operations COMPOSE needs.

A :class:`ConstraintSet` is an immutable, ordered collection of constraints.
Order is preserved because the paper's algorithm follows a user-specified
ordering of the symbols to eliminate and because deterministic ordering makes
runs reproducible; equality ignores order and duplicates.

Symbol and size queries are indexed: each set lazily builds, in one pass over
the per-constraint cached summaries, a symbol → constraint-indices index plus
the aggregate relation-name set and operator count.  ``mentions()`` (probed by
ELIMINATE for every σ2 symbol), the blow-up guard's ``operator_count()`` and
``constraints_mentioning()`` are then O(1)/O(affected) instead of
O(all constraints × tree size) per call.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.algebra.expressions import Expression
from repro.constraints.constraint import Constraint, ContainmentConstraint, EqualityConstraint
from repro.exceptions import ConstraintError

__all__ = ["ConstraintSet"]


class ConstraintSet:
    """An immutable ordered set of constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        # Materialize first so exceptions raised by a caller's generator
        # propagate intact; ``dict.fromkeys`` then dedups while preserving
        # first-occurrence order, in C.
        items = list(constraints)
        try:
            ordered = dict.fromkeys(items)
        except TypeError as exc:
            raise ConstraintError(f"expected hashable Constraints: {exc}") from exc
        for constraint in ordered:
            if not isinstance(constraint, Constraint):
                raise ConstraintError(f"expected a Constraint, got {constraint!r}")
        self._constraints: Tuple[Constraint, ...] = tuple(ordered)
        # Lazy aggregate caches (immutable set, computed at most once each).
        self._names_cache: Optional[FrozenSet[str]] = None
        self._mention_index: Optional[Dict[str, Tuple[int, ...]]] = None
        self._operator_count: Optional[int] = None
        self._fingerprint: Optional[bytes] = None

    # -- collection protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: Constraint) -> bool:
        return constraint in self._constraints

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return set(self._constraints) == set(other._constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints))

    def __getitem__(self, index: int) -> Constraint:
        return self._constraints[index]

    def __repr__(self) -> str:
        return f"ConstraintSet({len(self._constraints)} constraints)"

    def __getstate__(self):
        # The "already simplified" marker references a live registry object;
        # identity does not survive pickling, so drop it (the caches do
        # survive — they are structural).
        state = dict(self.__dict__)
        state.pop("_simplified_marker", None)
        return state

    def to_text(self) -> str:
        """Render one constraint per line (parseable back with the parser)."""
        return "\n".join(str(constraint) for constraint in self._constraints)

    # -- building --------------------------------------------------------------

    def adding(self, *constraints: Constraint) -> "ConstraintSet":
        """Return a new set with the given constraints appended."""
        return ConstraintSet(self._constraints + constraints)

    def removing(self, *constraints: Constraint) -> "ConstraintSet":
        """Return a new set without the given constraints."""
        removed = set(constraints)
        return ConstraintSet(c for c in self._constraints if c not in removed)

    def replacing(self, old: Constraint, new_constraints: Iterable[Constraint]) -> "ConstraintSet":
        """Return a new set with ``old`` replaced (in place) by ``new_constraints``."""
        result: List[Constraint] = []
        replaced = False
        for constraint in self._constraints:
            if constraint == old and not replaced:
                result.extend(new_constraints)
                replaced = True
            else:
                result.append(constraint)
        if not replaced:
            raise ConstraintError("constraint to replace is not in the set")
        return ConstraintSet(result)

    def union(self, other: "ConstraintSet") -> "ConstraintSet":
        """Return the union of two constraint sets (order: self then other)."""
        return ConstraintSet(tuple(self._constraints) + tuple(other._constraints))

    def subset(self, indices: Iterable[int]) -> "ConstraintSet":
        """Return the set of constraints at ``indices``, in the given order.

        The composition planner carves a problem's constraint set into
        per-component sub-sets this way (see :mod:`repro.compose.planner`).
        """
        return ConstraintSet(self._constraints[index] for index in indices)

    def map(self, fn: Callable[[Constraint], Constraint]) -> "ConstraintSet":
        """Return a new set with ``fn`` applied to every constraint.

        Returns ``self`` when ``fn`` leaves every constraint identical, so
        no-op rewrites (substituting an absent symbol, re-simplifying an
        already-simplified set) skip the dedup pass entirely.
        """
        mapped = [fn(constraint) for constraint in self._constraints]
        if all(new is old for new, old in zip(mapped, self._constraints)):
            return self
        return ConstraintSet(mapped)

    def filter(self, predicate: Callable[[Constraint], bool]) -> "ConstraintSet":
        """Return a new set keeping only constraints satisfying ``predicate``.

        Returns ``self`` when the predicate keeps everything, so no-op filters
        (re-dropping trivial constraints from an already-clean set) skip the
        dedup pass entirely.
        """
        kept = [c for c in self._constraints if predicate(c)]
        if len(kept) == len(self._constraints):
            return self
        return ConstraintSet(kept)

    def without_trivial(self) -> "ConstraintSet":
        """Drop constraints of the form ``E ⊆ E`` / ``E = E``."""
        return self.filter(lambda c: not c.is_trivial())

    # -- queries ----------------------------------------------------------------

    #: Sets at least this large build the symbol → indices dictionary; smaller
    #: sets answer symbol queries by probing each constraint's cached name set
    #: directly (a handful of C-speed frozenset lookups beats building and
    #: throwing away a Python dict per rewritten set).
    INDEX_THRESHOLD = 32

    def _index(self) -> Dict[str, Tuple[int, ...]]:
        """The symbol → constraint-indices index, built lazily in one pass."""
        if self._mention_index is None:
            index: Dict[str, List[int]] = {}
            for position, constraint in enumerate(self._constraints):
                for name in constraint.relation_names():
                    index.setdefault(name, []).append(position)
            self._mention_index = {
                name: tuple(positions) for name, positions in index.items()
            }
        return self._mention_index

    def relation_names(self) -> FrozenSet[str]:
        """All relation symbols mentioned anywhere in the set (cached)."""
        if self._names_cache is None:
            if self._mention_index is not None:
                self._names_cache = frozenset(self._mention_index)
            else:
                self._names_cache = frozenset().union(
                    *(c.relation_names() for c in self._constraints)
                )
        return self._names_cache

    def constraints_mentioning(self, name: str) -> Tuple[Constraint, ...]:
        """Constraints that mention relation ``name`` on either side (indexed)."""
        return tuple(
            self._constraints[position] for position in self.indices_mentioning(name)
        )

    def indices_mentioning(self, name: str) -> Tuple[int, ...]:
        """Positions of the constraints mentioning ``name``.

        Served from the symbol index when the set is large (or the index is
        already built); small sets are scanned with O(1) per-constraint name
        probes instead.
        """
        if self._mention_index is None and len(self._constraints) < self.INDEX_THRESHOLD:
            return tuple(
                position
                for position, constraint in enumerate(self._constraints)
                if name in constraint.relation_names()
            )
        return self._index().get(name, ())

    def mentions(self, name: str) -> bool:
        """Return ``True`` iff any constraint mentions relation ``name``."""
        return name in self.relation_names()

    def operator_count(self) -> int:
        """Total number of operator nodes across all constraints (size metric).

        The per-constraint counts are O(1) attribute reads (cached summaries),
        and the set-level total is computed once per set — the blow-up guard
        re-measures every candidate rewrite, so this is a hot query.
        """
        if self._operator_count is None:
            self._operator_count = sum(
                constraint.operator_count() for constraint in self._constraints
            )
        return self._operator_count

    def contains_skolem(self) -> bool:
        """Return ``True`` iff any constraint contains a Skolem application."""
        return any(c.contains_skolem() for c in self._constraints)

    def fingerprint(self) -> bytes:
        """Deterministic, order-sensitive content fingerprint of the set.

        Derived from the per-constraint digests (which in turn come from the
        cached structural summaries of the sides), so equal structure yields
        an equal fingerprint in every process.  Order matters deliberately:
        the composition algorithm attempts symbols and simplifies constraints
        in set order, so two reorderings are distinct inputs.  Cached, and —
        being structural — the cache survives pickling.
        """
        if self._fingerprint is None:
            from hashlib import blake2b

            from repro.algebra.digest import DIGEST_SIZE

            h = blake2b(digest_size=DIGEST_SIZE)
            h.update(b"%d|" % len(self._constraints))
            for constraint in self._constraints:
                h.update(constraint.digest())
            self._fingerprint = h.digest()
        return self._fingerprint

    def containments(self) -> Tuple[ContainmentConstraint, ...]:
        """The containment constraints of the set."""
        return tuple(c for c in self._constraints if isinstance(c, ContainmentConstraint))

    def equalities(self) -> Tuple[EqualityConstraint, ...]:
        """The equality constraints of the set."""
        return tuple(c for c in self._constraints if isinstance(c, EqualityConstraint))

    # -- transformations ---------------------------------------------------------

    def substituting(self, name: str, replacement: Expression) -> "ConstraintSet":
        """Replace every occurrence of relation ``name`` by ``replacement``.

        Only constraints that actually mention ``name`` are rewritten (an O(1)
        probe of each constraint's cached name set, or of the symbol index when
        it is already built); the rest are reused as-is.  When nothing mentions
        ``name`` the set itself is returned, so no-op substitutions are
        allocation-free.
        """
        if self._mention_index is not None:
            positions = self._mention_index.get(name)
            if not positions:
                return self
            result = list(self._constraints)
            for position in positions:
                result[position] = result[position].substituting(name, replacement)
            return ConstraintSet(result)
        changed = False
        result = []
        for constraint in self._constraints:
            if name in constraint.relation_names():
                constraint = constraint.substituting(name, replacement)
                changed = True
            result.append(constraint)
        if not changed:
            return self
        return ConstraintSet(result)

    def with_equalities_split(self, name: str = None) -> "ConstraintSet":
        """Convert equality constraints into pairs of containments.

        If ``name`` is given, only equalities mentioning that symbol are split
        (this is what the left- and right-compose steps do); the symbol index
        narrows the scan to the affected constraints.  Otherwise every
        equality is split.  Returns ``self`` when nothing needs splitting.
        """
        if name is not None:
            to_split = {
                position
                for position in self.indices_mentioning(name)
                if isinstance(self._constraints[position], EqualityConstraint)
            }
            if not to_split:
                return self
            result: List[Constraint] = []
            for position, constraint in enumerate(self._constraints):
                if position in to_split:
                    result.extend(constraint.as_containments())
                else:
                    result.append(constraint)
            return ConstraintSet(result)
        result = []
        split_any = False
        for constraint in self._constraints:
            if isinstance(constraint, EqualityConstraint):
                result.extend(constraint.as_containments())
                split_any = True
            else:
                result.append(constraint)
        if not split_any:
            return self
        return ConstraintSet(result)
