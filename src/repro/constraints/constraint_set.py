"""Finite sets of constraints with the query and rewrite operations COMPOSE needs.

A :class:`ConstraintSet` is an immutable, ordered collection of constraints.
Order is preserved because the paper's algorithm follows a user-specified
ordering of the symbols to eliminate and because deterministic ordering makes
runs reproducible; equality ignores order and duplicates.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, List, Tuple

from repro.algebra.expressions import Expression
from repro.constraints.constraint import Constraint, ContainmentConstraint, EqualityConstraint
from repro.exceptions import ConstraintError

__all__ = ["ConstraintSet"]


class ConstraintSet:
    """An immutable ordered set of constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        seen = set()
        ordered: List[Constraint] = []
        for constraint in constraints:
            if not isinstance(constraint, Constraint):
                raise ConstraintError(f"expected a Constraint, got {constraint!r}")
            if constraint not in seen:
                seen.add(constraint)
                ordered.append(constraint)
        self._constraints: Tuple[Constraint, ...] = tuple(ordered)

    # -- collection protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: Constraint) -> bool:
        return constraint in self._constraints

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return set(self._constraints) == set(other._constraints)

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints))

    def __getitem__(self, index: int) -> Constraint:
        return self._constraints[index]

    def __repr__(self) -> str:
        return f"ConstraintSet({len(self._constraints)} constraints)"

    def to_text(self) -> str:
        """Render one constraint per line (parseable back with the parser)."""
        return "\n".join(str(constraint) for constraint in self._constraints)

    # -- building --------------------------------------------------------------

    def adding(self, *constraints: Constraint) -> "ConstraintSet":
        """Return a new set with the given constraints appended."""
        return ConstraintSet(self._constraints + constraints)

    def removing(self, *constraints: Constraint) -> "ConstraintSet":
        """Return a new set without the given constraints."""
        removed = set(constraints)
        return ConstraintSet(c for c in self._constraints if c not in removed)

    def replacing(self, old: Constraint, new_constraints: Iterable[Constraint]) -> "ConstraintSet":
        """Return a new set with ``old`` replaced (in place) by ``new_constraints``."""
        result: List[Constraint] = []
        replaced = False
        for constraint in self._constraints:
            if constraint == old and not replaced:
                result.extend(new_constraints)
                replaced = True
            else:
                result.append(constraint)
        if not replaced:
            raise ConstraintError("constraint to replace is not in the set")
        return ConstraintSet(result)

    def union(self, other: "ConstraintSet") -> "ConstraintSet":
        """Return the union of two constraint sets (order: self then other)."""
        return ConstraintSet(tuple(self._constraints) + tuple(other._constraints))

    def map(self, fn: Callable[[Constraint], Constraint]) -> "ConstraintSet":
        """Return a new set with ``fn`` applied to every constraint.

        Returns ``self`` when ``fn`` leaves every constraint identical, so
        no-op rewrites (substituting an absent symbol, re-simplifying an
        already-simplified set) skip the dedup pass entirely.
        """
        mapped = [fn(constraint) for constraint in self._constraints]
        if all(new is old for new, old in zip(mapped, self._constraints)):
            return self
        return ConstraintSet(mapped)

    def filter(self, predicate: Callable[[Constraint], bool]) -> "ConstraintSet":
        """Return a new set keeping only constraints satisfying ``predicate``."""
        return ConstraintSet(c for c in self._constraints if predicate(c))

    def without_trivial(self) -> "ConstraintSet":
        """Drop constraints of the form ``E ⊆ E`` / ``E = E``."""
        return self.filter(lambda c: not c.is_trivial())

    # -- queries ----------------------------------------------------------------

    def relation_names(self) -> FrozenSet[str]:
        """All relation symbols mentioned anywhere in the set."""
        names: set = set()
        for constraint in self._constraints:
            names |= constraint.relation_names()
        return frozenset(names)

    def constraints_mentioning(self, name: str) -> Tuple[Constraint, ...]:
        """Constraints that mention relation ``name`` on either side."""
        return tuple(c for c in self._constraints if c.mentions(name))

    def mentions(self, name: str) -> bool:
        """Return ``True`` iff any constraint mentions relation ``name``."""
        return any(c.mentions(name) for c in self._constraints)

    def operator_count(self) -> int:
        """Total number of operator nodes across all constraints (size metric)."""
        return sum(c.operator_count() for c in self._constraints)

    def contains_skolem(self) -> bool:
        """Return ``True`` iff any constraint contains a Skolem application."""
        return any(c.contains_skolem() for c in self._constraints)

    def containments(self) -> Tuple[ContainmentConstraint, ...]:
        """The containment constraints of the set."""
        return tuple(c for c in self._constraints if isinstance(c, ContainmentConstraint))

    def equalities(self) -> Tuple[EqualityConstraint, ...]:
        """The equality constraints of the set."""
        return tuple(c for c in self._constraints if isinstance(c, EqualityConstraint))

    # -- transformations ---------------------------------------------------------

    def substituting(self, name: str, replacement: Expression) -> "ConstraintSet":
        """Replace every occurrence of relation ``name`` by ``replacement``."""
        return self.map(lambda c: c.substituting(name, replacement))

    def with_equalities_split(self, name: str = None) -> "ConstraintSet":
        """Convert equality constraints into pairs of containments.

        If ``name`` is given, only equalities mentioning that symbol are split
        (this is what the left- and right-compose steps do); otherwise every
        equality is split.
        """
        result: List[Constraint] = []
        for constraint in self._constraints:
            should_split = isinstance(constraint, EqualityConstraint) and (
                name is None or constraint.mentions(name)
            )
            if should_split:
                result.extend(constraint.as_containments())
            else:
                result.append(constraint)
        return ConstraintSet(result)
