"""Registration of the extended ("user-defined") operators.

The paper's key observation is that only *partial* knowledge of an operator is
needed for composition: knowing in which arguments it is monotone already lets
left- and right-compose substitute through it, and D-/∅-identities let the
clean-up steps simplify around it.  This module registers that knowledge for
the three extended operators the paper mentions explicitly — semijoin,
anti-semijoin and left outerjoin — through the same public registry API an
end user would employ for their own operators (see ``examples/extensibility.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algebra.expressions import (
    AntiSemiJoin,
    Empty,
    Expression,
    LeftOuterJoin,
    SemiJoin,
)
from repro.operators.monotonicity import Monotonicity, combine_same_polarity, flip
from repro.operators.registry import OperatorRegistry

__all__ = [
    "register_extended_operators",
    "semijoin_monotonicity",
    "antisemijoin_monotonicity",
    "leftouterjoin_monotonicity",
]


def semijoin_monotonicity(
    expression: Expression, child_values: Tuple[Monotonicity, ...]
) -> Monotonicity:
    """``E1 ⋉ E2`` is monotone in both arguments."""
    return combine_same_polarity(child_values)


def antisemijoin_monotonicity(
    expression: Expression, child_values: Tuple[Monotonicity, ...]
) -> Monotonicity:
    """``E1 ▷ E2`` is monotone in the first argument, anti-monotone in the second."""
    left, right = child_values
    return combine_same_polarity((left, flip(right)))


def leftouterjoin_monotonicity(
    expression: Expression, child_values: Tuple[Monotonicity, ...]
) -> Monotonicity:
    """``E1 ⟕ E2`` is monotone in the first argument but not in the second.

    Adding tuples to the right operand can *remove* NULL-padded result rows, so
    whenever the symbol occurs in the right operand the result is unknown.
    """
    left, right = child_values
    if right is not Monotonicity.INDEPENDENT:
        return Monotonicity.UNKNOWN
    return left


def _semijoin_simplify(expression: Expression) -> Optional[Expression]:
    """∅ identities for semijoin: ``∅ ⋉ E = ∅`` and ``E ⋉ ∅ = ∅``."""
    assert isinstance(expression, SemiJoin)
    if isinstance(expression.left, Empty) or isinstance(expression.right, Empty):
        return Empty(expression.arity)
    return None


def _antisemijoin_simplify(expression: Expression) -> Optional[Expression]:
    """∅ identities for anti-semijoin: ``∅ ▷ E = ∅`` and ``E ▷ ∅ = E``."""
    assert isinstance(expression, AntiSemiJoin)
    if isinstance(expression.left, Empty):
        return Empty(expression.arity)
    if isinstance(expression.right, Empty):
        return expression.left
    return None


def _leftouterjoin_simplify(expression: Expression) -> Optional[Expression]:
    """∅ identity for left outerjoin: ``∅ ⟕ E = ∅``."""
    assert isinstance(expression, LeftOuterJoin)
    if isinstance(expression.left, Empty):
        return Empty(expression.arity)
    return None


def register_extended_operators(registry: OperatorRegistry) -> None:
    """Register monotonicity and simplification knowledge for the extended operators."""
    registry.register_operator(
        SemiJoin,
        monotonicity_rule=semijoin_monotonicity,
        simplification_rule=_semijoin_simplify,
        description="semijoin: monotone in both arguments",
    )
    registry.register_operator(
        AntiSemiJoin,
        monotonicity_rule=antisemijoin_monotonicity,
        simplification_rule=_antisemijoin_simplify,
        description="anti-semijoin: monotone in the left argument, anti-monotone in the right",
    )
    registry.register_operator(
        LeftOuterJoin,
        monotonicity_rule=leftouterjoin_monotonicity,
        simplification_rule=_leftouterjoin_simplify,
        description="left outerjoin: monotone in the left argument only",
    )
