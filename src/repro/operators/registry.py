"""The operator registry — the extensibility point of the algorithm.

The paper stresses that the composition algorithm is "extensible by allowing
additional information to be added separately for each operator in the form of
information about monotonicity and rules for normalization and
denormalization".  The :class:`OperatorRegistry` is that mechanism: each
registered operator type may supply

* a **monotonicity rule** — how the operator combines the monotonicity of its
  operands (consumed by :func:`repro.operators.monotonicity.monotonicity`);
* a **left-normalization rule** — how to rewrite a containment whose left side
  has this operator on top so the symbol being eliminated moves closer to
  being alone on the left (consumed by left-normalize);
* a **right-normalization rule** — the dual, for the right side (consumed by
  right-normalize);
* a **simplification rule** — extra identities, typically for the special
  relations ``D`` and ``∅`` (consumed by the simplifier and the
  domain-/empty-elimination steps).

The six basic relational operators are handled natively by the corresponding
modules; the registry is consulted for everything else.  The extended
operators shipped with the library (semijoin, anti-semijoin, left outerjoin)
are registered through exactly this public interface — see
:mod:`repro.operators.extended`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.algebra.expressions import Expression
from repro.exceptions import RegistryError
from repro.operators.monotonicity import Monotonicity

__all__ = ["OperatorRule", "OperatorRegistry", "default_registry"]


#: A monotonicity rule receives the expression and the per-child classifications
#: and returns the classification of the whole expression (or None to decline).
MonotonicityRule = Callable[[Expression, Tuple[Monotonicity, ...]], Optional[Monotonicity]]

#: Normalization rules receive the containment constraint (as a (left, right)
#: pair of expressions), the symbol being eliminated, and a rewrite context;
#: they return a list of replacement (left, right) pairs, or None if the rule
#: does not apply / the rewrite is impossible.
NormalizationRule = Callable[[Expression, Expression, str, object], Optional[List[Tuple[Expression, Expression]]]]

#: A simplification rule receives a node (whose children are already simplified)
#: and returns a replacement node or None to leave it unchanged.
SimplificationRule = Callable[[Expression], Optional[Expression]]


@dataclass
class OperatorRule:
    """The bundle of per-operator knowledge the registry stores."""

    operator_type: Type[Expression]
    monotonicity_rule: Optional[MonotonicityRule] = None
    left_normalization_rule: Optional[NormalizationRule] = None
    right_normalization_rule: Optional[NormalizationRule] = None
    simplification_rule: Optional[SimplificationRule] = None
    description: str = ""


class OperatorRegistry:
    """Mutable collection of :class:`OperatorRule` entries keyed by node type."""

    def __init__(self) -> None:
        self._rules: Dict[Type[Expression], OperatorRule] = {}
        #: Bumped on every (un)registration; rule-dependent memo tables (the
        #: normalization-failure memo in repro.algebra.interning) key on it so
        #: extending a registry mid-run invalidates stale entries.
        self.version = 0

    # -- registration -----------------------------------------------------------

    def register(self, rule: OperatorRule) -> None:
        """Register (or replace) the rule bundle for an operator type."""
        if not isinstance(rule, OperatorRule):
            raise RegistryError(f"expected an OperatorRule, got {rule!r}")
        if not (isinstance(rule.operator_type, type) and issubclass(rule.operator_type, Expression)):
            raise RegistryError(
                f"operator_type must be an Expression subclass, got {rule.operator_type!r}"
            )
        self._rules[rule.operator_type] = rule
        self.version += 1

    def register_operator(
        self,
        operator_type: Type[Expression],
        monotonicity_rule: Optional[MonotonicityRule] = None,
        left_normalization_rule: Optional[NormalizationRule] = None,
        right_normalization_rule: Optional[NormalizationRule] = None,
        simplification_rule: Optional[SimplificationRule] = None,
        description: str = "",
    ) -> OperatorRule:
        """Convenience wrapper building and registering an :class:`OperatorRule`."""
        rule = OperatorRule(
            operator_type=operator_type,
            monotonicity_rule=monotonicity_rule,
            left_normalization_rule=left_normalization_rule,
            right_normalization_rule=right_normalization_rule,
            simplification_rule=simplification_rule,
            description=description,
        )
        self.register(rule)
        return rule

    def unregister(self, operator_type: Type[Expression]) -> None:
        """Remove the rule bundle for an operator type (no-op if absent)."""
        self._rules.pop(operator_type, None)
        self.version += 1

    def copy(self) -> "OperatorRegistry":
        """Return an independent copy (so callers can extend without side effects)."""
        clone = OperatorRegistry()
        clone._rules = dict(self._rules)
        return clone

    # -- queries ------------------------------------------------------------------

    def registered_types(self) -> Tuple[Type[Expression], ...]:
        """The operator types with registered rules."""
        return tuple(self._rules)

    def rule_for(self, expression: Expression) -> Optional[OperatorRule]:
        """Return the rule bundle for this expression's type, or ``None``."""
        return self._rules.get(type(expression))

    def fingerprint(self) -> bytes:
        """Deterministic content fingerprint of the registry's rule set.

        Covers the registered operator types, which of the four rule slots
        each fills (by the rule functions' qualified names), and the mutation
        ``version``, so registering or removing a rule mid-run retires every
        fingerprint derived from the old rule set — exactly how the
        incremental-recomposition checkpoints are invalidated.  Two registries
        built the same way (e.g. fresh :func:`default_registry` copies)
        fingerprint equal, so checkpoint reuse survives config reconstruction.
        """
        from hashlib import blake2b

        h = blake2b(digest_size=16)
        h.update(b"v%d|" % self.version)
        entries = []
        for operator_type, rule in self._rules.items():
            slots = tuple(
                f"{fn.__module__}.{fn.__qualname__}" if fn is not None else None
                for fn in (
                    rule.monotonicity_rule,
                    rule.left_normalization_rule,
                    rule.right_normalization_rule,
                    rule.simplification_rule,
                )
            )
            entries.append(
                (f"{operator_type.__module__}.{operator_type.__qualname__}", slots)
            )
        for entry in sorted(entries):
            h.update(repr(entry).encode())
        return h.digest()

    def knows(self, expression: Expression) -> bool:
        """Return ``True`` if the expression's operator has any registered rule."""
        return type(expression) in self._rules

    # -- hooks consumed by the algorithm --------------------------------------------

    def combine_monotonicity(
        self, expression: Expression, child_values: Tuple[Monotonicity, ...]
    ) -> Optional[Monotonicity]:
        """Apply the registered monotonicity rule, if any."""
        rule = self.rule_for(expression)
        if rule is None or rule.monotonicity_rule is None:
            return None
        return rule.monotonicity_rule(expression, child_values)

    def left_normalize(
        self, left: Expression, right: Expression, symbol: str, context
    ) -> Optional[List[Tuple[Expression, Expression]]]:
        """Apply the registered left-normalization rule for the LHS operator, if any."""
        rule = self.rule_for(left)
        if rule is None or rule.left_normalization_rule is None:
            return None
        return rule.left_normalization_rule(left, right, symbol, context)

    def right_normalize(
        self, left: Expression, right: Expression, symbol: str, context
    ) -> Optional[List[Tuple[Expression, Expression]]]:
        """Apply the registered right-normalization rule for the RHS operator, if any."""
        rule = self.rule_for(right)
        if rule is None or rule.right_normalization_rule is None:
            return None
        return rule.right_normalization_rule(left, right, symbol, context)

    def simplify_node(self, expression: Expression) -> Optional[Expression]:
        """Apply the registered simplification rule, if any."""
        rule = self.rule_for(expression)
        if rule is None or rule.simplification_rule is None:
            return None
        return rule.simplification_rule(expression)


_DEFAULT_REGISTRY: Optional[OperatorRegistry] = None


def default_registry() -> OperatorRegistry:
    """Return a fresh copy of the default registry.

    The default registry contains the rules for the extended operators shipped
    with the library (semijoin, anti-semijoin and left outerjoin).  Each call
    returns an independent copy so callers may add or remove rules freely.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.operators.extended import register_extended_operators

        registry = OperatorRegistry()
        register_extended_operators(registry)
        _DEFAULT_REGISTRY = registry
    return _DEFAULT_REGISTRY.copy()
