"""The MONOTONE procedure (Section 3.3 of the paper).

``MONOTONE(E, S)`` classifies how expression ``E`` depends on the relation
symbol ``S``:

* ``MONOTONE``      — adding tuples to ``S`` can only add tuples to ``E``;
* ``ANTI_MONOTONE`` — adding tuples to ``S`` can only remove tuples from ``E``;
* ``INDEPENDENT``   — ``E`` does not depend on ``S`` at all;
* ``UNKNOWN``       — the (sound but incomplete) analysis cannot tell.

The procedure is recursive: leaves are classified directly, and each operator
combines the classifications of its operands through a lookup table.  The six
basic operators have built-in tables; user-defined operators contribute their
own tables through the operator registry, which makes the analysis extensible
exactly as described in the paper.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

from repro.algebra.expressions import (
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    Union,
)

__all__ = ["Monotonicity", "monotonicity", "is_monotone", "combine_same_polarity", "flip"]


class Monotonicity(enum.Enum):
    """Four-valued result of the MONOTONE procedure."""

    MONOTONE = "m"
    ANTI_MONOTONE = "a"
    INDEPENDENT = "i"
    UNKNOWN = "u"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


M = Monotonicity.MONOTONE
A = Monotonicity.ANTI_MONOTONE
I = Monotonicity.INDEPENDENT
U = Monotonicity.UNKNOWN


def flip(value: Monotonicity) -> Monotonicity:
    """Swap monotone and anti-monotone (used for anti-monotone argument positions)."""
    if value is M:
        return A
    if value is A:
        return M
    return value


def combine_same_polarity(values: Sequence[Monotonicity]) -> Monotonicity:
    """Combine classifications of operands that all contribute *positively*.

    This is the shared table for ∪, ∩ and × (the paper notes these three
    behave identically for MONOTONE): the result is monotone if every operand
    is monotone or independent, anti-monotone if every operand is
    anti-monotone or independent, independent if all are independent, and
    unknown otherwise.
    """
    if any(value is U for value in values):
        return U
    if all(value is I for value in values):
        return I
    if all(value in (M, I) for value in values):
        return M
    if all(value in (A, I) for value in values):
        return A
    return U


def _combine_difference(left: Monotonicity, right: Monotonicity) -> Monotonicity:
    """Combination table for set difference ``E1 − E2``.

    The right operand occurs negatively, so its classification is flipped
    before combining.
    """
    return combine_same_polarity((left, flip(right)))


def monotonicity(expression: Expression, symbol: str, registry=None) -> Monotonicity:
    """Classify how ``expression`` depends on the relation symbol ``symbol``.

    ``registry`` (an :class:`~repro.operators.registry.OperatorRegistry`)
    supplies combination rules for operators that are not among the built-in
    ones; without it, any unknown operator that involves ``symbol`` yields
    ``UNKNOWN`` (the paper's "tolerance for unknown operators": the analysis
    never guesses).
    """
    if isinstance(expression, Relation):
        return M if expression.name == symbol else I
    if isinstance(expression, (Domain, Empty, ConstantRelation)):
        # D grows when any relation grows, but only by gaining *values*, which
        # never removes tuples from any result; treating D as independent of a
        # specific symbol matches the paper's usage (D is a derived shorthand).
        return I

    children = expression.children
    child_values: Tuple[Monotonicity, ...] = tuple(
        monotonicity(child, symbol, registry) for child in children
    )

    if isinstance(expression, (Union, Intersection, CrossProduct)):
        return combine_same_polarity(child_values)
    if isinstance(expression, Difference):
        return _combine_difference(child_values[0], child_values[1])
    if isinstance(expression, (Selection, Projection, SkolemApplication)):
        # σ, π (and the Skolem pseudo-operator) do not affect monotonicity.
        return child_values[0]

    if registry is not None:
        combined = registry.combine_monotonicity(expression, child_values)
        if combined is not None:
            return combined

    # Unknown operator: if the symbol does not occur below, the expression is
    # independent of it regardless of what the operator does.
    if all(value is I for value in child_values):
        return I
    return U


def is_monotone(expression: Expression, symbol: str, registry=None) -> bool:
    """Return ``True`` iff the expression is (known to be) monotone or independent in ``symbol``."""
    return monotonicity(expression, symbol, registry) in (M, I)
