"""Operator knowledge: monotonicity analysis and the extensibility registry."""

from repro.operators.monotonicity import Monotonicity, is_monotone, monotonicity
from repro.operators.registry import OperatorRegistry, OperatorRule, default_registry
from repro.operators.extended import register_extended_operators

__all__ = [
    "Monotonicity",
    "monotonicity",
    "is_monotone",
    "OperatorRegistry",
    "OperatorRule",
    "default_registry",
    "register_extended_operators",
]
