"""Convenience constructors for common expression shapes.

The paper treats the join operator as derived from ×, σ and π; these helpers
build that and a few other recurring shapes (column placement, domain padding,
key-equality selections) that the composition algorithm and the schema
evolution simulator both need.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.algebra.conditions import Condition, TRUE, conjunction, equals
from repro.algebra.expressions import (
    CrossProduct,
    Domain,
    Expression,
    Projection,
    Relation,
    Selection,
)
from repro.exceptions import ArityError, ExpressionError

__all__ = [
    "relation",
    "project",
    "select",
    "product",
    "theta_join",
    "equijoin",
    "natural_key_join",
    "identity_projection",
    "column_placement",
    "pad_right_with_domain",
    "pad_left_with_domain",
    "key_equality_condition",
    "permute",
    "cross_product_all",
]


def relation(name: str, arity: int) -> Relation:
    """Build a reference to relation ``name`` of the given arity."""
    return Relation(name, arity)


def project(expression: Expression, indices: Iterable[int]) -> Expression:
    """Build ``π_indices(expression)``, collapsing identity projections."""
    indices = tuple(indices)
    if indices == tuple(range(expression.arity)):
        return expression
    return Projection(expression, indices)


def select(expression: Expression, condition: Condition) -> Expression:
    """Build ``σ_condition(expression)``, collapsing trivially-true selections."""
    if condition == TRUE:
        return expression
    return Selection(expression, condition)


def product(left: Expression, right: Expression) -> CrossProduct:
    """Build the cross product ``left × right``."""
    return CrossProduct(left, right)


def cross_product_all(expressions: Sequence[Expression]) -> Expression:
    """Left-associatively cross-product a non-empty sequence of expressions."""
    if not expressions:
        raise ExpressionError("cross_product_all requires at least one expression")
    result = expressions[0]
    for expression in expressions[1:]:
        result = CrossProduct(result, expression)
    return result


def theta_join(left: Expression, right: Expression, condition: Condition) -> Expression:
    """Build the theta-join ``σ_condition(left × right)`` (all columns kept)."""
    return select(CrossProduct(left, right), condition)


def equijoin(
    left: Expression,
    right: Expression,
    pairs: Iterable[Tuple[int, int]],
    keep: Sequence[int] = None,
) -> Expression:
    """Build an equijoin of ``left`` and ``right``.

    ``pairs`` lists ``(left_index, right_index)`` pairs of columns that must be
    equal; right indices are given relative to the right operand and shifted
    internally.  ``keep`` optionally projects the result onto a subset of the
    combined columns (indices relative to the concatenation).
    """
    comparisons = [
        equals(left_index, left.arity + right_index) for left_index, right_index in pairs
    ]
    joined = theta_join(left, right, conjunction(comparisons))
    if keep is not None:
        joined = project(joined, keep)
    return joined


def natural_key_join(
    left: Expression, right: Expression, key_width: int
) -> Expression:
    """Join two relations that share their first ``key_width`` columns.

    This is the shape produced by the vertical-partitioning primitive
    ``R = S ⋈_A T`` where ``A`` is the key: the result has the key columns
    once, followed by the non-key columns of ``left`` then of ``right``.
    """
    if key_width <= 0:
        raise ArityError("natural_key_join requires a positive key width")
    if key_width > left.arity or key_width > right.arity:
        raise ArityError(
            f"key width {key_width} exceeds operand arity "
            f"({left.arity} and {right.arity})"
        )
    pairs = [(i, i) for i in range(key_width)]
    keep = list(range(left.arity)) + [
        left.arity + key_width + i for i in range(right.arity - key_width)
    ]
    return equijoin(left, right, pairs, keep)


def identity_projection(expression: Expression) -> Projection:
    """Build the explicit identity projection of an expression."""
    return Projection(expression, tuple(range(expression.arity)))


def permute(expression: Expression, order: Sequence[int]) -> Expression:
    """Reorder the columns of an expression according to ``order``."""
    return project(expression, order)


def pad_right_with_domain(expression: Expression, count: int) -> Expression:
    """Append ``count`` unconstrained (active-domain) columns on the right."""
    if count < 0:
        raise ArityError("cannot pad with a negative number of columns")
    if count == 0:
        return expression
    return CrossProduct(expression, Domain(count))


def pad_left_with_domain(expression: Expression, count: int) -> Expression:
    """Prepend ``count`` unconstrained (active-domain) columns on the left."""
    if count < 0:
        raise ArityError("cannot pad with a negative number of columns")
    if count == 0:
        return expression
    return CrossProduct(Domain(count), expression)


def column_placement(
    expression: Expression, positions: Sequence[int], total_arity: int
) -> Expression:
    """Place the columns of ``expression`` at ``positions`` inside a wider tuple.

    The result has arity ``total_arity``; column ``i`` of ``expression`` lands
    at ``positions[i]`` and every other column ranges over the active domain.
    This is the building block of the left-normalization rule for projection:
    ``π_I(E1) ⊆ E2  ↔  E1 ⊆ place(E2, I, arity(E1))``.

    ``positions`` must be distinct and within range.
    """
    positions = tuple(positions)
    if len(positions) != expression.arity:
        raise ArityError(
            f"column_placement needs one position per column "
            f"({expression.arity}), got {len(positions)}"
        )
    if len(set(positions)) != len(positions):
        raise ArityError("column_placement positions must be distinct")
    if any(p < 0 or p >= total_arity for p in positions):
        raise ArityError("column_placement position out of range")
    if total_arity < expression.arity:
        raise ArityError("total arity smaller than the expression arity")

    extra = total_arity - expression.arity
    padded = pad_right_with_domain(expression, extra)
    # Column i of ``expression`` currently sits at position i of ``padded``;
    # the j-th padding column sits at expression.arity + j.  Build the output
    # order so that target position ``positions[i]`` reads column i.
    order = [0] * total_arity
    used = set(positions)
    free_targets = [t for t in range(total_arity) if t not in used]
    for source, target in enumerate(positions):
        order[target] = source
    for offset, target in enumerate(free_targets):
        order[target] = expression.arity + offset
    return project(padded, order)


def key_equality_condition(width: int, key_width: int) -> Condition:
    """Condition stating two concatenated ``width``-tuples agree on the first ``key_width`` columns."""
    return conjunction(equals(i, width + i) for i in range(key_width))
