"""Generic traversal, inspection and rewriting utilities for expressions.

These helpers are the only way the rest of the library walks or rewrites
expression trees, so new operators added through the registry automatically
work with substitution, symbol collection and size metrics — the key to the
paper's extensibility story.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, Set

from repro.algebra import interning
from repro.algebra.expressions import (
    Domain,
    Empty,
    Expression,
    Relation,
    SkolemApplication,
    SkolemFunction,
)
from repro.exceptions import ArityError

__all__ = [
    "walk",
    "transform_bottom_up",
    "substitute_relation",
    "substitute_relations",
    "contains_relation",
    "relation_names",
    "relation_occurrences",
    "skolem_functions",
    "contains_skolem",
    "contains_domain",
    "contains_empty",
    "operator_count",
    "node_count",
    "expression_depth",
]


def walk(expression: Expression) -> Iterator[Expression]:
    """Yield every node of the expression tree in pre-order."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def transform_bottom_up(
    expression: Expression, fn: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild the tree bottom-up, applying ``fn`` to every (rebuilt) node.

    ``fn`` receives a node whose children have already been transformed and
    returns its replacement (possibly the same node).
    """
    children = expression.children
    if children:
        new_children = tuple(transform_bottom_up(child, fn) for child in children)
        if new_children != children:
            expression = expression.with_children(new_children)
    return fn(expression)


def substitute_relation(
    expression: Expression, name: str, replacement: Expression
) -> Expression:
    """Replace every occurrence of the relation symbol ``name`` by ``replacement``.

    The replacement must have the same arity as the symbol it replaces;
    otherwise the resulting expression would be ill-formed and an
    :class:`ArityError` is raised.
    """

    cache = interning.active_cache()
    if cache is not None and name not in cache.relation_names(expression):
        return expression

    def rewrite(node: Expression) -> Expression:
        if isinstance(node, Relation) and node.name == name:
            if replacement.arity != node.arity:
                raise ArityError(
                    f"cannot substitute relation {name!r} of arity {node.arity} "
                    f"with an expression of arity {replacement.arity}"
                )
            return replacement
        return node

    return transform_bottom_up(expression, rewrite)


def substitute_relations(
    expression: Expression, replacements: Dict[str, Expression]
) -> Expression:
    """Replace several relation symbols at once (non-recursively)."""
    cache = interning.active_cache()
    if cache is not None and not (
        cache.relation_names(expression) & replacements.keys()
    ):
        return expression

    def rewrite(node: Expression) -> Expression:
        if isinstance(node, Relation) and node.name in replacements:
            replacement = replacements[node.name]
            if replacement.arity != node.arity:
                raise ArityError(
                    f"cannot substitute relation {node.name!r} of arity {node.arity} "
                    f"with an expression of arity {replacement.arity}"
                )
            return replacement
        return node

    return transform_bottom_up(expression, rewrite)


def contains_relation(expression: Expression, name: str) -> bool:
    """Return ``True`` iff the expression references the relation symbol ``name``."""
    cache = interning.active_cache()
    if cache is not None:
        return name in cache.relation_names(expression)
    return any(isinstance(node, Relation) and node.name == name for node in walk(expression))


def relation_names(expression: Expression) -> FrozenSet[str]:
    """Return the set of base relation symbols referenced by the expression."""
    cache = interning.active_cache()
    if cache is not None:
        return cache.relation_names(expression)
    names: Set[str] = set()
    for node in walk(expression):
        if isinstance(node, Relation):
            names.add(node.name)
    return frozenset(names)


def relation_occurrences(expression: Expression, name: str) -> int:
    """Return the number of occurrences of relation symbol ``name``."""
    return sum(
        1 for node in walk(expression) if isinstance(node, Relation) and node.name == name
    )


def skolem_functions(expression: Expression) -> FrozenSet[SkolemFunction]:
    """Return the set of Skolem functions applied anywhere in the expression."""
    functions: Set[SkolemFunction] = set()
    for node in walk(expression):
        if isinstance(node, SkolemApplication):
            functions.add(node.function)
    return frozenset(functions)


def contains_skolem(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains any Skolem application."""
    return any(isinstance(node, SkolemApplication) for node in walk(expression))


def contains_domain(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains the active-domain relation ``D``."""
    return any(isinstance(node, Domain) for node in walk(expression))


def contains_empty(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains the empty relation ``∅``."""
    return any(isinstance(node, Empty) for node in walk(expression))


def operator_count(expression: Expression) -> int:
    """Return the number of operator (non-leaf) nodes in the expression.

    This is the size metric the paper uses ("the total number of operators
    across all constraints") for the blow-up abort criterion.  The count is
    cached on the (immutable) node, since the blow-up guard re-measures the
    same sub-trees after every candidate rewrite.
    """
    try:
        return object.__getattribute__(expression, "_operator_count")
    except AttributeError:
        pass
    count = (0 if expression.is_leaf() else 1) + sum(
        operator_count(child) for child in expression.children
    )
    object.__setattr__(expression, "_operator_count", count)
    return count


def node_count(expression: Expression) -> int:
    """Return the total number of AST nodes, leaves included."""
    return sum(1 for _ in walk(expression))


def expression_depth(expression: Expression) -> int:
    """Return the height of the expression tree (a single leaf has depth 1)."""
    children = expression.children
    if not children:
        return 1
    return 1 + max(expression_depth(child) for child in children)
