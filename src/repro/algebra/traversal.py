"""Generic traversal, inspection and rewriting utilities for expressions.

These helpers are the only way the rest of the library walks or rewrites
expression trees, so new operators added through the registry automatically
work with substitution, symbol collection and size metrics — the key to the
paper's extensibility story.

All helpers are iterative (explicit stacks, no Python recursion), so they are
safe on the very deep Union/Intersection chains that left- and
right-normalization produce.  The size and symbol queries are answered from
the one-pass cached summary of :mod:`repro.algebra.summary`, so repeated
probes — the blow-up guard, the "does this constraint mention S?" scans — cost
an attribute read instead of a tree walk.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, Set

from repro.algebra import interning
from repro.algebra.expressions import (
    Expression,
    Relation,
    SkolemApplication,
    SkolemFunction,
)
from repro.algebra.summary import node_summary
from repro.exceptions import ArityError

__all__ = [
    "walk",
    "transform_bottom_up",
    "substitute_relation",
    "substitute_relations",
    "contains_relation",
    "relation_names",
    "relation_occurrences",
    "skolem_functions",
    "contains_skolem",
    "contains_domain",
    "contains_empty",
    "operator_count",
    "node_count",
    "expression_depth",
]


def walk(expression: Expression) -> Iterator[Expression]:
    """Yield every node of the expression tree in pre-order."""
    stack = [expression]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def transform_bottom_up(
    expression: Expression, fn: Callable[[Expression], Expression]
) -> Expression:
    """Rebuild the tree bottom-up, applying ``fn`` to every (rebuilt) node.

    ``fn`` receives a node whose children have already been transformed and
    returns its replacement (possibly the same node).  ``fn`` must be a pure
    function of its argument: the rewrite is DAG-aware, so a subtree that is
    shared (the same object reached through several parents) is transformed
    once and the result reused.  Change detection uses object identity — when
    ``fn`` and the children rebuilds return the very same objects, the original
    node is kept, which makes no-op rewrites allocation-free.
    """
    # Keyed by id(): valid while the input tree is alive (it is, for the whole
    # call), and avoids hashing nodes — important both for speed and because a
    # fresh deep tree has no cached hash to lean on.
    memo: Dict[int, Expression] = {}
    stack = [(expression, False)]
    while stack:
        node, ready = stack.pop()
        key = id(node)
        if key in memo:
            continue
        children = node.children
        if not ready and children:
            stack.append((node, True))
            for child in children:
                if id(child) not in memo:
                    stack.append((child, False))
            continue
        if children:
            new_children = tuple(memo[id(child)] for child in children)
            if any(new is not old for new, old in zip(new_children, children)):
                node = node.with_children(new_children)
        memo[key] = fn(node)
    return memo[id(expression)]


def _substitute(
    expression: Expression,
    matches: Callable[[Relation], "Expression | None"],
    targets: FrozenSet[str],
    memo: Dict[Expression, Expression],
) -> Expression:
    """Shared iterative engine of the relation-substitution helpers.

    ``matches`` maps a Relation leaf to its replacement (or ``None``);
    ``targets`` is the set of symbol names being replaced.  The walk descends
    *only* into children whose cached summary mentions a target symbol, so the
    cost is proportional to the paths leading to actual occurrences, not to
    the whole tree.  ``memo`` maps rewritten subtrees to their results;
    summaries (and therefore node hashes) are warmed on entry and maintained
    for rebuilt nodes, so the structural keying never deep-recurses and the
    substituted tree comes out pre-summarized.

    Precondition: ``expression``'s (and the replacements') summaries are warm
    and ``expression`` mentions at least one target.
    """
    target = next(iter(targets)) if len(targets) == 1 else None
    stack = [(expression, False)]
    push = stack.append
    pop = stack.pop
    while stack:
        node, ready = pop()
        if ready:
            # At least one child mentioned a target, so the rebuild always
            # changes the node; pruned children fall back to themselves.
            rebuilt = node.with_children(
                tuple(memo.get(child, child) for child in node.children)
            )
            node_summary(rebuilt)
            memo[node] = rebuilt
            continue
        if node in memo:
            continue
        if isinstance(node, Relation):
            replacement = matches(node)
            if replacement is None:
                memo[node] = node
            else:
                if replacement.arity != node.arity:
                    raise ArityError(
                        f"cannot substitute relation {node.name!r} of arity {node.arity} "
                        f"with an expression of arity {replacement.arity}"
                    )
                memo[node] = replacement
            continue
        push((node, True))
        if target is not None:
            for child in node.children:
                if target in child._summary.relation_names and child not in memo:
                    push((child, False))
        else:
            for child in node.children:
                if targets & child._summary.relation_names and child not in memo:
                    push((child, False))
    return memo[expression]


#: Trees below this node count are substituted with a throwaway memo — for
#: them, probing the cache's persistent per-(symbol, replacement) table costs
#: more than the walk itself.
_SUBSTITUTION_MEMO_THRESHOLD = 32


def substitute_relation(
    expression: Expression, name: str, replacement: Expression
) -> Expression:
    """Replace every occurrence of the relation symbol ``name`` by ``replacement``.

    The replacement must have the same arity as the symbol it replaces;
    otherwise the resulting expression would be ill-formed and an
    :class:`ArityError` is raised.
    """
    if isinstance(expression, Relation):
        # The dominant case on rename-heavy workloads: a bare-symbol side.
        if expression.name != name:
            return expression
        if replacement.arity != expression.arity:
            raise ArityError(
                f"cannot substitute relation {name!r} of arity {expression.arity} "
                f"with an expression of arity {replacement.arity}"
            )
        return replacement
    summary = node_summary(expression)
    if name not in summary.relation_names:
        return expression
    node_summary(replacement)  # rebuilt nodes combine child summaries shallowly
    shared = None
    if summary.node_count >= _SUBSTITUTION_MEMO_THRESHOLD:
        cache = interning.active_cache()
        if cache is not None:
            shared = cache.substitution_memo(name, replacement)
            cached = shared.get(expression)
            if cached is not None:
                return cached
    # The walk always runs on a private memo — the shared table may be
    # evicted (cleared) by another thread at any time, so it is only probed
    # and published at whole-expression granularity.
    result = _substitute(
        expression,
        lambda node: replacement if node.name == name else None,
        frozenset((name,)),
        {},
    )
    if shared is not None:
        shared[expression] = result
    return result


def substitute_relations(
    expression: Expression, replacements: Dict[str, Expression]
) -> Expression:
    """Replace several relation symbols at once (non-recursively)."""
    targets = frozenset(replacements)
    if not targets & node_summary(expression).relation_names:
        return expression
    for replacement in replacements.values():
        node_summary(replacement)
    return _substitute(expression, lambda node: replacements.get(node.name), targets, {})


def contains_relation(expression: Expression, name: str) -> bool:
    """Return ``True`` iff the expression references the relation symbol ``name``."""
    return name in node_summary(expression).relation_names


def relation_names(expression: Expression) -> FrozenSet[str]:
    """Return the set of base relation symbols referenced by the expression."""
    return node_summary(expression).relation_names


def relation_occurrences(expression: Expression, name: str) -> int:
    """Return the number of occurrences of relation symbol ``name``."""
    return sum(
        1 for node in walk(expression) if isinstance(node, Relation) and node.name == name
    )


def skolem_functions(expression: Expression) -> FrozenSet[SkolemFunction]:
    """Return the set of Skolem functions applied anywhere in the expression."""
    if not node_summary(expression).contains_skolem:
        return frozenset()
    functions: Set[SkolemFunction] = set()
    for node in walk(expression):
        if isinstance(node, SkolemApplication):
            functions.add(node.function)
    return frozenset(functions)


def contains_skolem(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains any Skolem application."""
    return node_summary(expression).contains_skolem


def contains_domain(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains the active-domain relation ``D``."""
    return node_summary(expression).contains_domain


def contains_empty(expression: Expression) -> bool:
    """Return ``True`` iff the expression contains the empty relation ``∅``."""
    return node_summary(expression).contains_empty


def operator_count(expression: Expression) -> int:
    """Return the number of operator (non-leaf) nodes in the expression.

    This is the size metric the paper uses ("the total number of operators
    across all constraints") for the blow-up abort criterion.  The count comes
    from the one-pass cached summary, since the blow-up guard re-measures the
    same sub-trees after every candidate rewrite.
    """
    return node_summary(expression).operator_count


def node_count(expression: Expression) -> int:
    """Return the total number of AST nodes, leaves included."""
    return node_summary(expression).node_count


def expression_depth(expression: Expression) -> int:
    """Return the height of the expression tree (a single leaf has depth 1)."""
    return node_summary(expression).depth
