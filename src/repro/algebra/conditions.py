"""Boolean selection conditions over indexed attributes and constants.

A condition is the ``c`` in a selection ``σ_c(E)``.  The paper allows ``c`` to
be "an arbitrary boolean formula on attributes (identified by index) and
constants"; this module implements exactly that: comparisons between terms
combined with conjunction, disjunction and negation, plus the trivial ``TRUE``
and ``FALSE`` conditions.

Conditions are immutable and hashable, evaluate against a tuple, and support
the index manipulations needed by normalization rules (shifting, remapping,
collecting referenced indices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Tuple

from repro.algebra.terms import Attribute, Constant, NullValue, Term, resolve_term
from repro.exceptions import ConditionError

__all__ = [
    "Condition",
    "TrueCondition",
    "FalseCondition",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "conjunction",
    "disjunction",
    "equals",
    "equals_const",
    "COMPARISON_OPERATORS",
]


def _safe_lt(left: object, right: object) -> bool:
    """Ordered comparison that never raises on mixed types.

    Values of incomparable types are ordered by their type name so that the
    evaluator is total; NULLs never compare as less-than.
    """
    if isinstance(left, NullValue) or isinstance(right, NullValue):
        return False
    try:
        return left < right  # type: ignore[operator]
    except TypeError:
        return type(left).__name__ < type(right).__name__


def _eq(left: object, right: object) -> bool:
    if isinstance(left, NullValue) or isinstance(right, NullValue):
        return False
    return left == right


#: Supported comparison operators and their semantics.
COMPARISON_OPERATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": _eq,
    "!=": lambda a, b: not isinstance(a, NullValue) and not isinstance(b, NullValue) and a != b,
    "<": _safe_lt,
    "<=": lambda a, b: _safe_lt(a, b) or _eq(a, b),
    ">": lambda a, b: _safe_lt(b, a),
    ">=": lambda a, b: _safe_lt(b, a) or _eq(a, b),
}


class Condition:
    """Abstract base class for selection conditions."""

    def evaluate(self, row: Tuple) -> bool:
        """Return ``True`` iff the condition holds on ``row``."""
        raise NotImplementedError

    def referenced_indices(self) -> FrozenSet[int]:
        """Return the set of column indices the condition mentions."""
        raise NotImplementedError

    def shifted(self, offset: int) -> "Condition":
        """Return the condition with every attribute index shifted by ``offset``."""
        raise NotImplementedError

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        """Return the condition with attribute indices replaced via ``index_map``."""
        raise NotImplementedError

    def negated(self) -> "Condition":
        """Return the logical negation of the condition."""
        return Not(self)

    def max_index(self) -> int:
        """Return the largest referenced index, or ``-1`` if none."""
        refs = self.referenced_indices()
        return max(refs) if refs else -1


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The condition that is always satisfied."""

    def evaluate(self, row: Tuple) -> bool:
        return True

    def referenced_indices(self) -> FrozenSet[int]:
        return frozenset()

    def shifted(self, offset: int) -> "Condition":
        return self

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return self

    def negated(self) -> "Condition":
        return FALSE

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """The condition that is never satisfied."""

    def evaluate(self, row: Tuple) -> bool:
        return False

    def referenced_indices(self) -> FrozenSet[int]:
        return frozenset()

    def shifted(self, offset: int) -> "Condition":
        return self

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return self

    def negated(self) -> "Condition":
        return TRUE

    def __str__(self) -> str:
        return "false"


TRUE = TrueCondition()
FALSE = FalseCondition()


@dataclass(frozen=True)
class Comparison(Condition):
    """A comparison ``left op right`` between two terms.

    ``op`` is one of ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
    """

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPERATORS:
            raise ConditionError(
                f"unknown comparison operator {self.op!r}; "
                f"expected one of {sorted(COMPARISON_OPERATORS)}"
            )
        for term in (self.left, self.right):
            if not isinstance(term, (Attribute, Constant)):
                raise ConditionError(f"comparison operand must be a term, got {term!r}")

    def evaluate(self, row: Tuple) -> bool:
        left = resolve_term(self.left, row)
        right = resolve_term(self.right, row)
        return COMPARISON_OPERATORS[self.op](left, right)

    def referenced_indices(self) -> FrozenSet[int]:
        indices = set()
        for term in (self.left, self.right):
            if isinstance(term, Attribute):
                indices.add(term.index)
        return frozenset(indices)

    def _map_term(self, term: Term, mapper: Callable[[Attribute], Attribute]) -> Term:
        return mapper(term) if isinstance(term, Attribute) else term

    def shifted(self, offset: int) -> "Condition":
        return Comparison(
            self._map_term(self.left, lambda a: a.shifted(offset)),
            self.op,
            self._map_term(self.right, lambda a: a.shifted(offset)),
        )

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return Comparison(
            self._map_term(self.left, lambda a: a.remapped(index_map)),
            self.op,
            self._map_term(self.right, lambda a: a.remapped(index_map)),
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _flatten(kind: type, operands: Iterable[Condition]) -> Tuple[Condition, ...]:
    """Flatten nested And/Or operands of the same kind into a single tuple."""
    flat = []
    for operand in operands:
        if not isinstance(operand, Condition):
            raise ConditionError(f"operand must be a Condition, got {operand!r}")
        if isinstance(operand, kind):
            flat.extend(operand.operands)  # type: ignore[attr-defined]
        else:
            flat.append(operand)
    return tuple(flat)


@dataclass(frozen=True, init=False)
class And(Condition):
    """Conjunction of one or more conditions."""

    operands: Tuple[Condition, ...]

    def __init__(self, *operands: Condition):
        if not operands:
            raise ConditionError("And requires at least one operand")
        object.__setattr__(self, "operands", _flatten(And, operands))

    def evaluate(self, row: Tuple) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    def referenced_indices(self) -> FrozenSet[int]:
        indices: FrozenSet[int] = frozenset()
        for operand in self.operands:
            indices |= operand.referenced_indices()
        return indices

    def shifted(self, offset: int) -> "Condition":
        return And(*(operand.shifted(offset) for operand in self.operands))

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return And(*(operand.remapped(index_map) for operand in self.operands))

    def __str__(self) -> str:
        return "(" + " and ".join(str(operand) for operand in self.operands) + ")"


@dataclass(frozen=True, init=False)
class Or(Condition):
    """Disjunction of one or more conditions."""

    operands: Tuple[Condition, ...]

    def __init__(self, *operands: Condition):
        if not operands:
            raise ConditionError("Or requires at least one operand")
        object.__setattr__(self, "operands", _flatten(Or, operands))

    def evaluate(self, row: Tuple) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    def referenced_indices(self) -> FrozenSet[int]:
        indices: FrozenSet[int] = frozenset()
        for operand in self.operands:
            indices |= operand.referenced_indices()
        return indices

    def shifted(self, offset: int) -> "Condition":
        return Or(*(operand.shifted(offset) for operand in self.operands))

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return Or(*(operand.remapped(index_map) for operand in self.operands))

    def __str__(self) -> str:
        return "(" + " or ".join(str(operand) for operand in self.operands) + ")"


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a condition."""

    operand: Condition

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Condition):
            raise ConditionError(f"operand must be a Condition, got {self.operand!r}")

    def evaluate(self, row: Tuple) -> bool:
        return not self.operand.evaluate(row)

    def referenced_indices(self) -> FrozenSet[int]:
        return self.operand.referenced_indices()

    def shifted(self, offset: int) -> "Condition":
        return Not(self.operand.shifted(offset))

    def remapped(self, index_map: Dict[int, int]) -> "Condition":
        return Not(self.operand.remapped(index_map))

    def negated(self) -> "Condition":
        return self.operand

    def __str__(self) -> str:
        return f"not ({self.operand})"


def conjunction(conditions: Iterable[Condition]) -> Condition:
    """Combine conditions with AND, collapsing the empty case to ``TRUE``."""
    conditions = [c for c in conditions if not isinstance(c, TrueCondition)]
    if not conditions:
        return TRUE
    if len(conditions) == 1:
        return conditions[0]
    return And(*conditions)


def disjunction(conditions: Iterable[Condition]) -> Condition:
    """Combine conditions with OR, collapsing the empty case to ``FALSE``."""
    conditions = [c for c in conditions if not isinstance(c, FalseCondition)]
    if not conditions:
        return FALSE
    if len(conditions) == 1:
        return conditions[0]
    return Or(*conditions)


def equals(left_index: int, right_index: int) -> Comparison:
    """Shorthand for the condition ``#left_index = #right_index``."""
    return Comparison(Attribute(left_index), "=", Attribute(right_index))


def equals_const(index: int, value: object) -> Comparison:
    """Shorthand for the condition ``#index = value``."""
    return Comparison(Attribute(index), "=", Constant(value))
