"""One-pass cached structural summaries of expression nodes.

The composition algorithm keeps asking the same questions about the same
(immutable) subtrees: how many operators does this expression contain (the
blow-up guard), which relation symbols does it mention (substitution pruning
and the "find a constraint mentioning S" scans), does it contain a Skolem
application (the deskolemization gate)?  Answering each question with its own
tree walk made the guards themselves a hot path.

:func:`node_summary` computes every one of those facts in a single iterative
bottom-up pass and stores the result directly on the node, so every later
query — on the node or on any of its subtrees — is an attribute read.  The
pass also warms the node's cached structural hash while the children's hashes
are known, which keeps hashing shallow (no recursion) even for the very deep
Union/Intersection chains that left- and right-normalization produce.

Summaries are structural (no per-process salting), so they survive pickling
and ship for free to process-pool workers.
"""

from __future__ import annotations

from typing import FrozenSet, NamedTuple

from repro.algebra.expressions import (
    Domain,
    Empty,
    Expression,
    Relation,
    SkolemApplication,
)

__all__ = ["NodeSummary", "node_summary"]

_EMPTY_NAMES: FrozenSet[str] = frozenset()


class NodeSummary(NamedTuple):
    """Everything the rewrite engine wants to know about a subtree, at once."""

    operator_count: int
    node_count: int
    depth: int
    relation_names: FrozenSet[str]
    contains_skolem: bool
    contains_domain: bool
    contains_empty: bool


def _leaf_summary(node: Expression) -> NodeSummary:
    if isinstance(node, Relation):
        names = frozenset((node.name,))
    else:
        names = _EMPTY_NAMES
    return NodeSummary(
        operator_count=0,
        node_count=1,
        depth=1,
        relation_names=names,
        contains_skolem=False,
        contains_domain=isinstance(node, Domain),
        contains_empty=isinstance(node, Empty),
    )


def _combine(node: Expression, children: tuple) -> NodeSummary:
    summaries = [child._summary for child in children]
    if len(summaries) == 1:
        names = summaries[0].relation_names
    else:
        names = frozenset().union(*(s.relation_names for s in summaries))
    return NodeSummary(
        operator_count=1 + sum(s.operator_count for s in summaries),
        node_count=1 + sum(s.node_count for s in summaries),
        depth=1 + max(s.depth for s in summaries),
        relation_names=names,
        contains_skolem=isinstance(node, SkolemApplication)
        or any(s.contains_skolem for s in summaries),
        contains_domain=any(s.contains_domain for s in summaries),
        contains_empty=any(s.contains_empty for s in summaries),
    )


def node_summary(expression: Expression) -> NodeSummary:
    """Return the cached :class:`NodeSummary` of ``expression``, computing it once.

    The computation is iterative (explicit stack), shares work across DAG-shaped
    trees (a subtree reached twice is summarized once), and warms the cached
    structural hash of every node it visits so later dictionary operations never
    recurse through the tree.
    """
    try:
        return expression._summary
    except AttributeError:
        pass

    setattr_ = object.__setattr__
    stack = [(expression, False)]
    while stack:
        node, ready = stack.pop()
        if hasattr(node, "_summary"):
            continue
        if not ready:
            children = node.children
            if not children:
                setattr_(node, "_summary", _leaf_summary(node))
                hash(node)
                continue
            stack.append((node, True))
            for child in children:
                stack.append((child, False))
        else:
            setattr_(node, "_summary", _combine(node, node.children))
            # Children hashes are cached by now, so this stays shallow.
            hash(node)
    return expression._summary
