"""Terms appearing in selection conditions.

The library uses the *unnamed perspective*: attributes of a relation are
identified by 0-based column index, not by name.  A selection condition such
as the paper's ``σ_{1=3}(S × S)`` is written here as a comparison between two
:class:`Attribute` terms, e.g. ``Comparison(Attribute(0), "=", Attribute(2))``
(the paper's indices are 1-based; ours are 0-based throughout).

Two kinds of terms exist:

* :class:`Attribute` — a reference to a column of the expression the condition
  is applied to.
* :class:`Constant` — a literal value (number, string, ...).  Constants must be
  hashable so that conditions, and the expressions containing them, remain
  hashable and usable as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import ConditionError

__all__ = ["Attribute", "Constant", "Term", "NULL", "NullValue"]


class NullValue:
    """Singleton marker for SQL-style NULL, used by the left-outerjoin operator.

    Comparisons involving :data:`NULL` always evaluate to ``False`` (three-valued
    logic collapsed to two values, which is what containment checking needs).
    """

    _instance = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __reduce__(self):
        return (NullValue, ())


#: The unique NULL value used for padding by the left outerjoin operator.
NULL = NullValue()


@dataclass(frozen=True, order=True)
class Attribute:
    """A reference to the ``index``-th column (0-based) of an expression."""

    index: int

    def __post_init__(self) -> None:
        if not isinstance(self.index, int) or isinstance(self.index, bool):
            raise ConditionError(f"attribute index must be an int, got {self.index!r}")
        if self.index < 0:
            raise ConditionError(f"attribute index must be non-negative, got {self.index}")

    def shifted(self, offset: int) -> "Attribute":
        """Return a copy with the column index shifted by ``offset``."""
        return Attribute(self.index + offset)

    def remapped(self, index_map: dict) -> "Attribute":
        """Return a copy with the column index replaced via ``index_map``.

        Raises :class:`ConditionError` if the index is not in the map.
        """
        if self.index not in index_map:
            raise ConditionError(f"attribute #{self.index} has no remapping")
        return Attribute(index_map[self.index])

    def __str__(self) -> str:
        return f"#{self.index}"


@dataclass(frozen=True)
class Constant:
    """A literal value used inside a selection condition."""

    value: object

    def __post_init__(self) -> None:
        try:
            hash(self.value)
        except TypeError as exc:  # pragma: no cover - defensive
            raise ConditionError(f"constant value must be hashable, got {self.value!r}") from exc

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


#: A term is either a column reference or a literal constant.
Term = Union[Attribute, Constant]


def resolve_term(term: Term, row: tuple) -> object:
    """Return the value of ``term`` for the given tuple ``row``.

    ``Attribute`` terms index into the tuple; ``Constant`` terms return their
    literal value.  An out-of-range attribute raises :class:`ConditionError`.
    """
    if isinstance(term, Attribute):
        if term.index >= len(row):
            raise ConditionError(
                f"attribute #{term.index} out of range for a tuple of width {len(row)}"
            )
        return row[term.index]
    if isinstance(term, Constant):
        return term.value
    raise ConditionError(f"not a term: {term!r}")
