"""Relational algebra: expressions, conditions, evaluation, parsing and printing."""

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCondition,
    Not,
    Or,
    TRUE,
    TrueCondition,
    conjunction,
    disjunction,
    equals,
    equals_const,
)
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.algebra.terms import Attribute, Constant, NULL
from repro.algebra import builders, traversal
from repro.algebra.evaluation import Evaluator, SkolemInterpretation, evaluate
from repro.algebra.parser import parse_condition, parse_constraint, parse_constraints, parse_expression
from repro.algebra.printer import condition_to_text, expression_to_text
from repro.algebra.simplify import simplify_constraint, simplify_constraint_set, simplify_expression

__all__ = [
    # terms and conditions
    "Attribute",
    "Constant",
    "NULL",
    "Condition",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "TrueCondition",
    "FalseCondition",
    "conjunction",
    "disjunction",
    "equals",
    "equals_const",
    # expressions
    "Expression",
    "Relation",
    "Domain",
    "Empty",
    "ConstantRelation",
    "Union",
    "Intersection",
    "Difference",
    "CrossProduct",
    "Selection",
    "Projection",
    "SkolemFunction",
    "SkolemApplication",
    "SemiJoin",
    "AntiSemiJoin",
    "LeftOuterJoin",
    # helpers
    "builders",
    "traversal",
    "Evaluator",
    "SkolemInterpretation",
    "evaluate",
    "parse_expression",
    "parse_condition",
    "parse_constraint",
    "parse_constraints",
    "expression_to_text",
    "condition_to_text",
    "simplify_expression",
    "simplify_constraint",
    "simplify_constraint_set",
]
