"""The relational-algebra expression AST.

This is the heart of the library's representation layer.  Following the paper
(Section 2), a relational expression is built from base relation symbols and
the six basic operators — union, intersection, cross product, set difference,
selection and projection — plus:

* the special active-domain relation ``D^r`` (:class:`Domain`),
* the special empty relation ``∅^r`` (:class:`Empty`),
* constant relations (needed by the schema-evolution primitive "add default"),
* Skolem-function applications, used internally by right-normalization
  (Section 3.5), and
* *extended* operators (:class:`SemiJoin`, :class:`AntiSemiJoin`,
  :class:`LeftOuterJoin`) that play the role of the paper's "user-defined"
  operators and are wired into the algorithm only through the operator
  registry (:mod:`repro.operators.registry`).

All nodes are immutable, hashable, structurally comparable, expose their
``arity``, their ``children`` and a ``with_children`` reconstructor so that
generic traversal utilities (:mod:`repro.algebra.traversal`) can rewrite trees
without knowing every node type.

Attribute indices are 0-based everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.algebra.conditions import Condition
from repro.exceptions import ArityError, ExpressionError

__all__ = [
    "Expression",
    "Relation",
    "Domain",
    "Empty",
    "ConstantRelation",
    "Union",
    "Intersection",
    "Difference",
    "CrossProduct",
    "Selection",
    "Projection",
    "SkolemFunction",
    "SkolemApplication",
    "SemiJoin",
    "AntiSemiJoin",
    "LeftOuterJoin",
    "BASIC_OPERATOR_TYPES",
    "EXTENDED_OPERATOR_TYPES",
    "LEAF_TYPES",
]


class Expression:
    """Abstract base class for relational-algebra expressions."""

    #: Short operator name used by printers, registries and error messages.
    operator_name: str = "?"

    @property
    def arity(self) -> int:
        """Number of columns produced by the expression."""
        raise NotImplementedError

    @property
    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions (empty for leaves)."""
        raise NotImplementedError

    def with_children(self, children: Tuple["Expression", ...]) -> "Expression":
        """Rebuild this node with new children (same non-expression payload)."""
        raise NotImplementedError

    def is_leaf(self) -> bool:
        """Return ``True`` if the node has no sub-expressions."""
        return not self.children

    def __str__(self) -> str:
        # Imported lazily to avoid a circular import at module load time.
        from repro.algebra.printer import expression_to_text

        return expression_to_text(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self}>"

    def __getstate__(self):
        # Drop the lazily cached structural hash (string hashing is salted
        # per process, so a pickled hash would be wrong in another process)
        # and the "already simplified" marker (it references a live memo
        # table whose identity does not survive pickling).  The structural
        # summaries and cached arity survive — they are process-independent.
        state = dict(self.__dict__)
        state.pop("_hash_value", None)
        state.pop("_simplified_for", None)
        return state


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Relation(Expression):
    """A reference to a base relation symbol with a fixed arity."""

    name: str
    relation_arity: int

    operator_name = "relation"

    def __post_init__(self) -> None:
        if not self.name:
            raise ExpressionError("relation name must be non-empty")
        if self.relation_arity <= 0:
            raise ArityError(f"relation {self.name!r} must have positive arity, got {self.relation_arity}")

    @property
    def arity(self) -> int:
        return self.relation_arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if children:
            raise ExpressionError("Relation is a leaf and takes no children")
        return self


@dataclass(frozen=True, repr=False)
class Domain(Expression):
    """The active-domain relation ``D^r`` of the paper.

    ``D`` is shorthand for the union of all single-column projections of all
    relations in the database; ``D^r`` is its ``r``-fold cross product.
    """

    domain_arity: int

    operator_name = "domain"

    def __post_init__(self) -> None:
        if self.domain_arity <= 0:
            raise ArityError(f"domain relation must have positive arity, got {self.domain_arity}")

    @property
    def arity(self) -> int:
        return self.domain_arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if children:
            raise ExpressionError("Domain is a leaf and takes no children")
        return self


@dataclass(frozen=True, repr=False)
class Empty(Expression):
    """The empty relation ``∅`` of a given arity."""

    empty_arity: int

    operator_name = "empty"

    def __post_init__(self) -> None:
        if self.empty_arity <= 0:
            raise ArityError(f"empty relation must have positive arity, got {self.empty_arity}")

    @property
    def arity(self) -> int:
        return self.empty_arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if children:
            raise ExpressionError("Empty is a leaf and takes no children")
        return self


@dataclass(frozen=True, repr=False)
class ConstantRelation(Expression):
    """A small literal relation, e.g. the ``{c}`` used by the "add default" primitive."""

    tuples: Tuple[Tuple[object, ...], ...]
    constant_arity: int

    operator_name = "constant"

    def __post_init__(self) -> None:
        if self.constant_arity <= 0:
            raise ArityError(f"constant relation must have positive arity, got {self.constant_arity}")
        for row in self.tuples:
            if not isinstance(row, tuple):
                raise ExpressionError(f"constant relation rows must be tuples, got {row!r}")
            if len(row) != self.constant_arity:
                raise ArityError(
                    f"constant relation declared arity {self.constant_arity} "
                    f"but contains a row of width {len(row)}"
                )

    @classmethod
    def singleton(cls, *values: object) -> "ConstantRelation":
        """Build the one-row constant relation ``{(values...)}``."""
        if not values:
            raise ExpressionError("a constant relation row needs at least one value")
        return cls(tuples=(tuple(values),), constant_arity=len(values))

    @property
    def arity(self) -> int:
        return self.constant_arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return ()

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if children:
            raise ExpressionError("ConstantRelation is a leaf and takes no children")
        return self


# ---------------------------------------------------------------------------
# Basic binary operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class _BinarySameArity(Expression):
    """Shared implementation for ∪, ∩ and − (operands must agree on arity)."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        for operand in (self.left, self.right):
            if not isinstance(operand, Expression):
                raise ExpressionError(f"operand must be an Expression, got {operand!r}")
        if self.left.arity != self.right.arity:
            raise ArityError(
                f"{self.operator_name} requires operands of equal arity, "
                f"got {self.left.arity} and {self.right.arity}"
            )

    @property
    def arity(self) -> int:
        return self.left.arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 2:
            raise ExpressionError(f"{self.operator_name} takes exactly two children")
        return type(self)(children[0], children[1])


@dataclass(frozen=True, repr=False)
class Union(_BinarySameArity):
    """Set union ``E1 ∪ E2``."""

    operator_name = "union"


@dataclass(frozen=True, repr=False)
class Intersection(_BinarySameArity):
    """Set intersection ``E1 ∩ E2``."""

    operator_name = "intersect"


@dataclass(frozen=True, repr=False)
class Difference(_BinarySameArity):
    """Set difference ``E1 − E2`` (monotone in the left operand only)."""

    operator_name = "difference"


@dataclass(frozen=True, repr=False)
class CrossProduct(Expression):
    """Cross product ``E1 × E2``; arity is the sum of the operand arities."""

    left: Expression
    right: Expression

    operator_name = "product"

    def __post_init__(self) -> None:
        for operand in (self.left, self.right):
            if not isinstance(operand, Expression):
                raise ExpressionError(f"operand must be an Expression, got {operand!r}")

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 2:
            raise ExpressionError("product takes exactly two children")
        return CrossProduct(children[0], children[1])


# ---------------------------------------------------------------------------
# Basic unary operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Selection(Expression):
    """Selection ``σ_c(E)``; keeps the rows of ``E`` satisfying condition ``c``."""

    child: Expression
    condition: Condition

    operator_name = "select"

    def __post_init__(self) -> None:
        if not isinstance(self.child, Expression):
            raise ExpressionError(f"selection child must be an Expression, got {self.child!r}")
        if not isinstance(self.condition, Condition):
            raise ExpressionError(f"selection condition must be a Condition, got {self.condition!r}")
        if self.condition.max_index() >= self.child.arity:
            raise ArityError(
                f"selection condition references column #{self.condition.max_index()} "
                f"but the input has arity {self.child.arity}"
            )

    @property
    def arity(self) -> int:
        return self.child.arity

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 1:
            raise ExpressionError("select takes exactly one child")
        return Selection(children[0], self.condition)


@dataclass(frozen=True, repr=False)
class Projection(Expression):
    """Projection ``π_I(E)``; ``I`` is a list of 0-based column indices.

    The index list may reorder and duplicate columns, which is how column
    permutations are expressed in the unnamed perspective.
    """

    child: Expression
    indices: Tuple[int, ...]

    operator_name = "project"

    def __post_init__(self) -> None:
        if not isinstance(self.child, Expression):
            raise ExpressionError(f"projection child must be an Expression, got {self.child!r}")
        if not self.indices:
            raise ArityError("projection must keep at least one column")
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))
        for index in self.indices:
            if index < 0 or index >= self.child.arity:
                raise ArityError(
                    f"projection index {index} out of range for input arity {self.child.arity}"
                )

    @property
    def arity(self) -> int:
        return len(self.indices)

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 1:
            raise ExpressionError("project takes exactly one child")
        return Projection(children[0], self.indices)


# ---------------------------------------------------------------------------
# Skolem functions (internal device of right-normalization)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class SkolemFunction:
    """A named Skolem function depending on a set of input column indices."""

    name: str
    depends_on: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ExpressionError("Skolem function name must be non-empty")
        object.__setattr__(self, "depends_on", tuple(sorted(int(i) for i in self.depends_on)))
        for index in self.depends_on:
            if index < 0:
                raise ArityError(f"Skolem dependency index must be non-negative, got {index}")

    def __str__(self) -> str:
        deps = ",".join(str(i) for i in self.depends_on)
        return f"{self.name}[{deps}]"


@dataclass(frozen=True, repr=False)
class SkolemApplication(Expression):
    """Application of a Skolem function to an expression.

    ``f_I(E)`` has arity ``arity(E) + 1``: it appends one column whose value is
    some (existentially quantified) function of the columns of ``E`` listed in
    ``I``.  Skolem applications appear only transiently, between
    right-normalization and deskolemization.
    """

    child: Expression
    function: SkolemFunction

    operator_name = "skolem"

    def __post_init__(self) -> None:
        if not isinstance(self.child, Expression):
            raise ExpressionError(f"skolem child must be an Expression, got {self.child!r}")
        if not isinstance(self.function, SkolemFunction):
            raise ExpressionError(f"expected a SkolemFunction, got {self.function!r}")
        for index in self.function.depends_on:
            if index >= self.child.arity:
                raise ArityError(
                    f"Skolem function {self.function.name!r} depends on column #{index} "
                    f"but the input has arity {self.child.arity}"
                )

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 1:
            raise ExpressionError("skolem takes exactly one child")
        return SkolemApplication(children[0], self.function)


# ---------------------------------------------------------------------------
# Extended ("user-defined") operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class _JoinLike(Expression):
    """Shared implementation for the condition-based extended binary operators.

    The join condition's attribute indices refer to the concatenation of the
    left operand's columns followed by the right operand's columns.
    """

    left: Expression
    right: Expression
    condition: Condition

    def __post_init__(self) -> None:
        for operand in (self.left, self.right):
            if not isinstance(operand, Expression):
                raise ExpressionError(f"operand must be an Expression, got {operand!r}")
        if not isinstance(self.condition, Condition):
            raise ExpressionError(f"join condition must be a Condition, got {self.condition!r}")
        combined = self.left.arity + self.right.arity
        if self.condition.max_index() >= combined:
            raise ArityError(
                f"{self.operator_name} condition references column #{self.condition.max_index()} "
                f"but the combined arity is {combined}"
            )

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Expression, ...]) -> Expression:
        if len(children) != 2:
            raise ExpressionError(f"{self.operator_name} takes exactly two children")
        return type(self)(children[0], children[1], self.condition)


@dataclass(frozen=True, repr=False)
class SemiJoin(_JoinLike):
    """Semijoin ``E1 ⋉_c E2``: rows of E1 with at least one matching row in E2."""

    operator_name = "semijoin"

    @property
    def arity(self) -> int:
        return self.left.arity


@dataclass(frozen=True, repr=False)
class AntiSemiJoin(_JoinLike):
    """Anti-semijoin ``E1 ▷_c E2``: rows of E1 with no matching row in E2."""

    operator_name = "antisemijoin"

    @property
    def arity(self) -> int:
        return self.left.arity


@dataclass(frozen=True, repr=False)
class LeftOuterJoin(_JoinLike):
    """Left outerjoin ``E1 ⟕_c E2``; unmatched E1 rows are padded with NULLs."""

    operator_name = "leftouterjoin"

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity


#: The six basic operators of the paper plus the leaf node types.
BASIC_OPERATOR_TYPES = (
    Union,
    Intersection,
    Difference,
    CrossProduct,
    Selection,
    Projection,
)

#: Operators handled purely through the extensibility machinery.
EXTENDED_OPERATOR_TYPES = (SemiJoin, AntiSemiJoin, LeftOuterJoin)

#: Node types that never have children.
LEAF_TYPES = (Relation, Domain, Empty, ConstantRelation)


def _install_cached_hash(cls) -> None:
    """Replace a node class's generated ``__hash__`` with a lazily caching one.

    Expressions are immutable trees that the composition algorithm hashes
    constantly (constraint-set dedup, memo tables, substitution maps); the
    generated dataclass hash re-walks the whole tree every time, turning those
    lookups into the dominant cost at scale.  Computing the structural hash
    once per node and caching it makes every later hash O(1).
    """
    generated = cls.__hash__

    def __hash__(self, _generated=generated):
        try:
            return self._hash_value
        except AttributeError:
            pass
        try:
            children = self.children
        except AttributeError:
            # Constraints share this wrapper; their "children" are the sides.
            children = None
        for child in children if children is not None else (self.left, self.right):
            if not hasattr(child, "_hash_value"):
                # A fresh deep tree: the generated hash would recurse through
                # every unhashed level and can blow the recursion limit on
                # the operator chains normalization builds.  The summary pass
                # warms the subtree's hashes iteratively, bottom-up.
                from repro.algebra.summary import node_summary

                if children is not None:
                    node_summary(self)
                else:
                    node_summary(self.left)
                    node_summary(self.right)
                break
        value = _generated(self)
        object.__setattr__(self, "_hash_value", value)
        return value

    cls.__hash__ = __hash__


#: Per-class extractor of the non-child payload compared by structural equality.
_PAYLOAD_GETTERS = {}

#: Sentinel distinguishing "class not registered" from "no payload" (None).
_NO_GETTER = object()


def _install_structural_eq(cls, payload: Tuple[str, ...]) -> None:
    """Replace the generated (recursive) ``__eq__`` with an iterative one.

    The dataclass-generated equality recurses through the operand fields and
    hits Python's recursion limit on the deep Union/Intersection chains that
    normalization produces; the replacement walks an explicit stack, keeps
    the identity and cached-hash fast paths, and compares each node's
    non-child payload through a per-class getter.
    """
    if payload:
        import operator

        getter = operator.attrgetter(*payload)
    else:
        getter = None
    _PAYLOAD_GETTERS[cls] = getter

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        getters = _PAYLOAD_GETTERS
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            if b.__class__ is not a.__class__:
                return False
            try:
                if a._hash_value != b._hash_value:
                    return False
            except AttributeError:
                pass
            payload_of = getters.get(a.__class__, _NO_GETTER)
            if payload_of is _NO_GETTER:
                # A user-defined operator type (registered through the
                # extensibility machinery): defer to its own __eq__.
                if a != b:
                    return False
                continue
            if payload_of is not None and payload_of(a) != payload_of(b):
                return False
            a_children = a.children
            b_children = b.children
            if len(a_children) != len(b_children):
                return False
            stack.extend(zip(a_children, b_children))
        return True

    cls.__eq__ = __eq__


def _install_cached_arity(cls) -> None:
    """Cache a composite node's ``arity`` on first access.

    ``arity`` recurses through the children (``CrossProduct`` sums both
    sides), and every node construction re-derives its operands' arities for
    validation — on the deep operator chains normalization builds, that turns
    arity into an O(depth) query asked O(n) times.  Trees are built bottom-up,
    so caching makes each node's arity an O(1) attribute read by the time its
    parent asks.  Leaves keep their plain field read.
    """
    getter = cls.arity.fget

    def arity(self, _getter=getter):
        try:
            return self._arity
        except AttributeError:
            value = _getter(self)
            object.__setattr__(self, "_arity", value)
            return value

    cls.arity = property(arity)


for _node_type in LEAF_TYPES + BASIC_OPERATOR_TYPES + EXTENDED_OPERATOR_TYPES + (
    SkolemApplication,
):
    _install_cached_hash(_node_type)
for _node_type in BASIC_OPERATOR_TYPES + EXTENDED_OPERATOR_TYPES + (SkolemApplication,):
    _install_cached_arity(_node_type)
for _node_type, _payload in (
    (Relation, ("name", "relation_arity")),
    (Domain, ("domain_arity",)),
    (Empty, ("empty_arity",)),
    (ConstantRelation, ("tuples", "constant_arity")),
    (Union, ()),
    (Intersection, ()),
    (Difference, ()),
    (CrossProduct, ()),
    (Selection, ("condition",)),
    (Projection, ("indices",)),
    (SkolemApplication, ("function",)),
    (SemiJoin, ("condition",)),
    (AntiSemiJoin, ("condition",)),
    (LeftOuterJoin, ("condition",)),
):
    _install_structural_eq(_node_type, _payload)
del _node_type, _payload
