"""Plain-text rendering of expressions, conditions and constraints.

The syntax round-trips through :mod:`repro.algebra.parser` and is close to the
paper's index-based algebraic notation, restricted to ASCII:

========================  =============================================
Paper                     Text syntax
========================  =============================================
``R`` (arity 3)           ``R/3``
``D^2``                   ``D(2)``
``∅`` (arity 2)           ``empty(2)``
``{(1, 'a')}``            ``const((1, 'a'))``
``E1 ∪ E2``               ``(E1 union E2)``
``E1 ∩ E2``               ``(E1 intersect E2)``
``E1 − E2``               ``(E1 - E2)``
``E1 × E2``               ``(E1 x E2)``
``σ_{0=2}(E)``            ``select[#0 = #2](E)``
``π_{0,1}(E)``            ``project[0,1](E)``
``f_{0}(E)``              ``skolem f[0](E)``
``E1 ⋉_c E2``             ``semijoin[c](E1, E2)``
``E1 ▷_c E2``             ``antisemijoin[c](E1, E2)``
``E1 ⟕_c E2``             ``leftouterjoin[c](E1, E2)``
``E1 ⊆ E2``               ``E1 <= E2``
``E1 = E2``               ``E1 = E2``
========================  =============================================

All attribute indices are 0-based.
"""

from __future__ import annotations

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FalseCondition,
    Not,
    Or,
    TrueCondition,
)
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    Union,
)
from repro.algebra.terms import Attribute, Constant
from repro.exceptions import ExpressionError

__all__ = ["expression_to_text", "condition_to_text", "term_to_text"]


def term_to_text(term) -> str:
    """Render an attribute or constant term."""
    if isinstance(term, Attribute):
        return f"#{term.index}"
    if isinstance(term, Constant):
        if isinstance(term.value, str):
            escaped = term.value.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(term.value)
    raise ExpressionError(f"cannot render term {term!r}")


def condition_to_text(condition: Condition) -> str:
    """Render a selection condition in the textual syntax."""
    if isinstance(condition, TrueCondition):
        return "true"
    if isinstance(condition, FalseCondition):
        return "false"
    if isinstance(condition, Comparison):
        return f"{term_to_text(condition.left)} {condition.op} {term_to_text(condition.right)}"
    if isinstance(condition, And):
        return "(" + " and ".join(condition_to_text(op) for op in condition.operands) + ")"
    if isinstance(condition, Or):
        return "(" + " or ".join(condition_to_text(op) for op in condition.operands) + ")"
    if isinstance(condition, Not):
        return f"not ({condition_to_text(condition.operand)})"
    raise ExpressionError(f"cannot render condition {condition!r}")


def _render_constant_relation(expression: ConstantRelation) -> str:
    rows = []
    for row in expression.tuples:
        values = ", ".join(term_to_text(Constant(value)) for value in row)
        rows.append(f"({values})")
    return "const(" + "; ".join(rows) + ")"


def expression_to_text(expression: Expression) -> str:
    """Render an expression in the textual syntax used throughout the library."""
    if isinstance(expression, Relation):
        return f"{expression.name}/{expression.arity}"
    if isinstance(expression, Domain):
        return f"D({expression.arity})"
    if isinstance(expression, Empty):
        return f"empty({expression.arity})"
    if isinstance(expression, ConstantRelation):
        return _render_constant_relation(expression)
    if isinstance(expression, Union):
        return f"({expression_to_text(expression.left)} union {expression_to_text(expression.right)})"
    if isinstance(expression, Intersection):
        return f"({expression_to_text(expression.left)} intersect {expression_to_text(expression.right)})"
    if isinstance(expression, Difference):
        return f"({expression_to_text(expression.left)} - {expression_to_text(expression.right)})"
    if isinstance(expression, CrossProduct):
        return f"({expression_to_text(expression.left)} x {expression_to_text(expression.right)})"
    if isinstance(expression, Selection):
        return f"select[{condition_to_text(expression.condition)}]({expression_to_text(expression.child)})"
    if isinstance(expression, Projection):
        indices = ",".join(str(index) for index in expression.indices)
        return f"project[{indices}]({expression_to_text(expression.child)})"
    if isinstance(expression, SkolemApplication):
        deps = ",".join(str(index) for index in expression.function.depends_on)
        return f"skolem {expression.function.name}[{deps}]({expression_to_text(expression.child)})"
    if isinstance(expression, (SemiJoin, AntiSemiJoin, LeftOuterJoin)):
        return (
            f"{expression.operator_name}[{condition_to_text(expression.condition)}]"
            f"({expression_to_text(expression.left)}, {expression_to_text(expression.right)})"
        )
    raise ExpressionError(f"cannot render expression of type {type(expression).__name__}")
