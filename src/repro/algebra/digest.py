"""Deterministic structural digests of expression trees.

The cached structural *hashes* (:mod:`repro.algebra.summary` warms them, the
interning tables key on them) are the right tool inside one process, but
CPython salts string hashing per process, so they cannot name an expression
across a pickle boundary.  Incremental recomposition needs exactly that: a
checkpoint recorded in one process must still be recognized after it is
pre-seeded into a process-pool worker.

:func:`expression_digest` therefore computes a *deterministic* content digest
(BLAKE2b over the node class, its non-child payload and the child digests) in
the same iterative bottom-up style as :func:`repro.algebra.summary.node_summary`,
and caches it on the (immutable) node.  Like the summaries — and unlike the
salted ``_hash_value`` — the digest is structural, so it survives pickling and
ships for free to process-pool workers; shared subtrees (the DAGs the rewrite
engine builds) are digested once.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.algebra.expressions import _NO_GETTER, _PAYLOAD_GETTERS, Expression

__all__ = ["DIGEST_SIZE", "expression_digest"]

#: Digest width in bytes; 16 (128 bits) makes accidental collisions between
#: constraint sides practically impossible while keeping tokens small.
DIGEST_SIZE = 16


def _node_digest(node: Expression, children: tuple) -> bytes:
    h = blake2b(digest_size=DIGEST_SIZE)
    h.update(node.__class__.__qualname__.encode())
    getter = _PAYLOAD_GETTERS.get(node.__class__, _NO_GETTER)
    if getter is _NO_GETTER:
        # A user-defined operator type outside the structural-equality
        # machinery: fall back to its repr, mirroring the __eq__ fallback.
        h.update(repr(node).encode())
    elif getter is not None:
        h.update(repr(getter(node)).encode())
    h.update(b"|%d|" % len(children))
    for child in children:
        h.update(child._digest)
    return h.digest()


def expression_digest(expression: Expression) -> bytes:
    """Return the cached deterministic digest of ``expression``, computing it once.

    The walk is iterative (explicit stack), so the deep operator chains
    normalization produces are safe, and a subtree reached twice is digested
    once.
    """
    try:
        return expression._digest
    except AttributeError:
        pass

    setattr_ = object.__setattr__
    stack = [(expression, False)]
    while stack:
        node, ready = stack.pop()
        if hasattr(node, "_digest"):
            continue
        children = node.children
        if not ready and children:
            stack.append((node, True))
            for child in children:
                stack.append((child, False))
            continue
        setattr_(node, "_digest", _node_digest(node, children))
    return expression._digest
