"""Hash-consing and memoized rewriting for expressions.

Composition workloads are highly repetitive: the same (immutable) expression
and constraint objects are threaded through every elimination round, every
chain hop, and — via the batch engine — many problems.  An
:class:`ExpressionCache` exploits that repetition in three ways:

* **fixpoint tokens**: the DAG rewriter of :mod:`repro.algebra.simplify`
  stamps every output with a per-registry sentinel, so "this object is
  already simplified" is a single attribute read.  Tokens are the memo: the
  objects themselves carry the result, there is no growing table to probe,
  insert into, or garbage-collect, and a shared subtree is simplified exactly
  once per process instead of once per occurrence per fixpoint pass;
* **interning** (hash-consing): structurally equal expressions can be
  collapsed onto one canonical, pre-summarized object — used to pre-seed
  process-pool workers with the batch's recurring structure; and
* **substitution memoization**: substituting the same bound for the same
  symbol across many large constraints (what basic left/right compose and
  view unfolding do) replays per-subtree results instead of re-walking.

The cache is *opt-in*: nothing changes unless a cache is activated, either
explicitly or through the batch engine (:mod:`repro.engine.batch`), which
shares one cache across a whole batch of composition problems so repeated
sub-expressions are simplified once.

Caches are safe to share between threads — CPython dictionary operations are
atomic and tokens, interning and substitution memoization are all idempotent,
so a lost race merely repeats work.  Activation is process-global (not
thread-local) because sharing across worker threads is exactly the point.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from repro.algebra.expressions import Expression
from repro.algebra.summary import node_summary

__all__ = [
    "ExpressionCache",
    "active_cache",
    "activate_cache",
    "deactivate_cache",
    "shared_expression_cache",
]

#: Default bound on the number of memo entries before the cache resets itself.
DEFAULT_MAX_ENTRIES = 200_000


class ExpressionCache:
    """A structural-sharing (hash-consing) cache with rewrite memo tables.

    Parameters
    ----------
    max_entries:
        Soft bound on the number of entries in each internal table.  When a
        table grows past the bound it is cleared wholesale — the cache is a
        pure accelerator, so dropping it is always safe.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._interned: Dict[Expression, Expression] = {}
        #: (registry id, rule version) -> token stamped on simplified expressions
        self._simplify_tokens: Dict[Tuple[int, int], object] = {}
        #: (registry id, rule version) -> token stamped on simplified constraints
        self._constraint_tokens: Dict[Tuple[int, int], object] = {}
        #: (kind, registry key, registry version) -> {(constraint, symbol)}
        self._failure_memos: Dict[Tuple, set] = {}
        #: (symbol, replacement) -> {subtree -> substituted subtree}
        self._substitution_memos: Dict[
            Tuple[str, Expression], Dict[Expression, Expression]
        ] = {}
        # Strong references keep registry ids stable for the memo keys.
        self._registries: Dict[int, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- interning -------------------------------------------------------------

    def intern(self, expression: Expression) -> Expression:
        """Return the canonical instance structurally equal to ``expression``.

        Children are interned iteratively (deep chains are safe), so equal
        subtrees of different expressions end up sharing one object.  Summaries
        and structural hashes are warmed as a side effect, keeping every later
        dictionary probe shallow.
        """
        table = self._interned
        canonical = table.get(expression, None) if _has_hash(expression) else None
        if canonical is not None:
            return canonical
        node_summary(expression)  # warm hashes bottom-up without recursion
        stack = [(expression, False)]
        memo: Dict[int, Expression] = {}
        while stack:
            node, ready = stack.pop()
            key = id(node)
            if key in memo:
                continue
            children = node.children
            if not ready and children:
                canonical = table.get(node)
                if canonical is not None:
                    memo[key] = canonical
                    continue
                stack.append((node, True))
                for child in children:
                    if id(child) not in memo:
                        stack.append((child, False))
                continue
            if children:
                new_children = tuple(memo[id(child)] for child in children)
                if any(new is not old for new, old in zip(new_children, children)):
                    node = node.with_children(new_children)
                    node_summary(node)
            if len(table) >= self.max_entries:
                self._evict(table)
            memo[key] = table.setdefault(node, node)
        return memo[id(expression)]

    # -- rewrite memo tables ---------------------------------------------------

    def _token(self, table: Dict, registry: Optional[object]) -> object:
        """The per-(registry, rule-version) marker token from ``table``.

        The registry's ``version`` is part of the key, so registering or
        removing a rule mid-run retires every token stamped under the old
        rule set — stale "already simplified" marks then simply stop
        matching.
        """
        if registry is None:
            key = (0, 0)
        else:
            key = (id(registry), getattr(registry, "version", 0))
        token = table.get(key)
        if token is None:
            self._registry_key(registry)  # pin the registry's id
            token = table.setdefault(key, object())
        return token

    def simplify_token(self, registry: Optional[object]) -> object:
        """The "already simplified" marker token for ``registry``.

        The token is a tiny sentinel the rewriter stamps onto its outputs
        (``_simplified_for``), so "this object is already a fixpoint for this
        registry" is one attribute read.  COMPOSE threads the same immutable
        objects through every elimination round and chain hop, which makes
        the token the memo: per-object, allocation-free, and cycle-free (the
        token holds no references).  Keying is per registry (and rule
        version) because user-supplied rules change the normal forms.
        """
        return self._token(self._simplify_tokens, registry)

    def constraint_token(self, registry: Optional[object]) -> object:
        """The "already simplified" marker token for whole constraints.

        Whole constraints recur verbatim across elimination rounds and chain
        hops (COMPOSE re-simplifies the surviving set after every hop); the
        token turns each repeat into one attribute read.
        """
        return self._token(self._constraint_tokens, registry)

    def failure_memo(self, kind: str, registry: Optional[object]) -> set:
        """The set of ``(constraint, symbol)`` pairs known to fail ``kind``.

        Whether a single constraint can be left-/right-normalized for a
        symbol — or passes the per-constraint monotonicity gates — is a pure
        function of that constraint, the symbol and the registry's rules.
        The best-effort algorithm retries failed symbols after every chain
        hop and schema edit, re-deriving the same dead ends; recording them
        here turns each retry into one set probe per affected constraint.
        The registry's ``version`` is part of the key, so registering new
        rules invalidates recorded failures.
        """
        key = (
            kind,
            self._registry_key(registry),
            getattr(registry, "version", 0),
        )
        memo = self._failure_memos.get(key)
        if memo is None:
            memo = self._failure_memos.setdefault(key, set())
        if len(memo) >= self.max_entries:
            self._evict(memo)
        return memo

    def substitution_memo(
        self, name: str, replacement: Expression
    ) -> Dict[Expression, Expression]:
        """The per-subtree memo for substituting ``replacement`` for ``name``."""
        key = (name, replacement)
        memo = self._substitution_memos.get(key)
        if memo is None:
            if len(self._substitution_memos) >= self.max_entries:
                self._evict(self._substitution_memos)
            memo = self._substitution_memos.setdefault(key, {})
        elif len(memo) >= self.max_entries:
            # The inner per-subtree table is bounded too, not just the
            # (symbol, replacement) index above it.
            self._evict(memo)
        return memo

    # -- relation-name memo ----------------------------------------------------

    def relation_names(self, expression: Expression) -> FrozenSet[str]:
        """The base relation symbols of ``expression`` (from the cached summary)."""
        return node_summary(expression).relation_names

    #: Distinct registries a cache will pin before resetting its token
    #: tables.  Tokens key registries by id(), so dropping a registry
    #: reference without dropping its tokens could alias a recycled id onto a
    #: stale token; clearing both together keeps the bound safe.  (Stale
    #: tokens on expressions are harmless: a fresh token never compares
    #: identical to an old one.)
    MAX_REGISTRIES = 64

    def _registry_key(self, registry: Optional[object]) -> int:
        if registry is None:
            return 0
        key = id(registry)
        if key not in self._registries:
            if len(self._registries) >= self.MAX_REGISTRIES:
                with self._lock:
                    self._registries.clear()
                    self._simplify_tokens.clear()
                    self._constraint_tokens.clear()
                    self._failure_memos.clear()
                    self.evictions += 1
            self._registries[key] = registry
        return key

    def _evict(self, table: Dict) -> None:
        with self._lock:
            if len(table) >= self.max_entries:
                table.clear()
                self.evictions += 1

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all cached entries and reset the statistics."""
        with self._lock:
            self._interned.clear()
            self._simplify_tokens.clear()
            self._constraint_tokens.clear()
            self._failure_memos.clear()
            self._substitution_memos.clear()
            self._registries.clear()
            self.hits = self.misses = self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of memo lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """A snapshot of the cache counters (for benchmarks and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "interned": len(self._interned),
            "memoized": sum(len(memo) for memo in self._substitution_memos.values()),
        }

    def __repr__(self) -> str:
        return f"<ExpressionCache: {self.hits} hits / {self.misses} misses>"


def _has_hash(expression: Expression) -> bool:
    try:
        object.__getattribute__(expression, "_hash_value")
        return True
    except AttributeError:
        return False


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_active: Optional[ExpressionCache] = None
_activation_lock = threading.Lock()


def active_cache() -> Optional[ExpressionCache]:
    """Return the currently active cache, or ``None`` when caching is off."""
    return _active


def activate_cache(cache: Optional[ExpressionCache] = None) -> ExpressionCache:
    """Activate ``cache`` (a fresh one when omitted) process-wide and return it."""
    global _active
    with _activation_lock:
        _active = cache or ExpressionCache()
        return _active


def deactivate_cache() -> None:
    """Deactivate expression caching process-wide."""
    global _active
    with _activation_lock:
        _active = None


@contextmanager
def shared_expression_cache(
    cache: Optional[ExpressionCache] = None,
) -> Iterator[ExpressionCache]:
    """Context manager activating a cache for the duration of a block.

    The previously active cache (usually none) is restored on exit, so scopes
    may nest; the innermost activation wins, which is what the batch engine
    relies on when callers already supplied their own cache.
    """
    global _active
    with _activation_lock:
        previous = _active
        _active = cache or ExpressionCache()
        current = _active
    try:
        yield current
    finally:
        with _activation_lock:
            _active = previous
