"""Hash-consing and memoized simplification for expressions.

Composition workloads are highly repetitive: the same sub-expressions appear
in many constraints, survive many elimination rounds, and recur across the
problems of a batch.  An :class:`ExpressionCache` exploits that repetition in
two ways:

* **interning** (hash-consing): structurally equal expressions are collapsed
  onto one canonical object, so later dictionary lookups short-circuit on
  identity instead of walking the whole tree; and
* **simplification memoization**: the fixpoint rewriting of
  :func:`repro.algebra.simplify.simplify_expression` is computed once per
  (expression, registry) pair and replayed from the memo afterwards.

The cache is *opt-in*: nothing changes unless a cache is activated, either
explicitly or through the batch engine (:mod:`repro.engine.batch`), which
shares one cache across a whole batch of composition problems so repeated
sub-expressions are simplified once.

Caches are safe to share between threads — CPython dictionary operations are
atomic and both interning and memoization are idempotent, so a lost race
merely repeats work.  Activation is process-global (not thread-local) because
sharing across worker threads is exactly the point.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, FrozenSet, Iterator, Optional, Tuple

from repro.algebra.expressions import Expression, Relation

__all__ = [
    "ExpressionCache",
    "active_cache",
    "activate_cache",
    "deactivate_cache",
    "shared_expression_cache",
]

#: Default bound on the number of memo entries before the cache resets itself.
DEFAULT_MAX_ENTRIES = 200_000


class ExpressionCache:
    """A structural-sharing (hash-consing) cache with a simplification memo.

    Parameters
    ----------
    max_entries:
        Soft bound on the number of entries in each internal table.  When a
        table grows past the bound it is cleared wholesale — the cache is a
        pure accelerator, so dropping it is always safe.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._interned: Dict[Expression, Expression] = {}
        self._simplify_memo: Dict[Tuple[int, Expression], Expression] = {}
        # Strong references keep registry ids stable for the memo keys.
        self._registries: Dict[int, object] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- interning -------------------------------------------------------------

    def intern(self, expression: Expression) -> Expression:
        """Return the canonical instance structurally equal to ``expression``.

        Children are interned recursively, so equal subtrees of different
        expressions end up sharing one object.
        """
        children = expression.children
        if children:
            new_children = tuple(self.intern(child) for child in children)
            if any(new is not old for new, old in zip(new_children, children)):
                expression = expression.with_children(new_children)
        canonical = self._interned.get(expression)
        if canonical is not None:
            return canonical
        if len(self._interned) >= self.max_entries:
            self._evict(self._interned)
        return self._interned.setdefault(expression, expression)

    # -- simplification memo ---------------------------------------------------

    def simplify(
        self,
        expression: Expression,
        registry: Optional[object],
        compute: Callable[[Expression, Optional[object]], Expression],
    ) -> Expression:
        """Return ``compute(expression, registry)``, memoized per registry.

        ``compute`` must be a pure function of its arguments (the fixpoint
        simplifier is); its result is interned before being stored so repeated
        simplifications converge on shared structure.
        """
        key = (self._registry_key(registry), expression)
        cached = self._simplify_memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.intern(compute(expression, registry))
        if len(self._simplify_memo) >= self.max_entries:
            self._evict(self._simplify_memo)
        self._simplify_memo[key] = result
        # A simplified expression is a fixpoint: record that too, so feeding
        # the output back in (as the per-hop re-simplifications of a chained
        # composition do) is a hit instead of a full recomputation.
        self._simplify_memo.setdefault((key[0], result), result)
        return result

    # -- relation-name memo ----------------------------------------------------

    def relation_names(self, expression: Expression) -> FrozenSet[str]:
        """The base relation symbols of ``expression``, memoized per sub-tree.

        The elimination loop probes "does this constraint mention symbol S?"
        for every σ2 symbol against every constraint, and substitution rebuilds
        trees that frequently do not contain the target symbol at all.  The
        name set is stored directly on the (immutable) node, so a hit costs an
        attribute read — no hashing — and prunes its entire sub-tree.
        """
        try:
            return object.__getattribute__(expression, "_relation_names")
        except AttributeError:
            pass
        if isinstance(expression, Relation):
            names = frozenset((expression.name,))
        else:
            children = expression.children
            if not children:
                names = frozenset()
            elif len(children) == 1:
                names = self.relation_names(children[0])
            else:
                names = frozenset().union(
                    *(self.relation_names(child) for child in children)
                )
        object.__setattr__(expression, "_relation_names", names)
        return names

    #: Distinct registries a cache will pin before resetting the memo.  The
    #: memo keys registries by id(), so dropping a registry reference without
    #: dropping its memo entries could alias a recycled id onto stale results;
    #: clearing both together keeps the bound safe.
    MAX_REGISTRIES = 64

    def _registry_key(self, registry: Optional[object]) -> int:
        if registry is None:
            return 0
        key = id(registry)
        if key not in self._registries:
            if len(self._registries) >= self.MAX_REGISTRIES:
                with self._lock:
                    self._registries.clear()
                    self._simplify_memo.clear()
                    self.evictions += 1
            self._registries[key] = registry
        return key

    def _evict(self, table: Dict) -> None:
        with self._lock:
            if len(table) >= self.max_entries:
                table.clear()
                self.evictions += 1

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop all cached entries and reset the statistics."""
        with self._lock:
            self._interned.clear()
            self._simplify_memo.clear()
            self._registries.clear()
            self.hits = self.misses = self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of memo lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """A snapshot of the cache counters (for benchmarks and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "interned": len(self._interned),
            "memoized": len(self._simplify_memo),
        }

    def __repr__(self) -> str:
        return (
            f"<ExpressionCache: {len(self._simplify_memo)} memoized, "
            f"{self.hits} hits / {self.misses} misses>"
        )


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_active: Optional[ExpressionCache] = None
_activation_lock = threading.Lock()


def active_cache() -> Optional[ExpressionCache]:
    """Return the currently active cache, or ``None`` when caching is off."""
    return _active


def activate_cache(cache: Optional[ExpressionCache] = None) -> ExpressionCache:
    """Activate ``cache`` (a fresh one when omitted) process-wide and return it."""
    global _active
    with _activation_lock:
        _active = cache or ExpressionCache()
        return _active


def deactivate_cache() -> None:
    """Deactivate expression caching process-wide."""
    global _active
    with _activation_lock:
        _active = None


@contextmanager
def shared_expression_cache(
    cache: Optional[ExpressionCache] = None,
) -> Iterator[ExpressionCache]:
    """Context manager activating a cache for the duration of a block.

    The previously active cache (usually none) is restored on exit, so scopes
    may nest; the innermost activation wins, which is what the batch engine
    relies on when callers already supplied their own cache.
    """
    global _active
    with _activation_lock:
        previous = _active
        _active = cache or ExpressionCache()
        current = _active
    try:
        yield current
    finally:
        with _activation_lock:
            _active = previous
