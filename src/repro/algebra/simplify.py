"""Algebraic simplification of expressions and constraints.

The composition steps introduce the special relations ``D`` (active domain)
and ``∅`` (empty) and the paper devotes two sub-steps (Sections 3.4.3 and
3.5.4) to eliminating them "to the extent that our knowledge of the operators
allows".  This module implements those identities, a few additional safe
simplifications, and the constraint-level clean-up (dropping constraints that
every instance satisfies).

Identities for ``D`` (Section 3.4.3)::

    E ∪ D^r = D^r        E ∩ D^r = E
    E − D^r = ∅          π_I(D^r) = D^{|I|}

Identities for ``∅`` (Section 3.5.4)::

    E ∪ ∅ = E            E ∩ ∅ = ∅           E − ∅ = E
    ∅ − E = ∅            σ_c(∅) = ∅          π_I(∅) = ∅

User-defined operators may contribute additional rules through the operator
registry; the functions here accept an optional registry for that purpose.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import interning
from repro.algebra.conditions import FalseCondition, TrueCondition, conjunction
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Selection,
    Union,
)
from repro.algebra.summary import node_summary
from repro.constraints.constraint import (
    Constraint,
    ContainmentConstraint,
    EqualityConstraint,
)
from repro.constraints.constraint_set import ConstraintSet

__all__ = [
    "simplify_expression",
    "simplify_constraint",
    "simplify_constraint_set",
    "is_trivially_satisfied",
]


def _is_full_domain(expression: Expression) -> bool:
    """Return True if the expression is syntactically the full relation D^r."""
    return isinstance(expression, Domain)


def _is_empty(expression: Expression) -> bool:
    """Return True if the expression is syntactically the empty relation."""
    return isinstance(expression, Empty)


def _simplify_node(node: Expression, registry=None) -> Expression:
    """Apply one round of local rewrite rules to a node whose children are simplified."""
    if isinstance(node, Union):
        if _is_full_domain(node.left) or _is_full_domain(node.right):
            return Domain(node.arity)
        if _is_empty(node.left):
            return node.right
        if _is_empty(node.right):
            return node.left
        if node.left == node.right:
            return node.left
    elif isinstance(node, Intersection):
        if _is_full_domain(node.left):
            return node.right
        if _is_full_domain(node.right):
            return node.left
        if _is_empty(node.left) or _is_empty(node.right):
            return Empty(node.arity)
        if node.left == node.right:
            return node.left
    elif isinstance(node, Difference):
        if _is_full_domain(node.right):
            return Empty(node.arity)
        if _is_empty(node.right):
            return node.left
        if _is_empty(node.left):
            return Empty(node.arity)
        if node.left == node.right:
            return Empty(node.arity)
    elif isinstance(node, CrossProduct):
        if _is_empty(node.left) or _is_empty(node.right):
            return Empty(node.arity)
        if _is_full_domain(node.left) and _is_full_domain(node.right):
            return Domain(node.arity)
    elif isinstance(node, Selection):
        if _is_empty(node.child):
            return Empty(node.arity)
        if isinstance(node.condition, TrueCondition):
            return node.child
        if isinstance(node.condition, FalseCondition):
            return Empty(node.arity)
        if isinstance(node.child, Selection):
            merged = conjunction([node.child.condition, node.condition])
            return Selection(node.child.child, merged)
    elif isinstance(node, Projection):
        if _is_empty(node.child):
            return Empty(node.arity)
        if _is_full_domain(node.child) and len(set(node.indices)) == len(node.indices):
            # π_I(D^r) = D^{|I|} requires distinct indices: with duplicates the
            # result is a diagonal, a strict subset of D^{|I|}.
            return Domain(node.arity)
        if node.indices == tuple(range(node.child.arity)):
            return node.child
        if isinstance(node.child, Projection):
            inner = node.child
            composed = tuple(inner.indices[i] for i in node.indices)
            return Projection(inner.child, composed)
    if registry is not None:
        rewritten = registry.simplify_node(node)
        if rewritten is not None:
            return rewritten
    return node


#: Work-stack frame kinds of the iterative DAG rewriter.
_VISIT, _COMBINE, _ALIAS = 0, 1, 2


def _simplify_dag(root: Expression, registry, memo) -> Expression:
    """Simplify ``root`` in one bottom-up pass over the shared expression DAG.

    ``memo`` maps every unique subtree already processed to its fully
    simplified form, so a shared subtree is simplified exactly once per pass —
    not once per occurrence per fixpoint pass (the caller decides whether the
    table is per-call or persistent).  The traversal is iterative (explicit
    stack), so arbitrarily deep Union/Intersection chains are safe.

    At each node the children are simplified first, then the local rules are
    applied; when a rule fires, its (possibly brand-new) result is routed back
    through the same pipeline until it is stable, which reproduces the old
    whole-tree fixpoint exactly — the built-in rules only ever shrink the tree,
    so the loop terminates.  Change detection is ``is``-identity: interning
    collapses structurally equal subtrees onto one object, so "nothing
    changed" never requires a deep comparison.
    """
    node_summary(root)  # warm summaries + hashes so memo probes stay shallow
    stack = [(_VISIT, root, None)]
    while stack:
        kind, node, payload = stack.pop()
        if kind == _ALIAS:
            # ``node`` (a rewritten form) is simplified by now; alias its
            # sources onto the final result.
            result = memo[node]
            for source in payload:
                memo[source] = result
            continue
        if node in memo:
            continue
        children = node.children
        if kind == _VISIT and children:
            stack.append((_COMBINE, node, None))
            for child in children:
                if child not in memo:
                    stack.append((_VISIT, child, None))
            continue
        # Combine: children (if any) are simplified; rebuild and rewrite.
        candidate = node
        if children:
            new_children = tuple(memo[child] for child in children)
            if any(new is not old for new, old in zip(new_children, children)):
                candidate = node.with_children(new_children)
        if candidate is not node:
            node_summary(candidate)
            done = memo.get(candidate)
            if done is not None:
                memo[node] = done
                continue
        rewritten = _simplify_node(candidate, registry)
        if rewritten is candidate or rewritten == candidate:
            memo[node] = candidate
            memo[candidate] = candidate
            continue
        node_summary(rewritten)
        done = memo.get(rewritten)
        if done is not None:
            memo[node] = done
            if candidate is not node:
                memo[candidate] = done
            continue
        sources = (node, candidate) if candidate is not node else (node,)
        stack.append((_ALIAS, rewritten, sources))
        stack.append((_VISIT, rewritten, None))
    return memo[root]


def simplify_expression(expression: Expression, registry=None) -> Expression:
    """Simplify an expression by applying the local rewrite rules to a fixpoint.

    The rewriter is a single bottom-up pass over the expression DAG with
    per-subtree memoization.  When an expression cache is active
    (:mod:`repro.algebra.interning`), every output is stamped with an
    "already a fixpoint for this registry" token, so re-simplifying an
    expression that has been through the rewriter — which COMPOSE does after
    every elimination round, chain hop, and batch problem — costs one
    attribute read.
    """
    cache = interning.active_cache()
    if cache is not None:
        token = cache.simplify_token(registry)
        # One attribute read proves "this object already came out of this
        # rewriter for this registry".  COMPOSE threads the same immutable
        # expression objects through hop after hop, so the token answers the
        # overwhelming majority of re-simplifications; a persistent
        # structural table was measured to cost more in insert and memory
        # traffic than its extra equal-but-distinct hits saved.
        if getattr(expression, "_simplified_for", None) is token:
            cache.hits += 1
            return expression
        cache.misses += 1
        result = _simplify_dag(expression, registry, {})
        object.__setattr__(result, "_simplified_for", token)
        return result
    return _simplify_dag(expression, registry, {})


def is_trivially_satisfied(constraint: Constraint) -> bool:
    """Return ``True`` for constraints every instance satisfies.

    Recognized shapes: ``E ⊆ E``, ``E = E``, ``∅ ⊆ E``, ``E ⊆ D^r`` and the
    equality variants that reduce to them.
    """
    if constraint.is_trivial():
        return True
    if isinstance(constraint, ContainmentConstraint):
        return _is_empty(constraint.left) or _is_full_domain(constraint.right)
    if isinstance(constraint, EqualityConstraint):
        return (_is_empty(constraint.left) and _is_empty(constraint.right)) or (
            _is_full_domain(constraint.left) and _is_full_domain(constraint.right)
        )
    return False


def simplify_constraint(constraint: Constraint, registry=None) -> Constraint:
    """Simplify both sides of a constraint (token-memoized when a cache is
    active — whole constraints recur verbatim across elimination rounds and
    chain hops, and the token turns each repeat into one attribute read)."""
    cache = interning.active_cache()
    if cache is not None:
        token = cache.constraint_token(registry)
        # One attribute read answers "already a fixpoint for this registry".
        if getattr(constraint, "_simplified_for", None) is token:
            return constraint
    result = _simplify_constraint(constraint, registry)
    if cache is not None:
        object.__setattr__(result, "_simplified_for", token)
    return result


def _simplify_constraint(constraint: Constraint, registry=None) -> Constraint:
    left = simplify_expression(constraint.left, registry)
    right = simplify_expression(constraint.right, registry)
    if left is constraint.left and right is constraint.right:
        return constraint
    if isinstance(constraint, ContainmentConstraint):
        return ContainmentConstraint(left, right)
    return EqualityConstraint(left, right)


def simplify_constraint_set(
    constraints: ConstraintSet, registry=None, drop_trivial: bool = True
) -> ConstraintSet:
    """Simplify every constraint and optionally drop the trivially-satisfied ones.

    Constraint sets are immutable, so a set that has already been through this
    function for the same registry (and the same ``drop_trivial`` policy) is
    returned as-is — COMPOSE's final pass then skips the re-walk whenever the
    last elimination step already simplified its output.
    """
    # The marker includes the registry's rule version, so registering a new
    # simplification rule mid-run invalidates the "already simplified" skip.
    marker = (registry, getattr(registry, "version", 0), drop_trivial)
    if getattr(constraints, "_simplified_marker", None) == marker:
        return constraints
    simplified = constraints.map(lambda c: simplify_constraint(c, registry))
    if drop_trivial:
        simplified = simplified.filter(lambda c: not is_trivially_satisfied(c))
    simplified._simplified_marker = marker
    return simplified
