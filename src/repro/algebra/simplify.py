"""Algebraic simplification of expressions and constraints.

The composition steps introduce the special relations ``D`` (active domain)
and ``∅`` (empty) and the paper devotes two sub-steps (Sections 3.4.3 and
3.5.4) to eliminating them "to the extent that our knowledge of the operators
allows".  This module implements those identities, a few additional safe
simplifications, and the constraint-level clean-up (dropping constraints that
every instance satisfies).

Identities for ``D`` (Section 3.4.3)::

    E ∪ D^r = D^r        E ∩ D^r = E
    E − D^r = ∅          π_I(D^r) = D^{|I|}

Identities for ``∅`` (Section 3.5.4)::

    E ∪ ∅ = E            E ∩ ∅ = ∅           E − ∅ = E
    ∅ − E = ∅            σ_c(∅) = ∅          π_I(∅) = ∅

User-defined operators may contribute additional rules through the operator
registry; the functions here accept an optional registry for that purpose.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import interning
from repro.algebra.conditions import FalseCondition, TrueCondition, conjunction
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Selection,
    Union,
)
from repro.algebra.traversal import transform_bottom_up
from repro.constraints.constraint import (
    Constraint,
    ContainmentConstraint,
    EqualityConstraint,
)
from repro.constraints.constraint_set import ConstraintSet

__all__ = [
    "simplify_expression",
    "simplify_constraint",
    "simplify_constraint_set",
    "is_trivially_satisfied",
]


def _is_full_domain(expression: Expression) -> bool:
    """Return True if the expression is syntactically the full relation D^r."""
    return isinstance(expression, Domain)


def _is_empty(expression: Expression) -> bool:
    """Return True if the expression is syntactically the empty relation."""
    return isinstance(expression, Empty)


def _simplify_node(node: Expression, registry=None) -> Expression:
    """Apply one round of local rewrite rules to a node whose children are simplified."""
    if isinstance(node, Union):
        if _is_full_domain(node.left) or _is_full_domain(node.right):
            return Domain(node.arity)
        if _is_empty(node.left):
            return node.right
        if _is_empty(node.right):
            return node.left
        if node.left == node.right:
            return node.left
    elif isinstance(node, Intersection):
        if _is_full_domain(node.left):
            return node.right
        if _is_full_domain(node.right):
            return node.left
        if _is_empty(node.left) or _is_empty(node.right):
            return Empty(node.arity)
        if node.left == node.right:
            return node.left
    elif isinstance(node, Difference):
        if _is_full_domain(node.right):
            return Empty(node.arity)
        if _is_empty(node.right):
            return node.left
        if _is_empty(node.left):
            return Empty(node.arity)
        if node.left == node.right:
            return Empty(node.arity)
    elif isinstance(node, CrossProduct):
        if _is_empty(node.left) or _is_empty(node.right):
            return Empty(node.arity)
        if _is_full_domain(node.left) and _is_full_domain(node.right):
            return Domain(node.arity)
    elif isinstance(node, Selection):
        if _is_empty(node.child):
            return Empty(node.arity)
        if isinstance(node.condition, TrueCondition):
            return node.child
        if isinstance(node.condition, FalseCondition):
            return Empty(node.arity)
        if isinstance(node.child, Selection):
            merged = conjunction([node.child.condition, node.condition])
            return Selection(node.child.child, merged)
    elif isinstance(node, Projection):
        if _is_empty(node.child):
            return Empty(node.arity)
        if _is_full_domain(node.child) and len(set(node.indices)) == len(node.indices):
            # π_I(D^r) = D^{|I|} requires distinct indices: with duplicates the
            # result is a diagonal, a strict subset of D^{|I|}.
            return Domain(node.arity)
        if node.indices == tuple(range(node.child.arity)):
            return node.child
        if isinstance(node.child, Projection):
            inner = node.child
            composed = tuple(inner.indices[i] for i in node.indices)
            return Projection(inner.child, composed)
    if registry is not None:
        rewritten = registry.simplify_node(node)
        if rewritten is not None:
            return rewritten
    return node


def _simplify_fixpoint(expression: Expression, registry=None) -> Expression:
    previous = None
    current = expression
    # Each pass strictly shrinks or preserves the tree; iterate to a fixpoint
    # (bounded, since the rules never grow the expression).
    while current != previous:
        previous = current
        current = transform_bottom_up(current, lambda node: _simplify_node(node, registry))
    return current


def simplify_expression(expression: Expression, registry=None) -> Expression:
    """Simplify an expression by repeatedly applying the local rewrite rules.

    When an expression cache is active (:mod:`repro.algebra.interning`), the
    fixpoint computation is memoized per (expression, registry) pair, so
    repeated sub-expressions — across the constraints of one composition or
    across a whole batch of problems — are simplified once.
    """
    cache = interning.active_cache()
    if cache is not None:
        return cache.simplify(expression, registry, _simplify_fixpoint)
    return _simplify_fixpoint(expression, registry)


def is_trivially_satisfied(constraint: Constraint) -> bool:
    """Return ``True`` for constraints every instance satisfies.

    Recognized shapes: ``E ⊆ E``, ``E = E``, ``∅ ⊆ E``, ``E ⊆ D^r`` and the
    equality variants that reduce to them.
    """
    if constraint.is_trivial():
        return True
    if isinstance(constraint, ContainmentConstraint):
        return _is_empty(constraint.left) or _is_full_domain(constraint.right)
    if isinstance(constraint, EqualityConstraint):
        return (_is_empty(constraint.left) and _is_empty(constraint.right)) or (
            _is_full_domain(constraint.left) and _is_full_domain(constraint.right)
        )
    return False


def simplify_constraint(constraint: Constraint, registry=None) -> Constraint:
    """Simplify both sides of a constraint."""
    left = simplify_expression(constraint.left, registry)
    right = simplify_expression(constraint.right, registry)
    if left is constraint.left and right is constraint.right:
        return constraint
    if isinstance(constraint, ContainmentConstraint):
        return ContainmentConstraint(left, right)
    return EqualityConstraint(left, right)


def simplify_constraint_set(
    constraints: ConstraintSet, registry=None, drop_trivial: bool = True
) -> ConstraintSet:
    """Simplify every constraint and optionally drop the trivially-satisfied ones."""
    simplified = constraints.map(lambda c: simplify_constraint(c, registry))
    if drop_trivial:
        simplified = simplified.filter(lambda c: not is_trivially_satisfied(c))
    return simplified
