"""Parser for the plain-text expression / constraint syntax.

The paper describes "a plain-text syntax for specifying mapping composition
tasks" together with a parser that converts it into the internal algebraic
representation.  This module provides that parser for the syntax documented in
:mod:`repro.algebra.printer` (the printer and parser round-trip).

Relation arities come either from an inline declaration (``R/3``) or from a
signature passed to the parsing functions.  The reserved words are::

    union intersect x select project skolem semijoin antisemijoin
    leftouterjoin D empty const true false and or not

Example
-------
>>> from repro.algebra.parser import parse_constraint
>>> parse_constraint("project[0,1](select[#3 = 5](Movies/6)) <= FiveStarMovies/3")
...                                         # doctest: +ELLIPSIS
<ContainmentConstraint: ...>
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FALSE,
    Not,
    Or,
    TRUE,
)
from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    SkolemFunction,
    Union,
)
from repro.algebra.terms import Attribute, Constant
from repro.exceptions import ParseError

__all__ = ["parse_expression", "parse_condition", "parse_constraint", "parse_constraints"]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:\\.|[^'\\])*')
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<attr>\#\d+)
  | (?P<op><=|>=|!=|=|<|>|-|/|\(|\)|\[|\]|,|;)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_BINARY_KEYWORDS = {"union", "intersect", "x"}
_JOIN_KEYWORDS = {"semijoin": SemiJoin, "antisemijoin": AntiSemiJoin, "leftouterjoin": LeftOuterJoin}
_RESERVED = (
    _BINARY_KEYWORDS
    | set(_JOIN_KEYWORDS)
    | {"select", "project", "skolem", "D", "empty", "const", "true", "false", "and", "or", "not"}
)


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, signature=None):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.signature = signature

    # -- token helpers ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise ParseError(
                f"expected {expected!r} but found {token.value!r}", token.position, self.text
            )
        return self.advance()

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.position, self.text)

    # -- literals -----------------------------------------------------------

    def parse_literal(self) -> object:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "string":
            self.advance()
            body = token.value[1:-1]
            return body.replace("\\'", "'").replace("\\\\", "\\")
        raise self.error(f"expected a literal value, found {token.value!r}")

    # -- conditions ---------------------------------------------------------

    def parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        operands = [self._parse_and()]
        while self.at("name", "or"):
            self.advance()
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _parse_and(self) -> Condition:
        operands = [self._parse_condition_atom()]
        while self.at("name", "and"):
            self.advance()
            operands.append(self._parse_condition_atom())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _parse_condition_atom(self) -> Condition:
        if self.at("name", "true"):
            self.advance()
            return TRUE
        if self.at("name", "false"):
            self.advance()
            return FALSE
        if self.at("name", "not"):
            self.advance()
            self.expect("op", "(")
            inner = self._parse_or()
            self.expect("op", ")")
            return Not(inner)
        if self.at("op", "("):
            self.advance()
            inner = self._parse_or()
            self.expect("op", ")")
            return inner
        return self._parse_comparison()

    def _parse_term(self):
        token = self.peek()
        if token.kind == "attr":
            self.advance()
            return Attribute(int(token.value[1:]))
        return Constant(self.parse_literal())

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        token = self.peek()
        if token.kind != "op" or token.value not in {"=", "!=", "<", "<=", ">", ">="}:
            raise self.error(f"expected a comparison operator, found {token.value!r}")
        self.advance()
        right = self._parse_term()
        return Comparison(left, token.value, right)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expression:
        left = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "name" and token.value in _BINARY_KEYWORDS:
                self.advance()
                right = self.parse_primary()
                if token.value == "union":
                    left = Union(left, right)
                elif token.value == "intersect":
                    left = Intersection(left, right)
                else:
                    left = CrossProduct(left, right)
            elif token.kind == "op" and token.value == "-":
                self.advance()
                right = self.parse_primary()
                left = Difference(left, right)
            else:
                return left

    def parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == "op" and token.value == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        if token.kind != "name":
            raise self.error(f"expected an expression, found {token.value!r}")
        name = token.value
        if name == "select":
            return self._parse_select()
        if name == "project":
            return self._parse_project()
        if name == "skolem":
            return self._parse_skolem()
        if name in _JOIN_KEYWORDS:
            return self._parse_join(name)
        if name == "D":
            return self._parse_domain()
        if name == "empty":
            return self._parse_empty()
        if name == "const":
            return self._parse_constant_relation()
        return self._parse_relation()

    def _parse_index_list(self) -> Tuple[int, ...]:
        self.expect("op", "[")
        indices: List[int] = []
        if not self.at("op", "]"):
            while True:
                token = self.expect("number")
                indices.append(int(token.value))
                if self.at("op", ","):
                    self.advance()
                    continue
                break
        self.expect("op", "]")
        return tuple(indices)

    def _parse_select(self) -> Expression:
        self.expect("name", "select")
        self.expect("op", "[")
        condition = self.parse_condition()
        self.expect("op", "]")
        self.expect("op", "(")
        child = self.parse_expression()
        self.expect("op", ")")
        return Selection(child, condition)

    def _parse_project(self) -> Expression:
        self.expect("name", "project")
        indices = self._parse_index_list()
        self.expect("op", "(")
        child = self.parse_expression()
        self.expect("op", ")")
        return Projection(child, indices)

    def _parse_skolem(self) -> Expression:
        self.expect("name", "skolem")
        name_token = self.expect("name")
        depends_on = self._parse_index_list()
        self.expect("op", "(")
        child = self.parse_expression()
        self.expect("op", ")")
        return SkolemApplication(child, SkolemFunction(name_token.value, depends_on))

    def _parse_join(self, keyword: str) -> Expression:
        node_type = _JOIN_KEYWORDS[keyword]
        self.expect("name", keyword)
        self.expect("op", "[")
        condition = self.parse_condition()
        self.expect("op", "]")
        self.expect("op", "(")
        left = self.parse_expression()
        self.expect("op", ",")
        right = self.parse_expression()
        self.expect("op", ")")
        return node_type(left, right, condition)

    def _parse_domain(self) -> Expression:
        self.expect("name", "D")
        self.expect("op", "(")
        arity = int(self.expect("number").value)
        self.expect("op", ")")
        return Domain(arity)

    def _parse_empty(self) -> Expression:
        self.expect("name", "empty")
        self.expect("op", "(")
        arity = int(self.expect("number").value)
        self.expect("op", ")")
        return Empty(arity)

    def _parse_constant_relation(self) -> Expression:
        self.expect("name", "const")
        self.expect("op", "(")
        rows: List[Tuple[object, ...]] = []
        while True:
            self.expect("op", "(")
            values: List[object] = []
            while True:
                values.append(self.parse_literal())
                if self.at("op", ","):
                    self.advance()
                    continue
                break
            self.expect("op", ")")
            rows.append(tuple(values))
            if self.at("op", ";"):
                self.advance()
                continue
            break
        self.expect("op", ")")
        arity = len(rows[0])
        return ConstantRelation(tuples=tuple(rows), constant_arity=arity)

    def _parse_relation(self) -> Expression:
        token = self.expect("name")
        name = token.value
        if name in _RESERVED:
            raise ParseError(f"{name!r} is a reserved word", token.position, self.text)
        if self.at("op", "/"):
            self.advance()
            arity = int(self.expect("number").value)
            return Relation(name, arity)
        if self.signature is not None and name in self.signature:
            return Relation(name, self.signature.arity_of(name))
        raise ParseError(
            f"relation {name!r} has no inline arity (use {name}/<arity>) and is not in the signature",
            token.position,
            self.text,
        )

    # -- constraints --------------------------------------------------------

    def parse_constraint(self):
        from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint

        left = self.parse_expression()
        token = self.peek()
        if token.kind != "op" or token.value not in {"<=", ">=", "="}:
            raise self.error(f"expected '<=', '>=' or '=', found {token.value!r}")
        self.advance()
        right = self.parse_expression()
        if token.value == "<=":
            return ContainmentConstraint(left, right)
        if token.value == ">=":
            return ContainmentConstraint(right, left)
        return EqualityConstraint(left, right)


def parse_expression(text: str, signature=None) -> Expression:
    """Parse a single expression from ``text``."""
    parser = _Parser(text, signature)
    expression = parser.parse_expression()
    parser.expect("eof")
    return expression


def parse_condition(text: str) -> Condition:
    """Parse a selection condition from ``text``."""
    parser = _Parser(text)
    condition = parser.parse_condition()
    parser.expect("eof")
    return condition


def parse_constraint(text: str, signature=None):
    """Parse a single constraint (``E1 <= E2``, ``E1 >= E2`` or ``E1 = E2``)."""
    parser = _Parser(text, signature)
    constraint = parser.parse_constraint()
    parser.expect("eof")
    return constraint


def parse_constraints(text: str, signature=None) -> list:
    """Parse one constraint per non-empty, non-comment line of ``text``.

    Lines starting with ``#`` are treated as comments.
    """
    constraints = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        constraints.append(parse_constraint(stripped, signature))
    return constraints
