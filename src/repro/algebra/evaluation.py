"""Set-semantics evaluation of relational-algebra expressions over instances.

The evaluator implements the standard set semantics of Section 2 of the paper,
including the special relations:

* ``D^r`` — the r-fold cross product of the active domain of the instance, and
* ``∅``  — the empty relation.

Skolem applications can only be evaluated when a concrete interpretation for
each Skolem function is supplied (a :class:`SkolemInterpretation`); this is
used by tests that verify the *semantics* of Skolemized constraint sets, never
by the composition algorithm itself.

The extended operators (semijoin, anti-semijoin, left outerjoin) are evaluated
too, with NULL padding for unmatched outerjoin rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.algebra.expressions import (
    AntiSemiJoin,
    ConstantRelation,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    SemiJoin,
    SkolemApplication,
    Union,
)
from repro.algebra.terms import NULL
from repro.exceptions import EvaluationError
from repro.schema.instance import Instance

__all__ = ["Evaluator", "SkolemInterpretation", "evaluate"]

Row = Tuple[object, ...]
Rows = FrozenSet[Row]

#: Hard cap on the number of tuples any single sub-result may contain.
DEFAULT_MAX_TUPLES = 200_000


@dataclass
class SkolemInterpretation:
    """Concrete interpretations for Skolem functions.

    ``functions`` maps a Skolem function name to a Python callable that takes
    the tuple of depended-on values and returns a single value.  Functions not
    listed fall back to ``default``, which simply returns a deterministic
    value derived from its arguments (useful for completeness-style tests).
    """

    functions: Dict[str, Callable[[Tuple[object, ...]], object]] = field(default_factory=dict)
    default: Optional[Callable[[str, Tuple[object, ...]], object]] = None

    def apply(self, name: str, arguments: Tuple[object, ...]) -> object:
        if name in self.functions:
            return self.functions[name](arguments)
        if self.default is not None:
            return self.default(name, arguments)
        raise EvaluationError(f"no interpretation supplied for Skolem function {name!r}")


class Evaluator:
    """Evaluate expressions against a fixed instance.

    Parameters
    ----------
    instance:
        The database instance supplying relation contents and the active domain.
    skolems:
        Optional interpretation of Skolem functions.
    extra_domain:
        Extra values to include in the active domain (the paper allows the
        witness of completeness to range outside the restricted instance).
    max_tuples:
        Safety limit on intermediate result sizes; exceeding it raises
        :class:`EvaluationError` instead of exhausting memory (relevant for
        ``D^r`` with a large active domain).
    """

    def __init__(
        self,
        instance: Instance,
        skolems: Optional[SkolemInterpretation] = None,
        extra_domain: Iterable[object] = (),
        max_tuples: int = DEFAULT_MAX_TUPLES,
    ):
        self.instance = instance
        self.skolems = skolems
        self.max_tuples = max_tuples
        self._domain = frozenset(instance.active_domain()) | frozenset(extra_domain)
        self._cache: Dict[Expression, Rows] = {}

    # -- public API ----------------------------------------------------------

    def evaluate(self, expression: Expression) -> Rows:
        """Return the set of tuples denoted by ``expression`` on the instance."""
        if expression in self._cache:
            return self._cache[expression]
        result = self._dispatch(expression)
        self._check_size(result, expression)
        self._cache[expression] = result
        return result

    @property
    def active_domain(self) -> FrozenSet[object]:
        """The active domain used to interpret ``D``."""
        return self._domain

    # -- dispatch -------------------------------------------------------------

    def _check_size(self, rows: Rows, expression: Expression) -> None:
        if len(rows) > self.max_tuples:
            raise EvaluationError(
                f"evaluation of {expression!s} produced {len(rows)} tuples, "
                f"exceeding the limit of {self.max_tuples}"
            )

    def _dispatch(self, expression: Expression) -> Rows:
        if isinstance(expression, Relation):
            return self._eval_relation(expression)
        if isinstance(expression, Domain):
            return self._eval_domain(expression)
        if isinstance(expression, Empty):
            return frozenset()
        if isinstance(expression, ConstantRelation):
            return frozenset(expression.tuples)
        if isinstance(expression, Union):
            return self.evaluate(expression.left) | self.evaluate(expression.right)
        if isinstance(expression, Intersection):
            return self.evaluate(expression.left) & self.evaluate(expression.right)
        if isinstance(expression, Difference):
            return self.evaluate(expression.left) - self.evaluate(expression.right)
        if isinstance(expression, CrossProduct):
            return self._eval_product(expression)
        if isinstance(expression, Selection):
            return frozenset(
                row for row in self.evaluate(expression.child) if expression.condition.evaluate(row)
            )
        if isinstance(expression, Projection):
            return frozenset(
                tuple(row[i] for i in expression.indices)
                for row in self.evaluate(expression.child)
            )
        if isinstance(expression, SkolemApplication):
            return self._eval_skolem(expression)
        if isinstance(expression, SemiJoin):
            return self._eval_semijoin(expression, keep_matching=True)
        if isinstance(expression, AntiSemiJoin):
            return self._eval_semijoin(expression, keep_matching=False)
        if isinstance(expression, LeftOuterJoin):
            return self._eval_leftouterjoin(expression)
        raise EvaluationError(f"cannot evaluate expression of type {type(expression).__name__}")

    # -- node evaluators -------------------------------------------------------

    def _eval_relation(self, expression: Relation) -> Rows:
        rows = self.instance.relation(expression.name)
        for row in rows:
            if len(row) != expression.arity:
                raise EvaluationError(
                    f"relation {expression.name!r} declared with arity {expression.arity} "
                    f"but the instance contains a tuple of width {len(row)}"
                )
        return rows

    def _eval_domain(self, expression: Domain) -> Rows:
        domain = sorted(self._domain, key=repr)
        size = len(domain) ** expression.arity
        if size > self.max_tuples:
            raise EvaluationError(
                f"materializing D({expression.arity}) over a domain of {len(domain)} values "
                f"would produce {size} tuples (limit {self.max_tuples})"
            )
        return frozenset(itertools.product(domain, repeat=expression.arity))

    def _eval_product(self, expression: CrossProduct) -> Rows:
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        if len(left) * len(right) > self.max_tuples:
            raise EvaluationError(
                f"cross product would produce {len(left) * len(right)} tuples "
                f"(limit {self.max_tuples})"
            )
        return frozenset(l + r for l in left for r in right)

    def _eval_skolem(self, expression: SkolemApplication) -> Rows:
        if self.skolems is None:
            raise EvaluationError(
                f"expression contains Skolem function {expression.function.name!r} "
                "but no SkolemInterpretation was supplied"
            )
        child_rows = self.evaluate(expression.child)
        result = set()
        for row in child_rows:
            arguments = tuple(row[i] for i in expression.function.depends_on)
            value = self.skolems.apply(expression.function.name, arguments)
            result.add(row + (value,))
        return frozenset(result)

    def _eval_semijoin(self, expression, keep_matching: bool) -> Rows:
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        result = set()
        for left_row in left:
            matched = any(
                expression.condition.evaluate(left_row + right_row) for right_row in right
            )
            if matched == keep_matching:
                result.add(left_row)
        return frozenset(result)

    def _eval_leftouterjoin(self, expression: LeftOuterJoin) -> Rows:
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        null_padding = (NULL,) * expression.right.arity
        result = set()
        for left_row in left:
            matches = [
                left_row + right_row
                for right_row in right
                if expression.condition.evaluate(left_row + right_row)
            ]
            if matches:
                result.update(matches)
            else:
                result.add(left_row + null_padding)
        return frozenset(result)


def evaluate(
    expression: Expression,
    instance: Instance,
    skolems: Optional[SkolemInterpretation] = None,
    extra_domain: Iterable[object] = (),
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> Rows:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(instance, skolems, extra_domain, max_tuples).evaluate(expression)
