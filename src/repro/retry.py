"""Classified retries for transient storage faults: bounded, jittered, counted.

The catalog tier used to scatter ``except OSError: pass`` around its disk
operations — every one of those sites either swallowed a real failure or
retried nothing.  :class:`RetryPolicy` replaces them with one discipline:

* errors are **classified** — :func:`classify_error` calls an ``OSError``
  *transient* when its errno is one the OS routinely clears on its own
  (``EIO``, ``EAGAIN``, ``EBUSY``, ``ETIMEDOUT``, ``EINTR``), and
  *permanent* otherwise (``ENOENT``, ``EACCES``, ``ENOSPC`` … retrying those
  just burns the deadline); non-``OSError`` exceptions are always permanent;
* transient errors are retried with **jittered exponential backoff** under a
  bounded attempt count and an optional per-operation deadline;
* every decision is **counted** in a thread-safe :class:`RetryStats`, which
  the catalog exposes through ``stats()`` and the service through
  ``/metrics`` — a storage layer that is quietly retrying its way through a
  sick disk shows up in the numbers instead of in a latency mystery.

The policy re-raises the original exception once attempts or the deadline
run out, so callers keep their existing error contracts; it never wraps.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

__all__ = [
    "TRANSIENT_ERRNOS",
    "classify_error",
    "RetryPolicy",
    "RetryStats",
]

T = TypeVar("T")

#: Errnos worth retrying: the OS reports a condition that routinely clears.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.EAGAIN,
        errno.EWOULDBLOCK,
        errno.EBUSY,
        errno.ETIMEDOUT,
        errno.EINTR,
    }
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` — the retry/fail fork for ``exc``."""
    if isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS:
        return "transient"
    return "permanent"


class RetryStats:
    """Thread-safe counters of one retry domain (a catalog, a checkpoint store)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.operations = 0
        self.retries = 0
        self.transient_errors = 0
        self.permanent_errors = 0
        self.exhausted = 0
        self._slept_seconds = 0.0

    def record_operation(self) -> None:
        with self._lock:
            self.operations += 1

    def record_retry(self, slept_seconds: float) -> None:
        with self._lock:
            self.retries += 1
            self.transient_errors += 1
            self._slept_seconds += slept_seconds

    def record_permanent(self) -> None:
        with self._lock:
            self.permanent_errors += 1

    def record_exhausted(self) -> None:
        with self._lock:
            self.transient_errors += 1
            self.exhausted += 1

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "operations": self.operations,
                "retries": self.retries,
                "transient_errors": self.transient_errors,
                "permanent_errors": self.permanent_errors,
                "exhausted": self.exhausted,
                "backoff_seconds": round(self._slept_seconds, 6),
            }

    def __repr__(self) -> str:
        return (
            f"<RetryStats {self.operations} ops, {self.retries} retries, "
            f"{self.exhausted} exhausted>"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with bounded attempts and a deadline.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retrying).
    base_delay_seconds / backoff / max_delay_seconds:
        Attempt ``n`` (0-based) sleeps ``base * backoff**n`` capped at
        ``max_delay_seconds``, with the *full-jitter* strategy: the actual
        sleep is uniform in ``[delay/2, delay]``, so a herd of writers that
        failed together does not retry together.
    deadline_seconds:
        Optional wall-clock budget for the whole operation, retries and
        sleeps included; once exceeded the last error is re-raised even if
        attempts remain.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.002
    backoff: float = 2.0
    max_delay_seconds: float = 0.25
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    def delay_for(self, attempt: int, rng: Callable[[], float] = random.random) -> float:
        """The jittered sleep before retry ``attempt`` (0-based)."""
        delay = min(
            self.base_delay_seconds * (self.backoff ** attempt),
            self.max_delay_seconds,
        )
        return delay * (0.5 + 0.5 * rng())

    def run(
        self,
        op: Callable[[], T],
        stats: Optional[RetryStats] = None,
        classify: Callable[[BaseException], str] = classify_error,
        description: str = "",
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        rng: Callable[[], float] = random.random,
    ) -> T:
        """Run ``op`` under this policy; re-raise its last error on give-up.

        Permanent errors propagate immediately; transient errors retry until
        attempts or the deadline run out.  ``description`` only labels the
        operation in counters-adjacent logging by callers; the exception
        always travels unwrapped.
        """
        if stats is not None:
            stats.record_operation()
        deadline = (
            clock() + self.deadline_seconds if self.deadline_seconds is not None else None
        )
        attempt = 0
        while True:
            try:
                return op()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if classify(exc) != "transient":
                    if stats is not None:
                        stats.record_permanent()
                    raise
                attempt += 1
                if attempt >= self.max_attempts:
                    if stats is not None:
                        stats.record_exhausted()
                    raise
                pause = self.delay_for(attempt - 1, rng)
                if deadline is not None and clock() + pause > deadline:
                    if stats is not None:
                        stats.record_exhausted()
                    raise
                if stats is not None:
                    stats.record_retry(pause)
                sleep(pause)
