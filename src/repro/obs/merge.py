"""Merge per-process trace sinks into one tree per trace id.

Router, primary, and followers each write their own JSONL sink; after a
drill (or an incident) the sinks are merged here.  Dedup prefers the
completed record over the start event for the same span id — a process
SIGKILLed mid-request leaves only the start event behind, which is
exactly enough to keep its children parented.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple


def load_spans(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Read spans from JSONL sink files, skipping unparseable lines."""
    spans: List[Dict[str, Any]] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and record.get("span_id"):
                        spans.append(record)
        except OSError:
            continue
    return spans


def merge_spans(spans: Iterable[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group spans by trace id, deduplicating span ids.

    A span may appear twice in the sinks (start event + completed
    record); the completed record — the one carrying ``duration`` —
    wins.
    """
    by_span: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for record in spans:
        trace_id = record.get("trace_id")
        span_id = record.get("span_id")
        if not trace_id or not span_id:
            continue
        key = (trace_id, span_id)
        existing = by_span.get(key)
        if existing is None or ("duration" in record and "duration" not in existing):
            by_span[key] = record
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for (trace_id, _), record in by_span.items():
        traces.setdefault(trace_id, []).append(record)
    for records in traces.values():
        records.sort(key=lambda r: (r.get("start") or 0.0, r.get("span_id") or ""))
    return traces


def build_tree(
    records: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Arrange one trace's spans into (roots, orphans).

    Each returned node is the span record plus a ``children`` list.  An
    orphan names a parent span id that no record in the trace carries —
    the signature of a lost sink or a broken propagation hop.
    """
    nodes = {r["span_id"]: dict(r, children=[]) for r in records}
    roots: List[Dict[str, Any]] = []
    orphans: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent_id = node.get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id]["children"].append(node)
        else:
            orphans.append(node)
    for node in nodes.values():
        node["children"].sort(
            key=lambda n: (n.get("start") or 0.0, n.get("span_id") or "")
        )
    roots.sort(key=lambda n: (n.get("start") or 0.0, n.get("span_id") or ""))
    return roots, orphans


def span_names(records: List[Dict[str, Any]]) -> List[str]:
    return [str(r.get("name") or "") for r in records]


def format_trace(trace_id: str, records: List[Dict[str, Any]]) -> str:
    """Render one trace as an indented tree, one span per line."""
    roots, orphans = build_tree(records)
    lines = [f"trace {trace_id} ({len(records)} spans)"]

    def walk(node: Dict[str, Any], depth: int) -> None:
        duration = node.get("duration")
        timing = f" {duration * 1000:.2f}ms" if duration is not None else " (incomplete)"
        service = node.get("service") or "?"
        status = node.get("status")
        flag = " !" if status == "error" else ""
        lines.append(
            f"{'  ' * depth}- {node.get('name')} [{service}]{timing}{flag}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 1)
    for orphan in orphans:
        lines.append(
            f"  ? orphan {orphan.get('name')} [{orphan.get('service') or '?'}]"
            f" (missing parent {orphan.get('parent_id')})"
        )
    return "\n".join(lines)


def verify(
    traces: Dict[str, List[Dict[str, Any]]],
    require: Optional[List[str]] = None,
) -> List[str]:
    """Check merged traces for completeness; return human-readable problems.

    Every trace must be orphan-free.  If ``require`` names spans, at
    least one trace must contain ALL of them — the drill's proof that an
    acknowledged write produced a tree spanning every process.
    """
    problems: List[str] = []
    for trace_id, records in sorted(traces.items()):
        _, orphans = build_tree(records)
        for orphan in orphans:
            problems.append(
                f"trace {trace_id}: span {orphan.get('name')}"
                f" ({orphan.get('span_id')}) references missing parent"
                f" {orphan.get('parent_id')}"
            )
    if require:
        satisfied = any(
            all(name in span_names(records) for name in require)
            for records in traces.values()
        )
        if not satisfied:
            problems.append(
                "no trace contains all required spans: " + ", ".join(require)
            )
    return problems
