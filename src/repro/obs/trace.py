"""Request-scoped tracing: spans, propagation headers, and JSONL sinks.

A trace is born at HTTP ingress (router or primary), rides across process
boundaries in ``x-repro-trace-id`` / ``x-repro-span-id`` headers, and is
stamped into journal entries so follower applies join the same tree.  Each
process records its own spans into a bounded in-memory ring (served by
``GET /trace``) and, when ``REPRO_TRACE_LOG`` points at a file, into an
append-only JSONL sink with the same fail-silent contract as the fault
audit log: telemetry must never become a fault of its own.

Spans are cheap to the point of invisibility on untraced paths:
``span(...)`` with no ambient context and ``new_trace=False`` yields a
no-op and records nothing, so direct library use (no HTTP, no tracing
configured) pays a thread-local read and nothing else.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

TRACE_ID_HEADER = "x-repro-trace-id"
SPAN_ID_HEADER = "x-repro-span-id"

LOG_ENV_VAR = "REPRO_TRACE_LOG"
SERVICE_ENV_VAR = "REPRO_TRACE_SERVICE"

_RING_CAPACITY = 4096


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: enough to parent a child anywhere."""

    trace_id: str
    span_id: str

    def headers(self) -> Dict[str, str]:
        return {TRACE_ID_HEADER: self.trace_id, SPAN_ID_HEADER: self.span_id}


def extract_context(headers: Any) -> Optional[SpanContext]:
    """Pull a SpanContext out of an HTTP header mapping, if one rode in."""
    trace_id = headers.get(TRACE_ID_HEADER)
    span_id = headers.get(SPAN_ID_HEADER)
    if not trace_id:
        return None
    return SpanContext(trace_id=str(trace_id), span_id=str(span_id or ""))


class _Ambient(threading.local):
    context: Optional[SpanContext] = None


_ambient = _Ambient()


def current() -> Optional[SpanContext]:
    """The ambient span context of this thread, if any."""
    return _ambient.context


class TraceRecorder:
    """Bounded span ring + optional JSONL sink + listener fan-out.

    One recorder per process.  The ring answers ``GET /trace`` without
    touching disk; the sink makes spans survive SIGKILL for post-mortem
    merging; listeners let the service layer turn span durations into
    histograms without the catalog layer importing metrics.
    """

    def __init__(
        self,
        service: str = "",
        log_path: Optional[str] = None,
        capacity: int = _RING_CAPACITY,
    ) -> None:
        self.service = service
        self.log_path = log_path
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        self._log_handle = None
        self._log_failed = False

    # -- configuration -------------------------------------------------

    def add_listener(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # -- recording -----------------------------------------------------

    def record(self, record: Dict[str, Any]) -> None:
        record.setdefault("service", self.service)
        with self._lock:
            self._ring.append(record)
            listeners = list(self._listeners)
            self._write_log(record)
        for listener in listeners:
            try:
                listener(record)
            except Exception:
                # A broken listener must not break the traced request.
                pass

    def _write_log(self, record: Dict[str, Any]) -> None:
        # Same contract as the fault audit log: append-only JSONL, one
        # flush per line, and any OSError silences the sink for good —
        # the sink is an audit convenience, never a fault of its own.
        if not self.log_path or self._log_failed:
            return
        try:
            if self._log_handle is None:
                self._log_handle = open(self.log_path, "a", encoding="utf-8")
            self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_handle.flush()
        except OSError:
            self._log_failed = True

    # -- reading -------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        return records

    def close(self) -> None:
        with self._lock:
            if self._log_handle is not None:
                try:
                    self._log_handle.close()
                except OSError:
                    pass
                self._log_handle = None


# The default recorder honours the environment at import time, so drill
# subprocesses (which build services directly, without the CLI calling
# ``configure``) sink spans purely through REPRO_TRACE_LOG/_SERVICE.
_recorder = TraceRecorder(
    service=os.environ.get(SERVICE_ENV_VAR, ""),
    log_path=os.environ.get(LOG_ENV_VAR) or None,
)


def recorder() -> TraceRecorder:
    return _recorder


def configure(
    service: Optional[str] = None, log_path: Optional[str] = None
) -> TraceRecorder:
    """(Re)configure the process-wide recorder.

    Falls back to ``REPRO_TRACE_SERVICE`` / ``REPRO_TRACE_LOG`` for any
    argument left as None, so subprocess drills configure purely through
    the environment.
    """
    global _recorder
    if service is None:
        service = os.environ.get(SERVICE_ENV_VAR, "")
    if log_path is None:
        log_path = os.environ.get(LOG_ENV_VAR) or None
    _recorder.close()
    _recorder = TraceRecorder(service=service, log_path=log_path)
    return _recorder


class _SpanHandle:
    """The live span yielded by ``span()``; ``context`` parents children."""

    __slots__ = ("context", "name", "attrs")

    def __init__(self, context: Optional[SpanContext], name: str, attrs: Dict[str, Any]):
        self.context = context
        self.name = name
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        if self.context is not None:
            self.attrs[key] = value


_NOOP = _SpanHandle(None, "", {})


@contextmanager
def span(
    name: str,
    parent: Optional[SpanContext] = None,
    new_trace: bool = False,
    record_start: bool = False,
    **attrs: Any,
) -> Iterator[_SpanHandle]:
    """Record a span around a block, parented on ``parent`` or the
    ambient context.

    With no parent, no ambient context, and ``new_trace=False`` this is a
    no-op: nothing is recorded and children see no context.  With
    ``record_start=True`` an immediate start event is written before the
    body runs, so a child recorded by another process never orphans even
    if this process is SIGKILLed before the completed record lands.
    """
    effective_parent = parent if parent is not None else _ambient.context
    if effective_parent is None and not new_trace:
        yield _NOOP
        return

    trace_id = effective_parent.trace_id if effective_parent else new_trace_id()
    context = SpanContext(trace_id=trace_id, span_id=new_span_id())
    handle = _SpanHandle(context, name, dict(attrs))

    if record_start:
        _recorder.record(
            {
                "trace_id": trace_id,
                "span_id": context.span_id,
                "parent_id": effective_parent.span_id if effective_parent else None,
                "name": name,
                "start": time.time(),
                "attrs": dict(handle.attrs),
                "event": "start",
            }
        )

    prior = _ambient.context
    _ambient.context = context
    started_wall = time.time()
    started = time.perf_counter()
    status = "ok"
    try:
        yield handle
    except BaseException:
        status = "error"
        raise
    finally:
        _ambient.context = prior
        _recorder.record(
            {
                "trace_id": trace_id,
                "span_id": context.span_id,
                "parent_id": effective_parent.span_id if effective_parent else None,
                "name": name,
                "start": started_wall,
                "duration": time.perf_counter() - started,
                "status": status,
                "attrs": handle.attrs,
            }
        )


def record_span(
    name: str,
    parent: SpanContext,
    started_at: float,
    duration: float,
    status: str = "ok",
    **attrs: Any,
) -> SpanContext:
    """Record a span retroactively from measured timings.

    For work whose wall time is measured in another thread (queue wait,
    batch execution) or another process (follower applies parented on a
    journal-entry stamp): the caller supplies the wall-clock start and
    the duration, and the span joins ``parent``'s trace.
    """
    context = SpanContext(trace_id=parent.trace_id, span_id=new_span_id())
    _recorder.record(
        {
            "trace_id": parent.trace_id,
            "span_id": context.span_id,
            "parent_id": parent.span_id,
            "name": name,
            "start": started_at,
            "duration": max(0.0, duration),
            "status": status,
            "attrs": dict(attrs),
        }
    )
    return context


@contextmanager
def ambient(context: Optional[SpanContext]) -> Iterator[None]:
    """Temporarily install ``context`` as this thread's ambient context."""
    prior = _ambient.context
    _ambient.context = context
    try:
        yield
    finally:
        _ambient.context = prior
