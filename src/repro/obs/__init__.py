"""Observability: request-scoped tracing, sinks, and cross-process merging.

``repro.obs.trace`` records spans into a bounded ring plus an optional
JSONL sink; ``repro.obs.merge`` reassembles the sinks of router, primary,
and followers into one tree per trace id.
"""

from repro.obs.trace import (
    LOG_ENV_VAR,
    SERVICE_ENV_VAR,
    SPAN_ID_HEADER,
    TRACE_ID_HEADER,
    SpanContext,
    TraceRecorder,
    ambient,
    configure,
    current,
    extract_context,
    new_span_id,
    new_trace_id,
    record_span,
    recorder,
    span,
)
from repro.obs.merge import (
    build_tree,
    format_trace,
    load_spans,
    merge_spans,
    verify,
)

__all__ = [
    "LOG_ENV_VAR",
    "SERVICE_ENV_VAR",
    "SPAN_ID_HEADER",
    "TRACE_ID_HEADER",
    "SpanContext",
    "TraceRecorder",
    "ambient",
    "build_tree",
    "configure",
    "current",
    "extract_context",
    "format_trace",
    "load_spans",
    "merge_spans",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "recorder",
    "span",
    "verify",
]
