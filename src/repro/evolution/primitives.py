"""The schema-evolution primitives of Figure 1.

Each primitive takes zero or one input relation and produces zero or more new
relations plus the mapping constraints that link them.  The constraints are
written in the unnamed (index-based) perspective; in the descriptions below,
the paper's attribute-list notation is shown next to the algebraic encoding.

==========  =======================  =====================================================
Primitive   Paper constraint(s)      Encoding (0-based column indices)
==========  =======================  =====================================================
AR          (none)                   —
DR          (none)                   —
AA          R = π_A(S)               ``R = project[0..n-1](S)`` (new column appended)
DA          π_{A−C}(R) = S           ``project[all but c](R) = S``
Df          R × {c} = S              ``(R x const((c,))) = S``
Db          R = π_A(σ_{C=c}(S))      ``R = project[0..n-1](select[#n = c](S))``
D           both of the above
Hf          σ_{C=cS}(R) = S, σ_{C=cT}(R) = T
Hb          R = S ∪ T
H           all three
Vf          π_{A,B}(R) = S, π_{A,C}(R) = T
Vb          R = S ⋈_A T              join expressed with ×, σ, π
V           all three (input must have a key A)
Nf/Nb/N     same as vertical plus π_A(T) ⊆ π_A(S)
Sub         R ⊆ S
Sup         R ⊇ S
==========  =======================  =====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.builders import natural_key_join, project
from repro.algebra.conditions import equals_const
from repro.algebra.expressions import (
    ConstantRelation,
    CrossProduct,
    Expression,
    Relation,
    Selection,
    Union,
)
from repro.constraints.constraint import (
    Constraint,
    ContainmentConstraint,
    EqualityConstraint,
)
from repro.constraints.dependencies import key_constraint
from repro.evolution.config import SimulatorConfig
from repro.evolution.model import EditStep, RelationNamer, SchemaState, SimulatedRelation
from repro.exceptions import SimulatorError

__all__ = ["Primitive", "PRIMITIVES", "primitive_names", "get_primitive"]


@dataclass(frozen=True)
class Primitive:
    """A schema-evolution primitive: applicability test plus application function."""

    name: str
    description: str
    applicable: Callable[[SchemaState, SimulatorConfig], bool]
    apply: Callable[[SchemaState, random.Random, RelationNamer, SimulatorConfig], EditStep]


def _new_relation(
    namer: RelationNamer,
    arity: int,
    rng: random.Random,
    config: SimulatorConfig,
    created_by: str,
    key: Optional[Tuple[int, ...]] = "inherit-none",
) -> SimulatedRelation:
    """Create a fresh relation, possibly with a random key when keys are enabled."""
    if key == "inherit-none":
        key = None
        if config.keys_enabled and arity >= 2 and rng.random() < config.keyed_probability:
            size = rng.randint(config.min_key_size, min(config.max_key_size, arity - 1))
            key = tuple(range(size))
    return SimulatedRelation(namer.fresh(), arity, key, created_by)


def _key_constraints(
    relations: Sequence[SimulatedRelation], config: SimulatorConfig
) -> List[Constraint]:
    """Key constraints (active-domain encoding) for keyed produced relations."""
    if not (config.keys_enabled and config.emit_key_constraints):
        return []
    constraints: List[Constraint] = []
    for relation in relations:
        if relation.key and len(relation.key) < relation.arity:
            constraints.append(
                key_constraint(Relation(relation.name, relation.arity), relation.key)
            )
    return constraints


def _ref(relation: SimulatedRelation) -> Relation:
    return Relation(relation.name, relation.arity)


def _make_step(
    name: str,
    state: SchemaState,
    consumed: Sequence[SimulatedRelation],
    produced: Sequence[SimulatedRelation],
    constraints: Sequence[Constraint],
    config: SimulatorConfig,
) -> EditStep:
    constraints = list(constraints) + _key_constraints(produced, config)
    return EditStep(
        primitive=name,
        consumed=tuple(consumed),
        produced=tuple(produced),
        constraints=tuple(constraints),
        before=state,
        after=state.applying(consumed, produced),
    )


def _pick_relation(
    state: SchemaState,
    rng: random.Random,
    predicate: Callable[[SimulatedRelation], bool] = lambda r: True,
) -> SimulatedRelation:
    candidates = [relation for relation in state.relations if predicate(relation)]
    if not candidates:
        raise SimulatorError("no applicable relation for this primitive")
    return rng.choice(candidates)


# ---------------------------------------------------------------------------
# AR / DR — add and drop a relation
# ---------------------------------------------------------------------------


def _ar_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return True


def _ar_apply(
    state: SchemaState, rng: random.Random, namer: RelationNamer, config: SimulatorConfig
) -> EditStep:
    arity = rng.randint(config.min_arity, config.max_arity)
    produced = _new_relation(namer, arity, rng, config, "AR")
    return _make_step("AR", state, [], [produced], [], config)


def _dr_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return len(state) > 1


def _dr_apply(
    state: SchemaState, rng: random.Random, namer: RelationNamer, config: SimulatorConfig
) -> EditStep:
    victim = _pick_relation(state, rng)
    return _make_step("DR", state, [victim], [], [], config)


# ---------------------------------------------------------------------------
# AA / DA — add and drop an attribute
# ---------------------------------------------------------------------------


def _aa_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return any(relation.arity < config.max_arity for relation in state.relations)


def _aa_apply(
    state: SchemaState, rng: random.Random, namer: RelationNamer, config: SimulatorConfig
) -> EditStep:
    source = _pick_relation(state, rng, lambda r: r.arity < config.max_arity)
    produced = SimulatedRelation(
        namer.fresh(), source.arity + 1, source.key, created_by="AA"
    )
    constraint = EqualityConstraint(
        _ref(source), project(_ref(produced), range(source.arity))
    )
    return _make_step("AA", state, [source], [produced], [constraint], config)


def _da_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return any(len(relation.non_key_columns) >= 1 and relation.arity >= 2 for relation in state.relations)


def _da_apply(
    state: SchemaState, rng: random.Random, namer: RelationNamer, config: SimulatorConfig
) -> EditStep:
    source = _pick_relation(
        state, rng, lambda r: len(r.non_key_columns) >= 1 and r.arity >= 2
    )
    dropped = rng.choice(source.non_key_columns)
    kept = tuple(i for i in range(source.arity) if i != dropped)
    new_key = None
    if source.key is not None:
        new_key = tuple(sorted(kept.index(i) for i in source.key))
    produced = SimulatedRelation(namer.fresh(), len(kept), new_key, created_by="DA")
    constraint = EqualityConstraint(project(_ref(source), kept), _ref(produced))
    return _make_step("DA", state, [source], [produced], [constraint], config)


# ---------------------------------------------------------------------------
# D / Df / Db — add an attribute with a default value
# ---------------------------------------------------------------------------


def _default_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return any(relation.arity < config.max_arity for relation in state.relations)


def _default_apply(
    name: str,
    state: SchemaState,
    rng: random.Random,
    namer: RelationNamer,
    config: SimulatorConfig,
) -> EditStep:
    source = _pick_relation(state, rng, lambda r: r.arity < config.max_arity)
    constant = config.constant(rng.randrange(config.constant_pool_size))
    produced = SimulatedRelation(
        namer.fresh(), source.arity + 1, source.key, created_by=name
    )
    constraints: List[Constraint] = []
    forward = EqualityConstraint(
        CrossProduct(_ref(source), ConstantRelation.singleton(constant)), _ref(produced)
    )
    backward = EqualityConstraint(
        _ref(source),
        project(
            Selection(_ref(produced), equals_const(source.arity, constant)),
            range(source.arity),
        ),
    )
    if name in ("Df", "D"):
        constraints.append(forward)
    if name in ("Db", "D"):
        constraints.append(backward)
    return _make_step(name, state, [source], [produced], constraints, config)


# ---------------------------------------------------------------------------
# H / Hf / Hb — horizontal partitioning
# ---------------------------------------------------------------------------


def _horizontal_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return len(state) >= 1


def _horizontal_apply(
    name: str,
    state: SchemaState,
    rng: random.Random,
    namer: RelationNamer,
    config: SimulatorConfig,
) -> EditStep:
    source = _pick_relation(state, rng)
    column = rng.randrange(source.arity)
    first_index = rng.randrange(config.constant_pool_size)
    second_index = (first_index + 1 + rng.randrange(config.constant_pool_size - 1)) % (
        config.constant_pool_size
    )
    constant_s = config.constant(first_index)
    constant_t = config.constant(second_index)
    part_s = SimulatedRelation(namer.fresh(), source.arity, source.key, created_by=name)
    part_t = SimulatedRelation(namer.fresh(), source.arity, source.key, created_by=name)
    constraints: List[Constraint] = []
    if name in ("Hf", "H"):
        constraints.append(
            EqualityConstraint(Selection(_ref(source), equals_const(column, constant_s)), _ref(part_s))
        )
        constraints.append(
            EqualityConstraint(Selection(_ref(source), equals_const(column, constant_t)), _ref(part_t))
        )
    if name in ("Hb", "H"):
        constraints.append(
            EqualityConstraint(_ref(source), Union(_ref(part_s), _ref(part_t)))
        )
    return _make_step(name, state, [source], [part_s, part_t], constraints, config)


# ---------------------------------------------------------------------------
# V / Vf / Vb — vertical partitioning (requires a keyed input relation)
# N / Nf / Nb — normalization (vertical partitioning plus an inclusion)
# ---------------------------------------------------------------------------


def _vertical_candidate(relation: SimulatedRelation) -> bool:
    """A keyed relation whose key is a prefix and which has at least two non-key columns."""
    if relation.key is None:
        return False
    if relation.key != tuple(range(len(relation.key))):
        return False
    return relation.arity - len(relation.key) >= 2


def _vertical_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return config.keys_enabled and any(_vertical_candidate(r) for r in state.relations)


def _normalization_candidate(relation: SimulatedRelation) -> bool:
    """Normalization only needs enough columns to split (keys are not required)."""
    return relation.arity >= 3


def _normalization_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return any(_normalization_candidate(r) for r in state.relations)


def _split_apply(
    name: str,
    state: SchemaState,
    rng: random.Random,
    namer: RelationNamer,
    config: SimulatorConfig,
) -> EditStep:
    is_normalization = name.startswith("N")
    if is_normalization:
        source = _pick_relation(state, rng, _normalization_candidate)
        key_is_prefix = source.key is not None and source.key == tuple(range(len(source.key)))
        if key_is_prefix and source.arity - len(source.key) >= 2:
            shared = source.key
        else:
            # Fall back to splitting on the first column (arity >= 3 guarantees
            # at least two remaining columns to distribute).
            shared = (0,)
    else:
        source = _pick_relation(state, rng, _vertical_candidate)
        shared = source.key
    shared = tuple(shared)
    rest = [i for i in range(source.arity) if i not in shared]
    if len(rest) < 2:
        raise SimulatorError(f"{name}: relation {source.name!r} has too few columns to split")
    split_point = rng.randint(1, len(rest) - 1)
    group_b = tuple(rest[:split_point])
    group_c = tuple(rest[split_point:])
    key = tuple(range(len(shared)))
    part_s = SimulatedRelation(
        namer.fresh(), len(shared) + len(group_b), key if config.keys_enabled and source.key else None, created_by=name
    )
    part_t = SimulatedRelation(
        namer.fresh(), len(shared) + len(group_c), key if config.keys_enabled and source.key else None, created_by=name
    )
    source_ref = _ref(source)
    constraints: List[Constraint] = []
    if name in ("Vf", "V", "Nf", "N"):
        constraints.append(
            EqualityConstraint(project(source_ref, shared + group_b), _ref(part_s))
        )
        constraints.append(
            EqualityConstraint(project(source_ref, shared + group_c), _ref(part_t))
        )
    if name in ("Vb", "V", "Nb", "N"):
        joined = natural_key_join(_ref(part_s), _ref(part_t), len(shared))
        # The join lists the shared columns, then S's payload, then T's payload;
        # permute it back into the source's original column order.
        order_of = {column: position for position, column in enumerate(shared + group_b + group_c)}
        constraints.append(
            EqualityConstraint(source_ref, project(joined, [order_of[i] for i in range(source.arity)]))
        )
    if is_normalization:
        constraints.append(
            ContainmentConstraint(
                project(_ref(part_t), range(len(shared))),
                project(_ref(part_s), range(len(shared))),
            )
        )
    return _make_step(name, state, [source], [part_s, part_t], constraints, config)


# ---------------------------------------------------------------------------
# Sub / Sup — open-world (inclusion) primitives
# ---------------------------------------------------------------------------


def _inclusion_applicable(state: SchemaState, config: SimulatorConfig) -> bool:
    return len(state) >= 1


def _inclusion_apply(
    name: str,
    state: SchemaState,
    rng: random.Random,
    namer: RelationNamer,
    config: SimulatorConfig,
) -> EditStep:
    source = _pick_relation(state, rng)
    produced = SimulatedRelation(namer.fresh(), source.arity, source.key, created_by=name)
    if name == "Sub":
        constraint = ContainmentConstraint(_ref(source), _ref(produced))
    else:
        constraint = ContainmentConstraint(_ref(produced), _ref(source))
    return _make_step(name, state, [source], [produced], [constraint], config)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _variant(name: str, apply_fn, applicable_fn, description: str) -> Primitive:
    return Primitive(
        name=name,
        description=description,
        applicable=applicable_fn,
        apply=lambda state, rng, namer, config, _name=name: apply_fn(
            _name, state, rng, namer, config
        ),
    )


PRIMITIVES: Dict[str, Primitive] = {
    "AR": Primitive("AR", "add a new relation", _ar_applicable, _ar_apply),
    "DR": Primitive("DR", "drop a relation", _dr_applicable, _dr_apply),
    "AA": Primitive("AA", "add an attribute", _aa_applicable, _aa_apply),
    "DA": Primitive("DA", "drop an attribute", _da_applicable, _da_apply),
    "Df": _variant("Df", _default_apply, _default_applicable, "add attribute with default (forward)"),
    "Db": _variant("Db", _default_apply, _default_applicable, "add attribute with default (backward)"),
    "D": _variant("D", _default_apply, _default_applicable, "add attribute with default (both)"),
    "Hf": _variant("Hf", _horizontal_apply, _horizontal_applicable, "horizontal partitioning (forward)"),
    "Hb": _variant("Hb", _horizontal_apply, _horizontal_applicable, "horizontal partitioning (backward)"),
    "H": _variant("H", _horizontal_apply, _horizontal_applicable, "horizontal partitioning (both)"),
    "Vf": _variant("Vf", _split_apply, _vertical_applicable, "vertical partitioning (forward)"),
    "Vb": _variant("Vb", _split_apply, _vertical_applicable, "vertical partitioning (backward)"),
    "V": _variant("V", _split_apply, _vertical_applicable, "vertical partitioning (both)"),
    "Nf": _variant("Nf", _split_apply, _normalization_applicable, "normalization (forward)"),
    "Nb": _variant("Nb", _split_apply, _normalization_applicable, "normalization (backward)"),
    "N": _variant("N", _split_apply, _normalization_applicable, "normalization (both)"),
    "Sub": _variant("Sub", _inclusion_apply, _inclusion_applicable, "subset (open world)"),
    "Sup": _variant("Sup", _inclusion_apply, _inclusion_applicable, "superset (open world)"),
}


def primitive_names() -> Tuple[str, ...]:
    """All primitive names, in Figure 1 order."""
    return tuple(PRIMITIVES)


def get_primitive(name: str) -> Primitive:
    """Look up a primitive by name."""
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise SimulatorError(f"unknown primitive {name!r}") from None
