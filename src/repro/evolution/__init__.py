"""The schema-evolution simulator and scenario drivers of the paper's evaluation."""

from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import ALL_PRIMITIVES, INCLUSION_PRIMITIVES, EventVector
from repro.evolution.model import EditStep, RelationNamer, SchemaState, SimulatedRelation
from repro.evolution.primitives import PRIMITIVES, get_primitive, primitive_names
from repro.evolution.scenarios import (
    EditCompositionRecord,
    EditingScenarioResult,
    ReconciliationRecord,
    run_editing_scenario,
    run_reconciliation_scenario,
)
from repro.evolution.simulator import SchemaEvolutionSimulator

__all__ = [
    "SimulatorConfig",
    "EventVector",
    "ALL_PRIMITIVES",
    "INCLUSION_PRIMITIVES",
    "SimulatedRelation",
    "SchemaState",
    "EditStep",
    "RelationNamer",
    "PRIMITIVES",
    "primitive_names",
    "get_primitive",
    "SchemaEvolutionSimulator",
    "EditCompositionRecord",
    "EditingScenarioResult",
    "run_editing_scenario",
    "ReconciliationRecord",
    "run_reconciliation_scenario",
    "run_editing_scenario",
]
