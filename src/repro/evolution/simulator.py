"""The schema-evolution simulator (paper Section 4.1).

The simulator is "driven by a weighted set of schema evolution primitives";
every call to :meth:`SchemaEvolutionSimulator.apply_random_edit` draws a
primitive from the event vector, applies it to a randomly chosen relation of
the current schema, and returns the :class:`~repro.evolution.model.EditStep`
describing the produced relations and mapping constraints.

All randomness flows through a caller-supplied seed, so edit sequences are
fully reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.model import EditStep, RelationNamer, SchemaState, SimulatedRelation
from repro.evolution.primitives import PRIMITIVES, get_primitive
from repro.exceptions import SimulatorError

__all__ = ["SchemaEvolutionSimulator"]


class SchemaEvolutionSimulator:
    """Generates random schemas and random edit sequences over them."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[SimulatorConfig] = None,
        event_vector: Optional[EventVector] = None,
        name_prefix: str = "R",
    ):
        self.config = config or SimulatorConfig()
        self.event_vector = event_vector or EventVector.default()
        self._rng = random.Random(seed)
        self._namer = RelationNamer(prefix=name_prefix)
        # The event vector is immutable: resolve the positively-weighted
        # primitives (name, implementation, weight) once instead of probing
        # every primitive's weight on every edit.
        self._active_primitives = [
            (name, primitive, self.event_vector.weight_of(name))
            for name, primitive in PRIMITIVES.items()
            if self.event_vector.weight_of(name) > 0
        ]

    # -- schema generation ---------------------------------------------------------

    def random_relation(self, created_by: str = "initial") -> SimulatedRelation:
        """Create one random relation according to the configuration."""
        arity = self._rng.randint(self.config.min_arity, self.config.max_arity)
        key = None
        if (
            self.config.keys_enabled
            and arity >= 2
            and self._rng.random() < self.config.keyed_probability
        ):
            size = self._rng.randint(
                self.config.min_key_size, min(self.config.max_key_size, arity - 1)
            )
            key = tuple(range(size))
        return SimulatedRelation(self._namer.fresh(), arity, key, created_by)

    def random_schema(self, size: int = 30) -> SchemaState:
        """Create a random initial schema with ``size`` relations (paper default: 30)."""
        if size < 1:
            raise SimulatorError("schema size must be positive")
        return SchemaState(tuple(self.random_relation() for _ in range(size)))

    # -- edit generation -------------------------------------------------------------

    def applicable_primitives(self, state: SchemaState) -> List[str]:
        """Names of primitives that can be applied to the current schema."""
        return [
            name
            for name, primitive, _ in self._active_primitives
            if primitive.applicable(state, self.config)
        ]

    def choose_primitive(self, state: SchemaState) -> str:
        """Draw an applicable primitive according to the event vector's weights."""
        candidates: List[str] = []
        weights: List[float] = []
        for name, primitive, weight in self._active_primitives:
            if primitive.applicable(state, self.config):
                candidates.append(name)
                weights.append(weight)
        if not candidates:
            raise SimulatorError("no primitive is applicable to the current schema")
        return self._rng.choices(candidates, weights=weights, k=1)[0]

    def apply_primitive(self, state: SchemaState, name: str) -> EditStep:
        """Apply a specific primitive (raises if it is not applicable)."""
        primitive = get_primitive(name)
        if not primitive.applicable(state, self.config):
            raise SimulatorError(f"primitive {name!r} is not applicable to the current schema")
        return primitive.apply(state, self._rng, self._namer, self.config)

    def apply_random_edit(self, state: SchemaState) -> EditStep:
        """Apply one randomly chosen applicable primitive."""
        return self.apply_primitive(state, self.choose_primitive(state))

    def edit_sequence(self, state: SchemaState, length: int) -> List[EditStep]:
        """Apply ``length`` random edits, returning the list of steps (no composition)."""
        steps: List[EditStep] = []
        current = state
        for _ in range(length):
            step = self.apply_random_edit(current)
            steps.append(step)
            current = step.after
        return steps
