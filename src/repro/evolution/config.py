"""Configuration of the schema-evolution simulator."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import SimulatorError

__all__ = ["SimulatorConfig"]


@dataclass(frozen=True)
class SimulatorConfig:
    """Parameters of the simulator, with the paper's defaults (Section 4.1).

    Attributes
    ----------
    keys_enabled:
        Whether relations may carry keys (the 'keys' configuration).  Keys are
        required by the vertical-partitioning primitives and, when enabled,
        key constraints of produced relations are added to the mappings.
    min_arity / max_arity:
        Arity range of freshly created relations (paper: 2 and 10).
    min_key_size / max_key_size:
        Key size range for keyed relations (paper: 1 and 3).
    keyed_probability:
        Probability that a newly created relation receives a key (when keys
        are enabled).
    constant_pool_size:
        Size of the pool from which the constants of the D and H primitives
        are drawn (paper: 10).
    emit_key_constraints:
        Whether to add the active-domain encoding of key constraints for the
        relations produced by each primitive (only meaningful with keys).
    """

    keys_enabled: bool = False
    min_arity: int = 2
    max_arity: int = 10
    min_key_size: int = 1
    max_key_size: int = 3
    keyed_probability: float = 0.7
    constant_pool_size: int = 10
    emit_key_constraints: bool = True

    def __post_init__(self) -> None:
        if self.min_arity < 1 or self.max_arity < self.min_arity:
            raise SimulatorError("invalid arity range")
        if self.min_key_size < 1 or self.max_key_size < self.min_key_size:
            raise SimulatorError("invalid key size range")
        if not 0.0 <= self.keyed_probability <= 1.0:
            raise SimulatorError("keyed_probability must be in [0, 1]")
        if self.constant_pool_size < 2:
            raise SimulatorError("constant pool must contain at least two constants")

    @classmethod
    def no_keys(cls) -> "SimulatorConfig":
        """The 'no keys' configuration of the experiments."""
        return cls(keys_enabled=False)

    @classmethod
    def with_keys(cls) -> "SimulatorConfig":
        """The 'keys' configuration of the experiments."""
        return cls(keys_enabled=True)

    def constant(self, index: int) -> str:
        """Return the ``index``-th constant of the pool (wrapping around)."""
        return f"c{index % self.constant_pool_size}"
