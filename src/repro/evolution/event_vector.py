"""Event vectors: the weighted mix of schema-evolution primitives.

"An event vector specifies the proportions of primitives of a certain kind
appearing in an edit sequence."  The paper assumes all primitives are applied
with the same frequency, except adding attributes (AA, twice as frequent) and
dropping relations (DR, five times less frequent); that is the *Default*
vector below.  The extended technical report describes further vectors; we
provide a few plausible ones plus helpers to build custom vectors (used by the
Figure 5 experiment, which raises the proportion of inclusion primitives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.exceptions import SimulatorError

__all__ = ["ALL_PRIMITIVES", "INCLUSION_PRIMITIVES", "EventVector"]


#: Every primitive of Figure 1 (forward, backward and combined variants).
ALL_PRIMITIVES: Tuple[str, ...] = (
    "AR",
    "DR",
    "AA",
    "DA",
    "Df",
    "Db",
    "D",
    "Hf",
    "Hb",
    "H",
    "Vf",
    "Vb",
    "V",
    "Nf",
    "Nb",
    "N",
    "Sub",
    "Sup",
)

#: The open-world primitives producing inclusion constraints.
INCLUSION_PRIMITIVES: Tuple[str, ...] = ("Sub", "Sup")


@dataclass(frozen=True)
class EventVector:
    """A normalized weight per primitive."""

    weights: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, weight in self.weights:
            if name not in ALL_PRIMITIVES:
                raise SimulatorError(f"unknown primitive {name!r} in event vector")
            if name in seen:
                raise SimulatorError(f"duplicate primitive {name!r} in event vector")
            if weight < 0:
                raise SimulatorError(f"negative weight for primitive {name!r}")
            seen.add(name)
        if not any(weight > 0 for _, weight in self.weights):
            raise SimulatorError("event vector must have at least one positive weight")

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_mapping(cls, weights: Mapping[str, float]) -> "EventVector":
        return cls(tuple(weights.items()))

    @classmethod
    def uniform(cls, primitives: Iterable[str] = ALL_PRIMITIVES) -> "EventVector":
        """Equal weight for the given primitives."""
        return cls(tuple((name, 1.0) for name in primitives))

    @classmethod
    def default(cls) -> "EventVector":
        """The paper's Default vector: uniform, AA twice as frequent, DR 1/5."""
        weights = {name: 1.0 for name in ALL_PRIMITIVES}
        weights["AA"] = 2.0
        weights["DR"] = 0.2
        return cls.from_mapping(weights)

    @classmethod
    def structural_only(cls) -> "EventVector":
        """A vector without the open-world (inclusion) primitives."""
        weights = {name: 1.0 for name in ALL_PRIMITIVES if name not in INCLUSION_PRIMITIVES}
        weights["AA"] = 2.0
        weights["DR"] = 0.2
        return cls.from_mapping(weights)

    @classmethod
    def partition_heavy(cls) -> "EventVector":
        """A vector biased towards the partitioning primitives (H*, V*, N*)."""
        weights = {name: 1.0 for name in ALL_PRIMITIVES}
        for name in ("Hf", "Hb", "H", "Vf", "Vb", "V", "Nf", "Nb", "N"):
            weights[name] = 2.0
        weights["DR"] = 0.2
        return cls.from_mapping(weights)

    def with_inclusion_proportion(self, proportion: float) -> "EventVector":
        """Return a copy where Sub and Sup together receive ``proportion`` of the mass.

        This is how the Figure 5 experiment sweeps the share of inclusion
        edits from 0 to 20%: the remaining primitives keep their relative
        proportions and are rescaled to ``1 - proportion``.
        """
        if not 0.0 <= proportion < 1.0:
            raise SimulatorError("inclusion proportion must be in [0, 1)")
        base = {name: weight for name, weight in self.weights if name not in INCLUSION_PRIMITIVES}
        base_total = sum(base.values())
        if base_total <= 0:
            raise SimulatorError("cannot rescale an event vector with no structural primitives")
        scale = (1.0 - proportion) / base_total
        weights: Dict[str, float] = {name: weight * scale for name, weight in base.items()}
        for name in INCLUSION_PRIMITIVES:
            weights[name] = proportion / len(INCLUSION_PRIMITIVES)
        return EventVector.from_mapping(weights)

    # -- queries --------------------------------------------------------------------

    def _lookup(self) -> Dict[str, float]:
        # Cached internal table: the simulator probes weights for every
        # primitive on every edit, and the vector is immutable.
        try:
            return self._weights_dict
        except AttributeError:
            object.__setattr__(self, "_weights_dict", dict(self.weights))
            return self._weights_dict

    def as_dict(self) -> Dict[str, float]:
        # A fresh copy: callers may mutate their dict freely.
        return dict(self._lookup())

    def weight_of(self, primitive: str) -> float:
        return self._lookup().get(primitive, 0.0)

    def total_weight(self) -> float:
        return sum(weight for _, weight in self.weights)

    def proportion_of(self, primitive: str) -> float:
        """The normalized share of one primitive."""
        total = self.total_weight()
        return self.weight_of(primitive) / total if total else 0.0

    def inclusion_proportion(self) -> float:
        """The combined share of the inclusion primitives Sub and Sup."""
        return sum(self.proportion_of(name) for name in INCLUSION_PRIMITIVES)
