"""Scenario drivers: schema editing and schema reconciliation (paper Section 4.2).

*Schema editing* mimics a designer applying a sequence of edits: after every
edit, the mapping from the original schema to the current schema is composed
with the edit's mapping, i.e. the symbols the edit consumed (plus any symbols
left over from earlier, incompletely composed edits) are eliminated from the
accumulated constraint set.

*Schema reconciliation* evolves one original schema along two independent edit
sequences and then composes the two resulting mappings pairwise, eliminating
the original schema's symbols — the intermediate signature of Figures 6 and 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.interning import ExpressionCache

from repro.compose.config import ComposerConfig
from repro.compose.eliminate import eliminate
from repro.compose.composer import compose
from repro.compose.result import CompositionResult
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.dependencies import key_constraints_for
from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.model import SchemaState
from repro.evolution.simulator import SchemaEvolutionSimulator
from repro.mapping.composition_problem import CompositionProblem
from repro.schema.signature import RelationSchema, Signature

__all__ = [
    "EditCompositionRecord",
    "EditingScenarioResult",
    "run_editing_scenario",
    "ReconciliationRecord",
    "run_reconciliation_scenario",
]


# ---------------------------------------------------------------------------
# Schema editing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EditCompositionRecord:
    """Statistics of the composition triggered by a single edit."""

    edit_index: int
    primitive: str
    consumed_symbols: Tuple[str, ...]
    consumed_eliminated: Tuple[str, ...]
    retried_symbols: Tuple[str, ...]
    retried_eliminated: Tuple[str, ...]
    duration_seconds: float
    constraint_count: int
    operator_count: int

    @property
    def attempted_count(self) -> int:
        return len(self.consumed_symbols) + len(self.retried_symbols)

    @property
    def eliminated_count(self) -> int:
        return len(self.consumed_eliminated) + len(self.retried_eliminated)

    @property
    def fraction_eliminated(self) -> float:
        """Fraction of this edit's consumed symbols that were eliminated."""
        if not self.consumed_symbols:
            return 1.0
        return len(self.consumed_eliminated) / len(self.consumed_symbols)


@dataclass
class EditingScenarioResult:
    """The outcome of one schema-editing run (a sequence of edits + compositions)."""

    original_schema: SchemaState
    final_schema: SchemaState
    constraints: ConstraintSet
    records: List[EditCompositionRecord] = field(default_factory=list)
    leftover_symbols: Dict[str, int] = field(default_factory=dict)
    symbol_creator: Dict[str, str] = field(default_factory=dict)

    # -- aggregate statistics ------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """``True`` iff no intermediate symbol survived any composition."""
        return not self.leftover_symbols

    def total_duration(self) -> float:
        """Total composition time of the run (seconds)."""
        return sum(record.duration_seconds for record in self.records)

    def total_fraction_eliminated(self) -> float:
        """Fraction of all consumed symbols eliminated over the whole run."""
        attempted = sum(len(record.consumed_symbols) for record in self.records)
        eliminated = sum(len(record.consumed_eliminated) for record in self.records)
        return eliminated / attempted if attempted else 1.0

    def fraction_eliminated_by_primitive(self) -> Dict[str, float]:
        """Per-primitive elimination success (the quantity plotted in Figure 2)."""
        attempted: Dict[str, int] = {}
        eliminated: Dict[str, int] = {}
        for record in self.records:
            if not record.consumed_symbols:
                continue
            attempted[record.primitive] = attempted.get(record.primitive, 0) + len(
                record.consumed_symbols
            )
            eliminated[record.primitive] = eliminated.get(record.primitive, 0) + len(
                record.consumed_eliminated
            )
        return {
            primitive: eliminated.get(primitive, 0) / count
            for primitive, count in attempted.items()
        }

    def time_per_edit_by_primitive(self) -> Dict[str, float]:
        """Per-primitive mean composition time in seconds (Figure 3)."""
        durations: Dict[str, List[float]] = {}
        for record in self.records:
            durations.setdefault(record.primitive, []).append(record.duration_seconds)
        return {
            primitive: sum(values) / len(values) for primitive, values in durations.items()
        }

    def fraction_eliminated_by_creator(self) -> Dict[str, float]:
        """Elimination success grouped by the primitive that *created* each symbol.

        An alternative reading of Figure 2 ("the symbols introduced by some
        primitives are easier to eliminate than others"): a symbol created by
        primitive P counts towards P's bar when it is later consumed.
        """
        attempted: Dict[str, int] = {}
        eliminated: Dict[str, int] = {}
        for record in self.records:
            for symbol in record.consumed_symbols:
                creator = self.symbol_creator.get(symbol, "initial")
                attempted[creator] = attempted.get(creator, 0) + 1
                if symbol in record.consumed_eliminated:
                    eliminated[creator] = eliminated.get(creator, 0) + 1
        return {
            creator: eliminated.get(creator, 0) / count for creator, count in attempted.items()
        }


def run_editing_scenario(
    schema_size: int = 30,
    num_edits: int = 100,
    seed: int = 0,
    simulator_config: Optional[SimulatorConfig] = None,
    composer_config: Optional[ComposerConfig] = None,
    event_vector: Optional[EventVector] = None,
    simulator: Optional[SchemaEvolutionSimulator] = None,
    initial_schema: Optional[SchemaState] = None,
    retry_leftovers: bool = True,
    cache: Optional["ExpressionCache"] = None,
) -> EditingScenarioResult:
    """Run one schema-editing scenario: ``num_edits`` edits with a composition after each.

    Parameters mirror the paper's defaults (schema size 30, 100 edits per run,
    Default event vector).  ``simulator`` / ``initial_schema`` allow callers
    (notably the reconciliation scenario) to reuse a pre-built starting point.
    ``cache`` activates one shared
    :class:`~repro.algebra.interning.ExpressionCache` for the whole run —
    every per-edit elimination, constraint-set assembly included — so the
    retries the scenario performs after each edit hit the same memo tables.
    When omitted, whatever cache is already active (e.g. the batch engine's)
    is used.
    """
    if cache is not None:
        from repro.algebra.interning import shared_expression_cache

        with shared_expression_cache(cache):
            return run_editing_scenario(
                schema_size=schema_size,
                num_edits=num_edits,
                seed=seed,
                simulator_config=simulator_config,
                composer_config=composer_config,
                event_vector=event_vector,
                simulator=simulator,
                initial_schema=initial_schema,
                retry_leftovers=retry_leftovers,
            )
    simulator_config = simulator_config or SimulatorConfig()
    composer_config = composer_config or ComposerConfig()
    simulator = simulator or SchemaEvolutionSimulator(
        seed=seed, config=simulator_config, event_vector=event_vector
    )
    state = initial_schema if initial_schema is not None else simulator.random_schema(schema_size)
    original_schema = state

    constraints = ConstraintSet()
    if simulator_config.keys_enabled and simulator_config.emit_key_constraints:
        constraints = ConstraintSet(key_constraints_for(state.signature()))

    arities: Dict[str, int] = {r.name: r.arity for r in state.relations}
    creators: Dict[str, str] = {r.name: r.created_by for r in state.relations}
    leftovers: Dict[str, int] = {}
    records: List[EditCompositionRecord] = []

    result = EditingScenarioResult(
        original_schema=original_schema,
        final_schema=state,
        constraints=constraints,
        symbol_creator=creators,
    )

    for edit_index in range(num_edits):
        step = simulator.apply_random_edit(state)
        state = step.after
        for relation in step.produced:
            arities[relation.name] = relation.arity
            creators[relation.name] = relation.created_by
        constraints = constraints.union(ConstraintSet(step.constraints))

        baseline = max(constraints.operator_count(), 1)
        started = time.perf_counter()

        consumed_eliminated: List[str] = []
        for symbol in step.consumed_names:
            constraints, outcome = eliminate(
                constraints, symbol, arities[symbol], composer_config, baseline
            )
            if outcome.success:
                consumed_eliminated.append(symbol)
            else:
                leftovers[symbol] = arities[symbol]

        retried: List[str] = []
        retried_eliminated: List[str] = []
        if retry_leftovers:
            for symbol in [name for name in leftovers if name not in step.consumed_names]:
                if not constraints.mentions(symbol):
                    # The symbol dropped out of the constraints entirely.
                    retried.append(symbol)
                    retried_eliminated.append(symbol)
                    del leftovers[symbol]
                    continue
                retried.append(symbol)
                constraints, outcome = eliminate(
                    constraints, symbol, leftovers[symbol], composer_config, baseline
                )
                if outcome.success:
                    retried_eliminated.append(symbol)
                    del leftovers[symbol]

        duration = time.perf_counter() - started
        records.append(
            EditCompositionRecord(
                edit_index=edit_index,
                primitive=step.primitive,
                consumed_symbols=step.consumed_names,
                consumed_eliminated=tuple(consumed_eliminated),
                retried_symbols=tuple(retried),
                retried_eliminated=tuple(retried_eliminated),
                duration_seconds=duration,
                constraint_count=len(constraints),
                operator_count=constraints.operator_count(),
            )
        )

    result.final_schema = state
    result.constraints = constraints
    result.records = records
    result.leftover_symbols = dict(leftovers)
    result.symbol_creator = creators
    return result


# ---------------------------------------------------------------------------
# Schema reconciliation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReconciliationRecord:
    """The outcome of one schema-reconciliation task (Figures 6 and 7)."""

    schema_size: int
    num_edits: int
    fraction_eliminated: float
    duration_seconds: float
    attempted_symbols: int
    eliminated_symbols: int
    branch_a_complete: bool
    branch_b_complete: bool


def _branch_outer_signature(
    branch: EditingScenarioResult, original_names: frozenset
) -> Signature:
    """Relations of a branch's final schema that are not inherited from the original."""
    return Signature(
        relation.to_schema()
        for relation in branch.final_schema.relations
        if relation.name not in original_names
    )


def _leftover_signature(
    branch: EditingScenarioResult, exclude: frozenset
) -> List[RelationSchema]:
    """Leftover branch symbols, excluding names already covered elsewhere."""
    return [
        RelationSchema(name, arity)
        for name, arity in branch.leftover_symbols.items()
        if name not in exclude
    ]


def run_reconciliation_scenario(
    schema_size: int = 30,
    num_edits: int = 100,
    seed: int = 0,
    simulator_config: Optional[SimulatorConfig] = None,
    composer_config: Optional[ComposerConfig] = None,
    event_vector: Optional[EventVector] = None,
    max_branch_attempts: int = 3,
    cache: Optional["ExpressionCache"] = None,
) -> Tuple[ReconciliationRecord, CompositionResult]:
    """Run one schema-reconciliation task.

    The original schema evolves along two independent edit sequences; the
    resulting mappings are composed pairwise, eliminating the original
    schema's symbols.  Branch generation is retried a few times to obtain
    first-order (fully composed) input mappings, as in the paper; if that
    fails, surviving branch symbols are added to the intermediate signature.
    ``cache`` activates one shared expression cache end-to-end: both branch
    runs, the assembly of the final :class:`CompositionProblem` and the
    composition itself all use the same memo tables.  When omitted, whatever
    cache is already active (e.g. the batch engine's) is used.
    """
    if cache is not None:
        from repro.algebra.interning import shared_expression_cache

        with shared_expression_cache(cache):
            return run_reconciliation_scenario(
                schema_size=schema_size,
                num_edits=num_edits,
                seed=seed,
                simulator_config=simulator_config,
                composer_config=composer_config,
                event_vector=event_vector,
                max_branch_attempts=max_branch_attempts,
            )
    simulator_config = simulator_config or SimulatorConfig()
    composer_config = composer_config or ComposerConfig()

    base_simulator = SchemaEvolutionSimulator(
        seed=seed, config=simulator_config, event_vector=event_vector, name_prefix="S"
    )
    original = base_simulator.random_schema(schema_size)
    original_names = frozenset(original.names())

    branches: List[EditingScenarioResult] = []
    for offset, prefix in enumerate(("A", "B")):
        branch: Optional[EditingScenarioResult] = None
        for attempt in range(max_branch_attempts):
            candidate = run_editing_scenario(
                schema_size=schema_size,
                num_edits=num_edits,
                simulator_config=simulator_config,
                composer_config=composer_config,
                event_vector=event_vector,
                simulator=SchemaEvolutionSimulator(
                    seed=seed * 1000 + offset * 100 + attempt,
                    config=simulator_config,
                    event_vector=event_vector,
                    name_prefix=prefix,
                ),
                initial_schema=original,
            )
            branch = candidate
            if candidate.is_complete:
                break
        branches.append(branch)
    branch_a, branch_b = branches

    sigma1 = _branch_outer_signature(branch_a, original_names)
    sigma3 = _branch_outer_signature(branch_b, original_names)
    leftover_a = _leftover_signature(branch_a, original_names)
    leftover_b = _leftover_signature(
        branch_b, original_names | {schema.name for schema in leftover_a}
    )
    sigma2 = Signature(
        [relation.to_schema() for relation in original.relations] + leftover_a + leftover_b
    )

    problem = CompositionProblem(
        sigma1=sigma1,
        sigma2=sigma2,
        sigma3=sigma3,
        sigma12=branch_a.constraints,
        sigma23=branch_b.constraints,
        name=f"reconciliation(size={schema_size}, edits={num_edits}, seed={seed})",
    )
    result = compose(problem, composer_config)

    record = ReconciliationRecord(
        schema_size=schema_size,
        num_edits=num_edits,
        fraction_eliminated=result.fraction_eliminated,
        duration_seconds=result.elapsed_seconds,
        attempted_symbols=len(result.outcomes),
        eliminated_symbols=len(result.eliminated_symbols),
        branch_a_complete=branch_a.is_complete,
        branch_b_complete=branch_b.is_complete,
    )
    return record, result
