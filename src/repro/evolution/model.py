"""Data model of the schema-evolution simulator.

The simulator (Section 4.1 of the paper) maintains an evolving schema and, for
every applied primitive, produces the constraints linking the consumed input
relation(s) to the produced output relation(s).  Relations keep their names
for as long as they exist; a primitive that transforms a relation *consumes*
it (the name disappears from the schema) and *produces* fresh relations with
new names.  Consumed relation symbols are exactly the intermediate symbols
that mapping composition must later eliminate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.constraints.constraint import Constraint
from repro.exceptions import SimulatorError
from repro.schema.signature import RelationSchema, Signature

__all__ = ["SimulatedRelation", "SchemaState", "EditStep", "RelationNamer"]


@dataclass(frozen=True)
class SimulatedRelation:
    """A relation tracked by the simulator: name, arity, optional key, provenance."""

    name: str
    arity: int
    key: Optional[Tuple[int, ...]] = None
    created_by: str = "initial"

    def __post_init__(self) -> None:
        if self.arity <= 0:
            raise SimulatorError(f"relation {self.name!r} must have positive arity")
        if self.key is not None:
            key = tuple(sorted(set(self.key)))
            object.__setattr__(self, "key", key)
            for index in key:
                if index < 0 or index >= self.arity:
                    raise SimulatorError(
                        f"key column #{index} out of range for {self.name!r} of arity {self.arity}"
                    )

    @property
    def has_key(self) -> bool:
        return self.key is not None

    @property
    def non_key_columns(self) -> Tuple[int, ...]:
        key = set(self.key or ())
        return tuple(i for i in range(self.arity) if i not in key)

    def to_schema(self) -> RelationSchema:
        return RelationSchema(self.name, self.arity, self.key)


class RelationNamer:
    """Allocates fresh relation names (``R1``, ``R2``, ... with an optional prefix)."""

    def __init__(self, prefix: str = "R"):
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self) -> str:
        return f"{self._prefix}{next(self._counter)}"


@dataclass(frozen=True)
class SchemaState:
    """The current schema of the simulation: an ordered set of relations."""

    relations: Tuple[SimulatedRelation, ...] = ()

    def __post_init__(self) -> None:
        names = [relation.name for relation in self.relations]
        if len(names) != len(set(names)):
            raise SimulatorError("schema state contains duplicate relation names")

    def __len__(self) -> int:
        return len(self.relations)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name()

    def get(self, name: str) -> SimulatedRelation:
        relation = self._by_name().get(name)
        if relation is None:
            raise SimulatorError(f"unknown relation {name!r}")
        return relation

    def _by_name(self) -> Dict[str, SimulatedRelation]:
        """Cached name → relation lookup (states are immutable)."""
        try:
            return self._by_name_cache
        except AttributeError:
            table = {relation.name: relation for relation in self.relations}
            object.__setattr__(self, "_by_name_cache", table)
            return table

    def names(self) -> Tuple[str, ...]:
        try:
            return self._names_cache
        except AttributeError:
            names = tuple(relation.name for relation in self.relations)
            object.__setattr__(self, "_names_cache", names)
            return names

    def signature(self) -> Signature:
        """The schema as a :class:`Signature`."""
        return Signature(relation.to_schema() for relation in self.relations)

    def applying(
        self,
        consumed: Iterable[SimulatedRelation],
        produced: Iterable[SimulatedRelation],
    ) -> "SchemaState":
        """Return the state after removing ``consumed`` and adding ``produced``."""
        consumed_names = {relation.name for relation in consumed}
        missing = consumed_names - self._by_name().keys()
        if missing:
            raise SimulatorError(f"cannot consume unknown relations: {sorted(missing)}")
        remaining = tuple(r for r in self.relations if r.name not in consumed_names)
        return SchemaState(remaining + tuple(produced))

    def keyed_relations(self) -> Tuple[SimulatedRelation, ...]:
        return tuple(relation for relation in self.relations if relation.has_key)


@dataclass(frozen=True)
class EditStep:
    """The outcome of applying one schema-evolution primitive.

    Attributes
    ----------
    primitive:
        Name of the applied primitive (``"AA"``, ``"Hf"``, ...).
    consumed:
        Relations removed from the schema (their symbols become intermediate).
    produced:
        Freshly created relations.
    constraints:
        Mapping constraints linking consumed and produced relations (and, when
        keys are enabled, key constraints of the produced relations).
    before / after:
        Schema states before and after the edit.
    """

    primitive: str
    consumed: Tuple[SimulatedRelation, ...]
    produced: Tuple[SimulatedRelation, ...]
    constraints: Tuple[Constraint, ...]
    before: SchemaState
    after: SchemaState

    @property
    def consumed_names(self) -> Tuple[str, ...]:
        return tuple(relation.name for relation in self.consumed)

    @property
    def produced_names(self) -> Tuple[str, ...]:
        return tuple(relation.name for relation in self.produced)

    def arities(self) -> Dict[str, int]:
        """Arity lookup for every relation the edit mentions."""
        table: Dict[str, int] = {}
        for relation in self.consumed + self.produced:
            table[relation.name] = relation.arity
        return table
