"""Database instances: concrete relation contents for evaluating expressions.

An :class:`Instance` maps relation names to finite sets of tuples.  Instances
give the library an executable semantics — they are how the test suite checks
that every rewriting performed by the composition algorithm is *sound* (the
paper's notion of constraint-set equivalence, Section 2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import SchemaError
from repro.schema.signature import Signature

__all__ = ["Instance"]

Row = Tuple[object, ...]


class Instance:
    """An immutable database instance: relation name → set of tuples."""

    def __init__(
        self,
        contents: Mapping[str, Iterable[Row]] = None,
        signature: Optional[Signature] = None,
    ):
        self._signature = signature
        self._contents: Dict[str, FrozenSet[Row]] = {}
        contents = contents or {}
        for name, rows in contents.items():
            frozen_rows = frozenset(tuple(row) for row in rows)
            widths = {len(row) for row in frozen_rows}
            if len(widths) > 1:
                raise SchemaError(f"relation {name!r} contains tuples of mixed widths {sorted(widths)}")
            if signature is not None and name in signature:
                expected = signature.arity_of(name)
                if widths and widths != {expected}:
                    raise SchemaError(
                        f"relation {name!r} has arity {expected} but contains tuples of width {widths.pop()}"
                    )
            self._contents[name] = frozen_rows
        if signature is not None:
            for name in signature:
                self._contents.setdefault(name, frozenset())

    # -- construction ---------------------------------------------------------

    @classmethod
    def empty(cls, signature: Signature) -> "Instance":
        """Return the all-empty instance over ``signature``."""
        return cls({}, signature)

    def updating(self, name: str, rows: Iterable[Row]) -> "Instance":
        """Return a copy with the contents of ``name`` replaced."""
        new_contents: Dict[str, Iterable[Row]] = dict(self._contents)
        new_contents[name] = frozenset(tuple(row) for row in rows)
        return Instance(new_contents, self._signature)

    def merged_with(self, other: "Instance") -> "Instance":
        """Return the union of two instances over disjoint relation names.

        This is the paper's ``(A, B)`` construction: take all relations of both
        databases together.  Overlapping names must have identical contents.
        """
        merged: Dict[str, FrozenSet[Row]] = dict(self._contents)
        for name, rows in other._contents.items():
            if name in merged and merged[name] != rows:
                raise SchemaError(f"instances disagree on relation {name!r}")
            merged[name] = rows
        signature = self._signature
        if signature is not None and other._signature is not None:
            signature = signature.union(other._signature)
        elif signature is None:
            signature = other._signature
        return Instance(merged, signature)

    def restricted_to(self, names: Iterable[str]) -> "Instance":
        """Return the instance restricted to the given relation names."""
        names = set(names)
        contents = {name: rows for name, rows in self._contents.items() if name in names}
        signature = self._signature.restricted_to(names) if self._signature else None
        return Instance(contents, signature)

    # -- access ---------------------------------------------------------------

    @property
    def signature(self) -> Optional[Signature]:
        """The signature this instance conforms to, if one was supplied."""
        return self._signature

    def relation(self, name: str) -> FrozenSet[Row]:
        """Return the contents of relation ``name`` (empty if absent)."""
        return self._contents.get(name, frozenset())

    def has_relation(self, name: str) -> bool:
        """Return ``True`` if the instance mentions relation ``name``."""
        return name in self._contents

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names the instance mentions."""
        return tuple(self._contents)

    def __iter__(self) -> Iterator[str]:
        return iter(self._contents)

    def __len__(self) -> int:
        return len(self._contents)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._contents == other._contents

    def __hash__(self) -> int:
        return hash(frozenset(self._contents.items()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}({len(rows)})" for name, rows in self._contents.items())
        return f"Instance({parts})"

    # -- derived --------------------------------------------------------------

    def active_domain(self) -> FrozenSet[object]:
        """The set of values appearing anywhere in the instance.

        This is the interpretation of the paper's special relation ``D`` (of
        arity 1); ``D^r`` is its r-fold cross product.
        """
        values: Set[object] = set()
        for rows in self._contents.values():
            for row in rows:
                values.update(row)
        return frozenset(values)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rows) for rows in self._contents.values())

    def satisfies_key(self, name: str, key: Tuple[int, ...]) -> bool:
        """Check that ``key`` is a key of relation ``name`` in this instance."""
        seen: Dict[Tuple[object, ...], Row] = {}
        for row in self.relation(name):
            key_value = tuple(row[i] for i in key)
            if key_value in seen and seen[key_value] != row:
                return False
            seen[key_value] = row
        return True
