"""Schemas (signatures) and database instances."""

from repro.schema.signature import RelationSchema, Signature
from repro.schema.instance import Instance

__all__ = ["RelationSchema", "Signature", "Instance"]
