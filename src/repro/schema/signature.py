"""Signatures (schemas): relation symbols, arities and optional keys.

The paper uses "signature" and "schema" synonymously: a function from relation
symbols to positive integers (their arities).  For the experiments we also
track an optional *key* per relation — a set of column indices — because the
'keys' configuration of the study encodes key constraints via the active
domain (paper Example 2) and the vertical-partitioning primitive requires its
input to be keyed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.algebra.expressions import Relation
from repro.exceptions import SchemaError

__all__ = ["RelationSchema", "Signature"]


@dataclass(frozen=True)
class RelationSchema:
    """A single relation symbol: name, arity and optional key columns."""

    name: str
    arity: int
    key: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if self.arity <= 0:
            raise SchemaError(f"relation {self.name!r} must have positive arity, got {self.arity}")
        if self.key is not None:
            key = tuple(sorted(set(int(i) for i in self.key)))
            object.__setattr__(self, "key", key)
            if not key:
                raise SchemaError(f"relation {self.name!r} has an empty key; use key=None instead")
            for index in key:
                if index < 0 or index >= self.arity:
                    raise SchemaError(
                        f"key column #{index} out of range for relation {self.name!r} "
                        f"of arity {self.arity}"
                    )

    @property
    def has_key(self) -> bool:
        """Return ``True`` if the relation declares a key."""
        return self.key is not None

    def to_expression(self) -> Relation:
        """Return the algebra leaf referencing this relation."""
        return Relation(self.name, self.arity)


class Signature:
    """An immutable collection of :class:`RelationSchema` objects.

    Signatures behave like read-only mappings from relation name to
    :class:`RelationSchema` and support the set-like operations the
    composition algorithm needs (union, difference, disjointness checks).
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: Dict[str, RelationSchema] = {}
        for relation_schema in relations:
            if not isinstance(relation_schema, RelationSchema):
                raise SchemaError(f"expected a RelationSchema, got {relation_schema!r}")
            if relation_schema.name in self._relations:
                raise SchemaError(f"duplicate relation {relation_schema.name!r} in signature")
            self._relations[relation_schema.name] = relation_schema

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Signature":
        """Build a signature from a ``{name: arity}`` mapping (no keys)."""
        return cls(RelationSchema(name, arity) for name, arity in arities.items())

    def adding(self, *relations: RelationSchema) -> "Signature":
        """Return a new signature with the given relations added."""
        return Signature(list(self._relations.values()) + list(relations))

    def removing(self, *names: str) -> "Signature":
        """Return a new signature without the given relation names."""
        missing = [name for name in names if name not in self._relations]
        if missing:
            raise SchemaError(f"cannot remove unknown relations: {missing}")
        removed = set(names)
        return Signature(r for name, r in self._relations.items() if name not in removed)

    def union(self, other: "Signature") -> "Signature":
        """Return the union of two signatures; shared names must agree exactly."""
        merged: Dict[str, RelationSchema] = dict(self._relations)
        for name, relation_schema in other._relations.items():
            if name in merged and merged[name] != relation_schema:
                raise SchemaError(
                    f"signatures disagree on relation {name!r}: "
                    f"{merged[name]} vs {relation_schema}"
                )
            merged[name] = relation_schema
        return Signature(merged.values())

    def restricted_to(self, names: Iterable[str]) -> "Signature":
        """Return the sub-signature containing only the given relation names."""
        names = set(names)
        return Signature(r for name, r in self._relations.items() if name in names)

    # -- mapping / set protocol ----------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.values()))

    def __repr__(self) -> str:
        names = ", ".join(f"{r.name}/{r.arity}" for r in self.relations())
        return f"Signature({names})"

    # -- queries --------------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        """Relation names, in insertion order."""
        return tuple(self._relations)

    def relations(self) -> Tuple[RelationSchema, ...]:
        """All relation schemas, in insertion order."""
        return tuple(self._relations.values())

    def arity_of(self, name: str) -> int:
        """Arity of the named relation."""
        return self[name].arity

    def key_of(self, name: str) -> Optional[Tuple[int, ...]]:
        """Key columns of the named relation, or ``None``."""
        return self[name].key

    def fingerprint(self) -> bytes:
        """Deterministic, order-sensitive content fingerprint of the signature.

        Covers the relation names, arities and keys *in insertion order* —
        the order the composition algorithm attempts σ2 symbols in, so two
        orderings of the same relations are distinct inputs.  Stable across
        processes (no salted hashing), which the incremental-recomposition
        checkpoints rely on.
        """
        from hashlib import blake2b

        from repro.algebra.digest import DIGEST_SIZE

        h = blake2b(digest_size=DIGEST_SIZE)
        for relation_schema in self._relations.values():
            h.update(
                repr(
                    (relation_schema.name, relation_schema.arity, relation_schema.key)
                ).encode()
            )
        return h.digest()

    def is_disjoint_from(self, other: "Signature") -> bool:
        """Return ``True`` if no relation name is shared with ``other``."""
        return not (set(self._relations) & set(other._relations))

    def shared_names(self, other: "Signature") -> Tuple[str, ...]:
        """Relation names present in both signatures."""
        return tuple(name for name in self._relations if name in other)

    def relation(self, name: str) -> Relation:
        """Return the algebra leaf for the named relation."""
        return self[name].to_expression()

    def keyed_names(self) -> Tuple[str, ...]:
        """Names of relations that declare a key."""
        return tuple(name for name, r in self._relations.items() if r.has_key)
