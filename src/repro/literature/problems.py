"""The literature-derived composition test suite.

The paper's first data set contains 22 composition problems drawn from the
recent literature ([5] Fagin et al., [7] Melnik et al., [8] Nash et al.) and
from the paper's own running examples, "which illustrate subtle composition
issues" and whose expected outcomes are documented (sometimes with formal
proofs).  The original downloadable archive is no longer available, so this
module reconstructs an equivalent suite of 22 problems directly from the
examples printed in the paper and the standard examples of the cited papers.

Each :class:`LiteratureProblem` records the composition problem, its source,
and — where the literature documents it — which intermediate symbols are
expected to be eliminable.  The test suite and the literature benchmark both
iterate over :func:`all_problems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.algebra.builders import natural_key_join, project
from repro.algebra.conditions import And, equals, equals_const
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Expression,
    Intersection,
    LeftOuterJoin,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.constraints.constraint import ContainmentConstraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.constraints.dependencies import key_constraint
from repro.exceptions import ExpressionError
from repro.mapping.composition_problem import CompositionProblem
from repro.schema.signature import RelationSchema, Signature

__all__ = ["LiteratureProblem", "all_problems", "problem_by_name"]


@dataclass(frozen=True)
class LiteratureProblem:
    """A composition problem with its documented expectations."""

    name: str
    source: str
    description: str
    problem: CompositionProblem
    #: σ2 symbols documented as eliminable; ``None`` = not documented.
    expected_eliminable: Optional[Tuple[str, ...]] = None
    #: σ2 symbols documented as NOT eliminable (inherently, or by this algorithm).
    expected_not_eliminable: Tuple[str, ...] = ()

    @property
    def expected_complete(self) -> Optional[bool]:
        """Whether the composition is expected to eliminate every σ2 symbol."""
        if self.expected_eliminable is None:
            return None
        return set(self.expected_eliminable) == set(self.problem.sigma2.names()) and not (
            self.expected_not_eliminable
        )


def _sig(**arities: int) -> Signature:
    return Signature.from_arities(arities)


class _TransitiveClosure(Expression):
    """The transitive-closure operator of [8] Theorem 1 — deliberately *unregistered*.

    The composition algorithm knows nothing about this operator, which is
    exactly the point of the example: the algorithm must tolerate it (not
    crash) yet cannot eliminate the symbol it guards.
    """

    operator_name = "tclosure"

    def __init__(self, child: Expression):
        if child.arity != 2:
            raise ExpressionError("transitive closure requires a binary relation")
        self._child = child

    @property
    def arity(self) -> int:
        return 2

    @property
    def children(self) -> Tuple[Expression, ...]:
        return (self._child,)

    def with_children(self, children: Tuple[Expression, ...]) -> "Expression":
        return _TransitiveClosure(children[0])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _TransitiveClosure) and other._child == self._child

    def __hash__(self) -> int:
        return hash(("tclosure", self._child))

    def __str__(self) -> str:
        return f"tclosure({self._child})"


# ---------------------------------------------------------------------------
# Problems from the paper's own examples
# ---------------------------------------------------------------------------


def _example1_movies() -> LiteratureProblem:
    movies = Relation("Movies", 6)
    five_star = Relation("FiveStarMovies", 3)
    names = Relation("Names", 2)
    years = Relation("Years", 2)
    sigma12 = ConstraintSet(
        [
            ContainmentConstraint(
                Projection(Selection(movies, equals_const(3, 5)), (0, 1, 2)), five_star
            )
        ]
    )
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(Projection(five_star, (0, 1)), names),
            ContainmentConstraint(Projection(five_star, (0, 2)), years),
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(Movies=6),
        sigma2=_sig(FiveStarMovies=3),
        sigma3=_sig(Names=2, Years=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="example1_movies",
    )
    return LiteratureProblem(
        name="example1_movies",
        source="paper, Example 1",
        description="Schema editing: select five-star movies then split into Names/Years.",
        problem=problem,
        expected_eliminable=("FiveStarMovies",),
    )


def _example3_inclusion_chain() -> LiteratureProblem:
    r, s, t = Relation("R", 2), Relation("S", 2), Relation("T", 2)
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2),
        sigma12=ConstraintSet([ContainmentConstraint(r, s)]),
        sigma23=ConstraintSet([ContainmentConstraint(s, t)]),
        name="example3_inclusion_chain",
    )
    return LiteratureProblem(
        name="example3_inclusion_chain",
        source="paper, Example 3",
        description="{R ⊆ S, S ⊆ T} is equivalent to {R ⊆ T}.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _example5_view_unfolding() -> LiteratureProblem:
    r1, r2, r3 = Relation("R1", 2), Relation("R2", 2), Relation("R3", 4)
    s = Relation("S", 4)
    t1, t2, t3 = Relation("T1", 2), Relation("T2", 4), Relation("T3", 4)
    sigma12 = ConstraintSet([EqualityConstraint(s, CrossProduct(r1, r2))])
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(Projection(Difference(r3, s), (0, 1)), t1),
            ContainmentConstraint(t2, Difference(t3, Selection(s, equals_const(0, "c")))),
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(R1=2, R2=2),
        sigma2=_sig(S=4),
        sigma3=_sig(R3=4, T1=2, T2=4, T3=4),
        sigma12=sigma12,
        sigma23=sigma23,
        name="example5_view_unfolding",
    )
    return LiteratureProblem(
        name="example5_view_unfolding",
        source="paper, Example 5",
        description="Neither left nor right compose applies, but view unfolding eliminates S.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _example7_left_compose() -> LiteratureProblem:
    r, s = Relation("R", 2), Relation("S", 2)
    t, u = Relation("T", 2), Relation("U", 1)
    sigma12 = ConstraintSet([ContainmentConstraint(Difference(r, s), t)])
    sigma23 = ConstraintSet([ContainmentConstraint(Projection(s, (0,)), u)])
    # To make the middle symbol S actually shared by both mappings, place the
    # difference constraint in Σ12 and the projection constraint in Σ23 as the
    # paper does (both mention S).
    problem = CompositionProblem(
        sigma1=_sig(R=2, T=2),
        sigma2=_sig(S=2),
        sigma3=_sig(U=1),
        sigma12=sigma12,
        sigma23=sigma23,
        name="example7_left_compose",
    )
    return LiteratureProblem(
        name="example7_left_compose",
        source="paper, Examples 7 and 10",
        description="R − S ⊆ T with π(S) ⊆ U: right compose fails, left compose succeeds.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _example8_intersection_left() -> LiteratureProblem:
    r, s = Relation("R", 2), Relation("S", 2)
    t, u = Relation("T", 2), Relation("U", 1)
    problem = CompositionProblem(
        sigma1=_sig(R=2, T=2),
        sigma2=_sig(S=2),
        sigma3=_sig(U=1),
        sigma12=ConstraintSet([ContainmentConstraint(Intersection(r, s), t)]),
        sigma23=ConstraintSet([ContainmentConstraint(Projection(s, (0,)), u)]),
        name="example8_intersection_left",
    )
    return LiteratureProblem(
        name="example8_intersection_left",
        source="paper, Example 8",
        description=(
            "R ∩ S ⊆ T with π(S) ⊆ U: left-normalization fails (no rule for ∩ on the left); "
            "right compose still eliminates S via the vacuous lower bound ∅."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


def _example9_domain_elimination() -> LiteratureProblem:
    r, t = Relation("R", 2), Relation("T", 2)
    s, u = Relation("S", 2), Relation("U", 1)
    problem = CompositionProblem(
        sigma1=_sig(R=2, T=2),
        sigma2=_sig(S=2),
        sigma3=_sig(U=1),
        sigma12=ConstraintSet([ContainmentConstraint(Intersection(r, t), s)]),
        sigma23=ConstraintSet([ContainmentConstraint(u, Projection(s, (0,)))]),
        name="example9_domain_elimination",
    )
    return LiteratureProblem(
        name="example9_domain_elimination",
        source="paper, Examples 9, 11 and 12",
        description=(
            "R ∩ T ⊆ S with U ⊆ π(S): left compose adds the trivial bound S ⊆ D^r and the "
            "domain-elimination step then removes every constraint."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


def _example13_right_compose() -> LiteratureProblem:
    s, t = Relation("S", 2), Relation("T", 3)
    u, r = Relation("U", 5), Relation("R", 3)
    # The paper presents this pair of constraints as an ELIMINATE input; as a
    # composition problem all outer symbols live on the σ3 side.
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(CrossProduct(s, t), u),
            ContainmentConstraint(
                t,
                CrossProduct(Selection(s, equals_const(0, "c")), Projection(r, (0,))),
            ),
        ]
    )
    problem = CompositionProblem(
        sigma1=Signature(),
        sigma2=_sig(S=2),
        sigma3=_sig(T=3, R=3, U=5),
        sigma12=ConstraintSet(),
        sigma23=sigma23,
        name="example13_right_compose",
    )
    return LiteratureProblem(
        name="example13_right_compose",
        source="paper, Examples 13 and 15",
        description="S × T ⊆ U with T ⊆ σ(S) × π(R): right compose eliminates S without Skolemization left over.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _example14_skolem() -> LiteratureProblem:
    r = Relation("R", 1)
    s = Relation("S", 1)
    t, u = Relation("T", 2), Relation("U", 2)
    # R ⊆ π_0(S × (T ∩ U)), S ⊆ π_0(σ_c(T)) — eliminating S requires the
    # Skolemizing projection rule followed by deskolemization.  The paper
    # presents it as an ELIMINATE input; all outer symbols live on the σ1 side.
    sigma12 = ConstraintSet(
        [
            ContainmentConstraint(r, Projection(CrossProduct(s, Intersection(t, u)), (0,))),
            ContainmentConstraint(s, Projection(Selection(t, equals_const(0, "c")), (0,))),
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(R=1, T=2, U=2),
        sigma2=_sig(S=1),
        sigma3=Signature(),
        sigma12=sigma12,
        sigma23=ConstraintSet(),
        name="example14_skolem",
    )
    return LiteratureProblem(
        name="example14_skolem",
        source="paper, Examples 14 and 16 (adapted arities)",
        description="Projection on the right forces Skolemization; deskolemization must clean up.",
        problem=problem,
        expected_eliminable=None,
    )


def _fagin_example17_noncomposable() -> LiteratureProblem:
    e = Relation("E", 2)
    f = Relation("F", 2)
    c = Relation("C", 2)
    d = Relation("D_rel", 2)
    sigma12 = ConstraintSet(
        [
            ContainmentConstraint(e, f),
            ContainmentConstraint(Projection(e, (0,)), Projection(c, (0,))),
            ContainmentConstraint(Projection(e, (1,)), Projection(c, (0,))),
        ]
    )
    # σ_{1=3, 2=5} in the paper's 1-based notation is σ_{0=2, 1=4} here.
    body = Selection(CrossProduct(CrossProduct(f, c), c), And(equals(0, 2), equals(1, 4)))
    sigma23 = ConstraintSet([ContainmentConstraint(Projection(body, (3, 5)), d)])
    problem = CompositionProblem(
        sigma1=_sig(E=2),
        sigma2=_sig(F=2, C=2),
        sigma3=_sig(D_rel=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="fagin_example17_noncomposable",
    )
    return LiteratureProblem(
        name="fagin_example17_noncomposable",
        source="paper Example 17, after Fagin, Kolaitis, Popa, Tan (PODS 2004)",
        description=(
            "Right compose eliminates F, but eliminating C is impossible by any means: "
            "deskolemization fails on the repeated Skolem function (step 3)."
        ),
        problem=problem,
        expected_eliminable=("F",),
        expected_not_eliminable=("C",),
    )


def _nash_transitive_closure() -> LiteratureProblem:
    r, s, t = Relation("R", 2), Relation("S", 2), Relation("T", 2)
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2),
        sigma12=ConstraintSet(
            [ContainmentConstraint(r, s), EqualityConstraint(s, _TransitiveClosure(s))]
        ),
        sigma23=ConstraintSet([ContainmentConstraint(s, t)]),
        name="nash_transitive_closure",
    )
    return LiteratureProblem(
        name="nash_transitive_closure",
        source="paper Section 1.3, after Nash, Bernstein, Melnik (PODS 2005), Theorem 1",
        description=(
            "R ⊆ S, S = tc(S), S ⊆ T: S is involved in a recursive computation and cannot be "
            "eliminated; the algorithm must tolerate the unknown tc operator and keep S."
        ),
        problem=problem,
        expected_eliminable=(),
        expected_not_eliminable=("S",),
    )


def _fagin_employee_manager() -> LiteratureProblem:
    emp = Relation("Emp", 1)
    mgr1 = Relation("Mgr1", 2)
    mgr = Relation("Mgr", 2)
    self_mgr = Relation("SelfMgr", 1)
    sigma12 = ConstraintSet([ContainmentConstraint(emp, Projection(mgr1, (0,)))])
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(mgr1, mgr),
            ContainmentConstraint(Projection(Selection(mgr1, equals(0, 1)), (0,)), self_mgr),
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(Emp=1),
        sigma2=_sig(Mgr1=2),
        sigma3=_sig(Mgr=2, SelfMgr=1),
        sigma12=sigma12,
        sigma23=sigma23,
        name="fagin_employee_manager",
    )
    return LiteratureProblem(
        name="fagin_employee_manager",
        source="Fagin, Kolaitis, Popa, Tan (PODS 2004), employee/manager example",
        description=(
            "The classic employee/manager composition.  Right compose is blocked by the "
            "selection over the Skolemized lower bound, but left compose expresses the "
            "composition using the active-domain relation (the algebraic language is richer "
            "than source-to-target tgds), so Mgr1 is eliminated."
        ),
        problem=problem,
        expected_eliminable=("Mgr1",),
    )


# ---------------------------------------------------------------------------
# GLAV / data-integration style problems
# ---------------------------------------------------------------------------


def _glav_chain() -> LiteratureProblem:
    src = Relation("Src", 3)
    mid1, mid2 = Relation("Mid1", 2), Relation("Mid2", 2)
    dst = Relation("Dst", 2)
    sigma12 = ConstraintSet(
        [
            ContainmentConstraint(Projection(src, (0, 1)), mid1),
            ContainmentConstraint(Projection(src, (0, 2)), mid2),
        ]
    )
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(
                Projection(
                    Selection(CrossProduct(mid1, mid2), equals(0, 2)), (1, 3)
                ),
                dst,
            )
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(Src=3),
        sigma2=_sig(Mid1=2, Mid2=2),
        sigma3=_sig(Dst=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="glav_chain",
    )
    return LiteratureProblem(
        name="glav_chain",
        source="Madhavan & Halevy (VLDB 2003) style GLAV chain",
        description="Two GLAV assertions composed with a join query over the intermediate peers.",
        problem=problem,
        expected_eliminable=("Mid1", "Mid2"),
    )


def _view_unfolding_query() -> LiteratureProblem:
    orders = Relation("Orders", 3)
    customers = Relation("Customers", 2)
    view = Relation("BigOrders", 2)
    answer = Relation("Answer", 2)
    sigma12 = ConstraintSet(
        [
            EqualityConstraint(
                view, Projection(Selection(orders, equals_const(2, "large")), (0, 1))
            )
        ]
    )
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(
                Projection(
                    Selection(CrossProduct(view, customers), equals(1, 2)), (0, 3)
                ),
                answer,
            )
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(Orders=3),
        sigma2=_sig(BigOrders=2),
        sigma3=_sig(Customers=2, Answer=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="view_unfolding_query",
    )
    return LiteratureProblem(
        name="view_unfolding_query",
        source="Stonebraker (SIGMOD 1975) / data-integration query unfolding",
        description="A GAV view definition composed with a query over the view (classical view unfolding).",
        problem=problem,
        expected_eliminable=("BigOrders",),
    )


def _melnik_purchase_orders() -> LiteratureProblem:
    po = Relation("PurchaseOrder", 4)
    lines = Relation("OrderLines", 3)
    header = Relation("Header", 2)
    report = Relation("Report", 3)
    sigma12 = ConstraintSet(
        [
            EqualityConstraint(header, Projection(po, (0, 1))),
            EqualityConstraint(lines, Projection(po, (0, 2, 3))),
        ]
    )
    sigma23 = ConstraintSet(
        [
            ContainmentConstraint(
                Projection(
                    Selection(CrossProduct(header, lines), equals(0, 2)), (0, 1, 3)
                ),
                report,
            )
        ]
    )
    problem = CompositionProblem(
        sigma1=_sig(PurchaseOrder=4),
        sigma2=_sig(Header=2, OrderLines=3),
        sigma3=_sig(Report=3),
        sigma12=sigma12,
        sigma23=sigma23,
        name="melnik_purchase_orders",
    )
    return LiteratureProblem(
        name="melnik_purchase_orders",
        source="Melnik, Bernstein, Halevy, Rahm (SIGMOD 2005) style executable mappings",
        description="A purchase-order schema split into header/lines views, composed with a reporting query.",
        problem=problem,
        expected_eliminable=("Header", "OrderLines"),
    )


# ---------------------------------------------------------------------------
# Schema-evolution style problems
# ---------------------------------------------------------------------------


def _evolution_add_then_drop() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 3)
    t = Relation("T", 2)
    sigma12 = ConstraintSet([EqualityConstraint(r, Projection(s, (0, 1)))])
    sigma23 = ConstraintSet([EqualityConstraint(Projection(s, (0, 2)), t)])
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=3),
        sigma3=_sig(T=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="evolution_add_then_drop",
    )
    return LiteratureProblem(
        name="evolution_add_then_drop",
        source="schema evolution: AA followed by DA (paper Figure 1)",
        description="Add an attribute then drop a different one; the intermediate table must go.",
        problem=problem,
        expected_eliminable=None,
    )


def _horizontal_partition_merge() -> LiteratureProblem:
    r = Relation("R", 2)
    s, t = Relation("S", 2), Relation("T", 2)
    w = Relation("W", 2)
    sigma12 = ConstraintSet(
        [
            EqualityConstraint(Selection(r, equals_const(1, "a")), s),
            EqualityConstraint(Selection(r, equals_const(1, "b")), t),
            EqualityConstraint(r, Union(s, t)),
        ]
    )
    sigma23 = ConstraintSet([EqualityConstraint(Union(s, t), w)])
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2, T=2),
        sigma3=_sig(W=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="horizontal_partition_merge",
    )
    return LiteratureProblem(
        name="horizontal_partition_merge",
        source="schema evolution: H followed by a merge (paper Figure 1)",
        description="Horizontally partition a table and then merge the parts back together.",
        problem=problem,
        expected_eliminable=None,
    )


def _vertical_partition_roundtrip() -> LiteratureProblem:
    r = Relation("R", 3)
    s, t = Relation("S", 2), Relation("T", 2)
    w = Relation("W", 3)
    join_back = natural_key_join(s, t, 1)
    sigma12 = ConstraintSet(
        [
            EqualityConstraint(Projection(r, (0, 1)), s),
            EqualityConstraint(Projection(r, (0, 2)), t),
            key_constraint(r, (0,)),
        ]
    )
    sigma23 = ConstraintSet([EqualityConstraint(join_back, w)])
    problem = CompositionProblem(
        sigma1=_sig(R=3),
        sigma2=_sig(S=2, T=2),
        sigma3=_sig(W=3),
        sigma12=sigma12,
        sigma23=sigma23,
        name="vertical_partition_roundtrip",
    )
    return LiteratureProblem(
        name="vertical_partition_roundtrip",
        source="schema evolution: Vf followed by Vb (paper Figure 1 and Example 2)",
        description="Vertically partition a keyed table and join the parts back (key encoded via D).",
        problem=problem,
        expected_eliminable=None,
    )


def _copy_rename_chain() -> LiteratureProblem:
    r = Relation("R", 3)
    s = Relation("S", 3)
    t = Relation("T", 3)
    problem = CompositionProblem(
        sigma1=_sig(R=3),
        sigma2=_sig(S=3),
        sigma3=_sig(T=3),
        sigma12=ConstraintSet([EqualityConstraint(r, s)]),
        sigma23=ConstraintSet([EqualityConstraint(s, t)]),
        name="copy_rename_chain",
    )
    return LiteratureProblem(
        name="copy_rename_chain",
        source="schema evolution: a chain of renames",
        description="Two identity mappings compose into one (pure view unfolding).",
        problem=problem,
        expected_eliminable=("S",),
    )


def _partial_elimination_mixed() -> LiteratureProblem:
    r = Relation("R", 2)
    s1, s2 = Relation("S1", 2), Relation("S2", 2)
    t = Relation("T", 2)
    sigma12 = ConstraintSet(
        [
            EqualityConstraint(s1, Projection(r, (0, 1))),
            EqualityConstraint(s2, _TransitiveClosure(s2)),
            ContainmentConstraint(r, s2),
        ]
    )
    sigma23 = ConstraintSet(
        [ContainmentConstraint(s1, t), ContainmentConstraint(s2, t)]
    )
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S1=2, S2=2),
        sigma3=_sig(T=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="partial_elimination_mixed",
    )
    return LiteratureProblem(
        name="partial_elimination_mixed",
        source="paper Section 1.3 (best-effort elimination)",
        description="Exactly one of the two intermediate symbols can be eliminated; the other must survive.",
        problem=problem,
        expected_eliminable=("S1",),
        expected_not_eliminable=("S2",),
    )


# ---------------------------------------------------------------------------
# Operator-coverage problems (difference, outerjoin, unions)
# ---------------------------------------------------------------------------


def _difference_monotonicity() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 2)
    u = Relation("U", 2)
    sigma12 = ConstraintSet([ContainmentConstraint(r, s)])
    sigma23 = ConstraintSet([ContainmentConstraint(Difference(s, t), u)])
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2, U=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="difference_monotonicity",
    )
    return LiteratureProblem(
        name="difference_monotonicity",
        source="paper Section 1.3 (use of monotonicity)",
        description=(
            "S occurs in the first (monotone) argument of a difference on a left-hand side; "
            "right compose may substitute the lower bound R for it."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


def _difference_antimonotone_blocked() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 2)
    u = Relation("U", 2)
    sigma12 = ConstraintSet([ContainmentConstraint(r, s)])
    sigma23 = ConstraintSet([ContainmentConstraint(Difference(t, s), u)])
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2, U=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="difference_antimonotone_blocked",
    )
    return LiteratureProblem(
        name="difference_antimonotone_blocked",
        source="paper Section 1.3 (use of monotonicity, negative case)",
        description=(
            "S occurs only in the anti-monotone argument of a difference on a left-hand side, so "
            "substituting the lower bound there would be unsound; the algorithm instead moves S to "
            "the right-hand side during left-normalization and eliminates it soundly."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


def _outerjoin_tolerance() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 2)
    u = Relation("U", 4)
    sigma12 = ConstraintSet([EqualityConstraint(s, Selection(r, equals_const(1, "x")))])
    sigma23 = ConstraintSet(
        [ContainmentConstraint(LeftOuterJoin(t, s, equals(0, 2)), u)]
    )
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2, U=4),
        sigma12=sigma12,
        sigma23=sigma23,
        name="outerjoin_tolerance",
    )
    return LiteratureProblem(
        name="outerjoin_tolerance",
        source="paper Section 1.3 / extended TR sample run (outerjoin)",
        description=(
            "The intermediate symbol appears under a left outerjoin; view unfolding eliminates it "
            "because the defining constraint is an equality."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


def _outerjoin_right_blocked() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 2)
    u = Relation("U", 4)
    sigma12 = ConstraintSet([ContainmentConstraint(r, s)])
    sigma23 = ConstraintSet(
        [ContainmentConstraint(LeftOuterJoin(t, s, equals(0, 2)), u)]
    )
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2, U=4),
        sigma12=sigma12,
        sigma23=sigma23,
        name="outerjoin_right_blocked",
    )
    return LiteratureProblem(
        name="outerjoin_right_blocked",
        source="paper Section 1.3 (left outerjoin is not monotone in its second argument)",
        description=(
            "Without a defining equality, the symbol under the outerjoin's second argument cannot "
            "be substituted (not monotone), so it is kept."
        ),
        problem=problem,
        expected_eliminable=(),
        expected_not_eliminable=("S",),
    )


def _union_split_targets() -> LiteratureProblem:
    r1, r2 = Relation("R1", 2), Relation("R2", 2)
    s = Relation("S", 2)
    t1, t2 = Relation("T1", 2), Relation("T2", 2)
    sigma12 = ConstraintSet([ContainmentConstraint(Union(r1, r2), s)])
    sigma23 = ConstraintSet([ContainmentConstraint(s, Union(t1, t2))])
    problem = CompositionProblem(
        sigma1=_sig(R1=2, R2=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T1=2, T2=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="union_split_targets",
    )
    return LiteratureProblem(
        name="union_split_targets",
        source="GLAV with unions on both sides",
        description="A union lower bound composed with a union upper bound.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _key_constraint_propagation() -> LiteratureProblem:
    r = Relation("R", 3)
    s = Relation("S", 3)
    t = Relation("T", 2)
    sigma12 = ConstraintSet([EqualityConstraint(r, s), key_constraint(s, (0,))])
    sigma23 = ConstraintSet([EqualityConstraint(Projection(s, (0, 1)), t)])
    problem = CompositionProblem(
        sigma1=_sig(R=3),
        sigma2=_sig(S=3),
        sigma3=_sig(T=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="key_constraint_propagation",
    )
    return LiteratureProblem(
        name="key_constraint_propagation",
        source="paper Example 2 (key constraints via the active domain)",
        description="A keyed copy of a relation: the key constraint must be propagated when the symbol is unfolded.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _selection_pushthrough() -> LiteratureProblem:
    r = Relation("R", 2)
    s = Relation("S", 2)
    t = Relation("T", 2)
    sigma12 = ConstraintSet([ContainmentConstraint(Selection(r, equals_const(1, 7)), s)])
    sigma23 = ConstraintSet([ContainmentConstraint(Selection(s, equals_const(0, 3)), t)])
    problem = CompositionProblem(
        sigma1=_sig(R=2),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="selection_pushthrough",
    )
    return LiteratureProblem(
        name="selection_pushthrough",
        source="selection-only GLAV chain",
        description="Selections on both sides of the intermediate symbol.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _two_step_projection() -> LiteratureProblem:
    r = Relation("R", 3)
    s = Relation("S", 2)
    t = Relation("T", 1)
    sigma12 = ConstraintSet([ContainmentConstraint(Projection(r, (0, 1)), s)])
    sigma23 = ConstraintSet([ContainmentConstraint(Projection(s, (0,)), t)])
    problem = CompositionProblem(
        sigma1=_sig(R=3),
        sigma2=_sig(S=2),
        sigma3=_sig(T=1),
        sigma12=sigma12,
        sigma23=sigma23,
        name="two_step_projection",
    )
    return LiteratureProblem(
        name="two_step_projection",
        source="LAV-style projection chain",
        description="Two projections compose into one.",
        problem=problem,
        expected_eliminable=("S",),
    )


def _lav_existential_target() -> LiteratureProblem:
    r = Relation("R", 1)
    s = Relation("S", 2)
    t = Relation("T", 2)
    sigma12 = ConstraintSet([ContainmentConstraint(r, Projection(s, (0,)))])
    sigma23 = ConstraintSet([ContainmentConstraint(s, t)])
    problem = CompositionProblem(
        sigma1=_sig(R=1),
        sigma2=_sig(S=2),
        sigma3=_sig(T=2),
        sigma12=sigma12,
        sigma23=sigma23,
        name="lav_existential_target",
    )
    return LiteratureProblem(
        name="lav_existential_target",
        source="LAV assertion with an existential target (Fagin et al. style)",
        description=(
            "R ⊆ π(S) with S ⊆ T: right compose Skolemizes the projection and deskolemization "
            "produces R ⊆ π(T)."
        ),
        problem=problem,
        expected_eliminable=("S",),
    )


_BUILDERS: Tuple[Callable[[], LiteratureProblem], ...] = (
    _example1_movies,
    _example3_inclusion_chain,
    _example5_view_unfolding,
    _example7_left_compose,
    _example8_intersection_left,
    _example9_domain_elimination,
    _example13_right_compose,
    _example14_skolem,
    _fagin_example17_noncomposable,
    _nash_transitive_closure,
    _fagin_employee_manager,
    _glav_chain,
    _view_unfolding_query,
    _melnik_purchase_orders,
    _evolution_add_then_drop,
    _horizontal_partition_merge,
    _vertical_partition_roundtrip,
    _copy_rename_chain,
    _partial_elimination_mixed,
    _difference_monotonicity,
    _difference_antimonotone_blocked,
    _outerjoin_tolerance,
    _outerjoin_right_blocked,
    _union_split_targets,
    _key_constraint_propagation,
    _selection_pushthrough,
    _two_step_projection,
    _lav_existential_target,
)


def all_problems() -> List[LiteratureProblem]:
    """Return the full literature-derived suite (a superset of the paper's 22 problems)."""
    return [builder() for builder in _BUILDERS]


def problem_by_name(name: str) -> LiteratureProblem:
    """Look up a problem by its name."""
    for builder in _BUILDERS:
        problem = builder()
        if problem.name == name:
            return problem
    raise KeyError(f"unknown literature problem {name!r}")
