"""The literature-derived composition problem suite (the paper's first data set)."""

from repro.literature.problems import LiteratureProblem, all_problems, problem_by_name

__all__ = ["LiteratureProblem", "all_problems", "problem_by_name"]
