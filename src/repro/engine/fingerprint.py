"""Checkpoint tokens: cumulative fingerprints over a chain of mappings.

A chain hop's outcome is a deterministic function of the composer
configuration, the residual-threading mode, and the *structure* of the
mappings up to and including the hop — residual symbols only flow forward, so
nothing downstream can reach back into an earlier hop.  That makes the
cumulative fingerprint

    ``token[i] = H(token[i-1], fingerprint(mappings[i + 1]))``

(seeded with the config fingerprint, the threading mode and the first
mapping's fingerprint) a sound cache key for "the state of the fold after hop
``i``": two chains agreeing on ``token[i]`` agree on every composition input
of hops ``0..i``, hence — COMPOSE being deterministic — on the accumulated
constraints, the threaded residuals and every per-symbol outcome.

All component fingerprints are deterministic digests (no per-process salted
hashing), so tokens recorded in one process match tokens recomputed in a
process-pool worker — checkpoints ship across the pickle boundary intact.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import List, Sequence

from repro.algebra.digest import DIGEST_SIZE
from repro.compose.config import ComposerConfig
from repro.mapping.mapping import Mapping

__all__ = ["chain_fingerprint", "chain_tokens"]


def chain_fingerprint(mappings: Sequence[Mapping]) -> bytes:
    """Deterministic content fingerprint of a whole chain of mappings.

    Unlike :func:`chain_tokens` this covers only the chain's content (no
    composer configuration, no threading mode): the catalog uses it to
    content-address stored chains, and the service folds it — together with
    the config fingerprint — into request-deduplication keys.  Per-mapping
    fingerprints are fixed-width digests, so the concatenation is
    unambiguous.
    """
    h = blake2b(digest_size=DIGEST_SIZE)
    for mapping in mappings:
        h.update(mapping.fingerprint())
    return h.digest()


def chain_tokens(
    mappings: Sequence[Mapping],
    config: ComposerConfig,
    retry_residuals: bool,
) -> List[bytes]:
    """The per-hop checkpoint tokens of a chain (``len(mappings) - 1`` entries).

    ``tokens[i]`` names the state after hop ``i`` (the fold having consumed
    ``mappings[0 .. i + 1]``).  Residual threading mode is part of the seed
    because it changes every hop's intermediate signature.
    """
    seed = blake2b(digest_size=DIGEST_SIZE)
    seed.update(config.fingerprint())
    seed.update(b"retry" if retry_residuals else b"freeze")
    seed.update(mappings[0].fingerprint())
    token = seed.digest()

    tokens: List[bytes] = []
    for mapping in mappings[1:]:
        h = blake2b(digest_size=DIGEST_SIZE)
        h.update(token)
        h.update(mapping.fingerprint())
        token = h.digest()
        tokens.append(token)
    return tokens
