"""The batch composition engine: chained, batched, incremental and generated workloads.

This subsystem layers scale on top of the core COMPOSE procedure:

* :mod:`repro.engine.chain` — n-ary chained composition
  (``m12 ∘ m23 ∘ … ∘ m(n-1)(n)``) with residual-symbol threading;
* :mod:`repro.engine.batch` — concurrent batch execution with failure
  isolation, soft timeouts, a shared expression cache and a shared
  hop-checkpoint store;
* :mod:`repro.engine.checkpoint` / :mod:`repro.engine.fingerprint` — content
  fingerprints over chains and the checkpoint store keyed by them;
* :mod:`repro.engine.incremental` — the incremental recomposition engine:
  :class:`IncrementalComposer` ("previous chain plus a delta") and the
  delta-aware :class:`EvolutionSession` edit-replay driver;
* :mod:`repro.engine.workloads` — seeded randomized generation of diverse
  composition problems from the schema-evolution primitives.
"""

from repro.engine.batch import (
    BatchBackend,
    BatchComposer,
    BatchConfig,
    BatchItemResult,
    BatchReport,
    ProblemStatus,
)
from repro.engine.chain import ChainHop, ChainResult, compose_chain, validate_chain
from repro.engine.checkpoint import ChainCheckpoint, CheckpointStore
from repro.engine.fingerprint import chain_fingerprint, chain_tokens
from repro.engine.incremental import EvolutionSession, IncrementalComposer, SessionEvent
from repro.engine.workloads import (
    ChainGrower,
    ChainProblem,
    PartitionedProblem,
    WorkloadConfig,
    generate_chain_problem,
    generate_partitioned_problem,
    generate_partitioned_workload,
    generate_workload,
    pairwise_problems,
    partitioned_forward_instance,
)

__all__ = [
    "ChainHop",
    "ChainResult",
    "compose_chain",
    "validate_chain",
    "BatchBackend",
    "BatchComposer",
    "BatchConfig",
    "BatchItemResult",
    "BatchReport",
    "ProblemStatus",
    "ChainCheckpoint",
    "CheckpointStore",
    "chain_fingerprint",
    "chain_tokens",
    "EvolutionSession",
    "IncrementalComposer",
    "SessionEvent",
    "ChainGrower",
    "ChainProblem",
    "PartitionedProblem",
    "WorkloadConfig",
    "generate_chain_problem",
    "generate_partitioned_problem",
    "generate_partitioned_workload",
    "generate_workload",
    "pairwise_problems",
    "partitioned_forward_instance",
]
