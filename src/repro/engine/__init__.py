"""The batch composition engine: chained, batched and generated workloads.

This subsystem layers scale on top of the core COMPOSE procedure:

* :mod:`repro.engine.chain` — n-ary chained composition
  (``m12 ∘ m23 ∘ … ∘ m(n-1)(n)``) with residual-symbol threading;
* :mod:`repro.engine.batch` — concurrent batch execution with failure
  isolation, soft timeouts and a shared expression cache;
* :mod:`repro.engine.workloads` — seeded randomized generation of diverse
  composition problems from the schema-evolution primitives.
"""

from repro.engine.batch import (
    BatchBackend,
    BatchComposer,
    BatchConfig,
    BatchItemResult,
    BatchReport,
    ProblemStatus,
)
from repro.engine.chain import ChainHop, ChainResult, compose_chain, validate_chain
from repro.engine.workloads import (
    ChainProblem,
    WorkloadConfig,
    generate_chain_problem,
    generate_workload,
    pairwise_problems,
)

__all__ = [
    "ChainHop",
    "ChainResult",
    "compose_chain",
    "validate_chain",
    "BatchBackend",
    "BatchComposer",
    "BatchConfig",
    "BatchItemResult",
    "BatchReport",
    "ProblemStatus",
    "ChainProblem",
    "WorkloadConfig",
    "generate_chain_problem",
    "generate_workload",
    "pairwise_problems",
]
