"""Hop checkpoints: recorded chain-fold states keyed by fingerprint tokens.

Schema-evolution workloads recompose *almost the same chain* over and over:
every edit appends a mapping (or rewrites one near the end) and the
end-to-end composition is rebuilt.  A :class:`CheckpointStore` remembers, per
hop token (:mod:`repro.engine.fingerprint`), everything the fold needs to
resume after that hop — the accumulated constraint set, the threaded residual
symbols, the running output signature, and the full prefix of hop records
with their per-symbol elimination outcomes — so a later composition whose
token chain matches a recorded prefix replays only the hops after the first
mismatch.

The store is a pure accelerator with the same contract as the expression
cache: dropping any entry is always safe (the fold recomputes it), results
are byte-identical with the store hot, cold, or absent, and sharing between
threads is harmless because entries are immutable and keyed by content.
Checkpoints pickle cleanly (tokens are deterministic digests), which is how
the batch engine pre-seeds process-pool workers with them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.constraints.constraint_set import ConstraintSet
    from repro.engine.chain import ChainHop
    from repro.schema.signature import Signature

__all__ = ["ChainCheckpoint", "CheckpointStore"]

#: Default bound on the number of recorded checkpoints before the store resets.
DEFAULT_MAX_CHECKPOINTS = 4096


@dataclass(frozen=True)
class ChainCheckpoint:
    """The complete state of a chain fold immediately after one hop.

    Attributes
    ----------
    token:
        The cumulative fingerprint naming this state (the store key).
    hops:
        Every hop record up to and including this one — the per-symbol
        elimination outcomes ride along inside each
        :class:`~repro.engine.chain.ChainHop`.  Successive checkpoints of one
        chain share the prefix records by reference, so storing a checkpoint
        per hop costs one tuple, not a deep copy.
    constraints:
        The accumulated mapping's constraint set after this hop.
    residual:
        The threaded residual symbols that survive into the next hop.
    current_output:
        The output signature of the last mapping folded in.
    """

    token: bytes
    hops: Tuple["ChainHop", ...]
    constraints: "ConstraintSet"
    residual: "Signature"
    current_output: "Signature"

    @property
    def hop_count(self) -> int:
        """Number of hops this checkpoint covers (its depth into the chain)."""
        return len(self.hops)

    def __repr__(self) -> str:
        return (
            f"<ChainCheckpoint depth {len(self.hops)}: "
            f"{len(self.constraints)} constraints, token {self.token.hex()[:8]}>"
        )


class CheckpointStore:
    """A bounded token → :class:`ChainCheckpoint` table.

    Parameters
    ----------
    max_entries:
        Soft bound on the number of recorded checkpoints; past it the table
        is cleared wholesale (the store is a pure accelerator, so dropping
        everything is always safe and keeps eviction O(1) amortized).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_CHECKPOINTS):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: Dict[bytes, ChainCheckpoint] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, token: bytes) -> Optional[ChainCheckpoint]:
        """The checkpoint recorded for ``token``, or ``None`` (counts hit/miss).

        On an in-memory miss the store consults :meth:`_load_fallback` — a
        no-op here, overridden by persistent stores to read through to disk —
        and installs whatever it returns, so fallback loads count as hits.
        """
        checkpoint = self._entries.get(token)
        if checkpoint is None:
            checkpoint = self._load_fallback(token)
            if checkpoint is not None:
                self._entries.setdefault(token, checkpoint)
        if checkpoint is None:
            self.misses += 1
        else:
            self.hits += 1
        return checkpoint

    def put(self, checkpoint: ChainCheckpoint) -> None:
        """Record ``checkpoint`` (first write wins; entries are content-keyed)."""
        if (
            len(self._entries) >= self.max_entries
            and checkpoint.token not in self._entries
        ):
            with self._lock:
                if len(self._entries) >= self.max_entries:
                    self._entries.clear()
                    self.evictions += 1
        self._entries.setdefault(checkpoint.token, checkpoint)
        self._persist(checkpoint)

    # -- persistence hooks ---------------------------------------------------------
    #
    # The in-memory store is the whole story here; subclasses that mirror
    # checkpoints to durable storage (``repro.catalog.checkpoints``) override
    # these two methods.  Keeping the hooks on the base class means every
    # consumer — ``compose_chain``, the batch engine, the incremental
    # composer — works with a persistent store without knowing it.

    def _load_fallback(self, token: bytes) -> Optional[ChainCheckpoint]:
        """Second-level lookup consulted on an in-memory miss (``None`` here)."""
        return None

    def _persist(self, checkpoint: ChainCheckpoint) -> None:
        """Write-through hook invoked after every :meth:`put` (no-op here)."""

    def seed(self, checkpoints: Iterable[ChainCheckpoint]) -> None:
        """Record many checkpoints (used to pre-warm process-pool workers)."""
        for checkpoint in checkpoints:
            self.put(checkpoint)

    def snapshot(self, limit: Optional[int] = None) -> Tuple[ChainCheckpoint, ...]:
        """Up to ``limit`` recorded checkpoints, deepest first.

        Deepest first because when the snapshot is truncated (shipping
        checkpoints to process workers bounds the pickled payload), the long
        prefixes are the valuable ones — a deep checkpoint subsumes every
        shallower checkpoint of the same chain.
        """
        ordered = sorted(
            self._entries.values(), key=lambda cp: cp.hop_count, reverse=True
        )
        return tuple(ordered[:limit] if limit is not None else ordered)

    def clear(self) -> None:
        """Drop every recorded checkpoint and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """A snapshot of the store counters (for benchmarks and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }

    def __repr__(self) -> str:
        return (
            f"<CheckpointStore: {len(self._entries)} checkpoints, "
            f"{self.hits} hits / {self.misses} misses>"
        )
