"""Incremental recomposition: amortize chained composition across edits.

The paper's motivating scenario is schema evolution: after every edit a new
mapping is appended (or one near the end is rewritten) and the end-to-end
composition is recomputed.  Recomposing from scratch costs O(n²) total hops
over an n-edit sequence; with hop checkpoints it is near-linear, because each
recomposition replays only the hops at or after the first fingerprint
mismatch.

Two layers live here:

* :class:`IncrementalComposer` — a stateful engine owning one
  :class:`~repro.engine.checkpoint.CheckpointStore` and one shared
  :class:`~repro.algebra.interning.ExpressionCache`, threading both through
  every :func:`~repro.engine.chain.compose_chain` call (the cache end-to-end,
  including per-hop problem assembly).  Give it "the previous chain plus a
  delta" — append a hop, replace a suffix, edit one mapping — and it reuses
  everything upstream of the change.
* :class:`EvolutionSession` — a delta-aware edit-replay session over one
  chain: mutate the chain through :meth:`append` / :meth:`edit` /
  :meth:`replace_suffix` / :meth:`pop` and read the freshly recomposed
  :class:`~repro.engine.chain.ChainResult` after each step, plus a per-edit
  event log of how many hops each recomposition actually replayed.

Everything is a pure accelerator: results are byte-identical to from-scratch
``compose_chain`` (asserted by ``tests/engine/test_incremental.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.interning import ExpressionCache
from repro.compose.config import ComposerConfig
from repro.engine.chain import ChainResult, compose_chain, validate_chain
from repro.engine.checkpoint import DEFAULT_MAX_CHECKPOINTS, CheckpointStore
from repro.exceptions import EngineError
from repro.mapping.mapping import Mapping

__all__ = ["IncrementalComposer", "EvolutionSession", "SessionEvent"]


class IncrementalComposer:
    """A chained-composition engine that reuses work across related chains.

    Parameters
    ----------
    config:
        Composer configuration used for every hop (its fingerprint is part of
        every checkpoint token, so composing with a different configuration —
        or after an :class:`~repro.operators.registry.OperatorRegistry`
        rule change bumps the registry ``version`` — never reuses stale hops).
    retry_residuals:
        Residual-threading mode forwarded to :func:`compose_chain`.
    checkpoints / checkpoint_max_entries:
        The hop-checkpoint store to use, or the bound for a fresh one.
    cache / cache_max_entries:
        The shared expression cache threaded through every call — memo tables
        and fixpoint tokens persist across edits, exactly like the batch
        engine's per-batch cache, but for the lifetime of this composer.
    """

    def __init__(
        self,
        config: Optional[ComposerConfig] = None,
        retry_residuals: bool = True,
        checkpoints: Optional[CheckpointStore] = None,
        cache: Optional[ExpressionCache] = None,
        checkpoint_max_entries: int = DEFAULT_MAX_CHECKPOINTS,
        cache_max_entries: int = 200_000,
    ):
        self.config = config or ComposerConfig()
        self.retry_residuals = retry_residuals
        self.checkpoints = checkpoints or CheckpointStore(
            max_entries=checkpoint_max_entries
        )
        self.cache = cache or ExpressionCache(max_entries=cache_max_entries)

    def compose_chain(self, mappings: Sequence[Mapping]) -> ChainResult:
        """Compose ``mappings``, reusing every checkpointed prefix hop."""
        return compose_chain(
            mappings,
            self.config,
            self.retry_residuals,
            cache=self.cache,
            checkpoints=self.checkpoints,
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Counters of the checkpoint store and the expression cache."""
        return {
            "checkpoints": self.checkpoints.stats(),
            "cache": self.cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"<IncrementalComposer: {len(self.checkpoints)} checkpoints, "
            f"retry_residuals={self.retry_residuals}>"
        )


@dataclass(frozen=True)
class SessionEvent:
    """One edit applied to an :class:`EvolutionSession`, with its replay cost."""

    kind: str
    index: int
    chain_length: int
    total_hops: int
    replayed_hops: int
    reused_hops: int
    elapsed_seconds: float

    def __repr__(self) -> str:
        return (
            f"<SessionEvent {self.kind}@{self.index}: replayed "
            f"{self.replayed_hops}/{self.total_hops} hops>"
        )


class EvolutionSession:
    """An edit-replay session over one evolving chain of mappings.

    The session holds the current chain and recomposes it after every
    mutation through a (shared or private) :class:`IncrementalComposer`, so
    the cost of each edit is proportional to how much of the chain it
    invalidated — one hop for an append, the suffix for a mid-chain edit —
    rather than to the whole chain length.

    Mutations validate the edited chain up front (via
    :func:`~repro.engine.chain.validate_chain`) and leave the session
    unchanged when the delta does not splice: an appended mapping must
    consume the current output signature, a replacement must keep both of
    its neighbours' signatures.
    """

    def __init__(
        self,
        mappings: Sequence[Mapping] = (),
        composer: Optional[IncrementalComposer] = None,
        config: Optional[ComposerConfig] = None,
        retry_residuals: Optional[bool] = None,
    ):
        if composer is not None and (config is not None or retry_residuals is not None):
            raise EngineError(
                "pass either a composer or config/retry_residuals, not both "
                "(a supplied composer already carries its own settings)"
            )
        self.composer = composer or IncrementalComposer(
            config=config,
            retry_residuals=True if retry_residuals is None else retry_residuals,
        )
        self._mappings: List[Mapping] = list(mappings)
        self._result: Optional[ChainResult] = None
        self.events: List[SessionEvent] = []
        if self._mappings:
            self._recompose("init", index=0)

    # -- state -----------------------------------------------------------------

    @property
    def mappings(self) -> Tuple[Mapping, ...]:
        """The current chain, in application order."""
        return tuple(self._mappings)

    @property
    def chain_length(self) -> int:
        return len(self._mappings)

    @property
    def result(self) -> ChainResult:
        """The composition of the current chain (recomposed on every edit)."""
        if self._result is None:
            raise EngineError("the session holds no mappings yet; append one first")
        return self._result

    # -- deltas ----------------------------------------------------------------

    def append(self, mapping: Mapping) -> ChainResult:
        """Append one mapping (a new edit) and recompose; replays one hop."""
        self._apply("append", len(self._mappings), self._mappings + [mapping])
        return self.result

    def edit(self, index: int, mapping: Mapping) -> ChainResult:
        """Replace the mapping at ``index`` and recompose the affected suffix."""
        self._check_index(index)
        candidate = list(self._mappings)
        candidate[index] = mapping
        self._apply("edit", index, candidate)
        return self.result

    def replace_suffix(self, start: int, mappings: Sequence[Mapping]) -> ChainResult:
        """Replace every mapping from ``start`` on and recompose the suffix."""
        if not 0 <= start <= len(self._mappings):
            raise EngineError(
                f"suffix start {start} out of range for a chain of "
                f"{len(self._mappings)} mappings"
            )
        candidate = self._mappings[:start] + list(mappings)
        self._apply("replace_suffix", start, candidate)
        return self.result

    def pop(self) -> ChainResult:
        """Undo the last edit (drop the final mapping) and recompose."""
        if len(self._mappings) < 2:
            raise EngineError("cannot pop below a single-mapping chain")
        self._apply("pop", len(self._mappings) - 1, self._mappings[:-1])
        return self.result

    def recompose(self) -> ChainResult:
        """Recompose the current chain (a no-delta replay; fully reused)."""
        self._recompose("recompose", index=0)
        return self.result

    # -- statistics ------------------------------------------------------------

    def total_replayed_hops(self) -> int:
        """Hops actually recomputed over the whole session."""
        return sum(event.replayed_hops for event in self.events)

    def total_hops(self) -> int:
        """Hops a from-scratch recomposition after every edit would have run."""
        return sum(event.total_hops for event in self.events)

    def summary(self) -> str:
        """A short human-readable summary of the session's replay savings."""
        total = self.total_hops()
        replayed = self.total_replayed_hops()
        lines = [
            f"{len(self.events)} recompositions over a chain of "
            f"{len(self._mappings)} mappings",
            f"replayed {replayed}/{total} hops "
            f"({1.0 - replayed / total if total else 0.0:.0%} reused)",
        ]
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._mappings):
            raise EngineError(
                f"mapping index {index} out of range for a chain of "
                f"{len(self._mappings)} mappings"
            )

    def _apply(self, kind: str, index: int, candidate: List[Mapping]) -> None:
        validate_chain(candidate)
        self._mappings = candidate
        self._recompose(kind, index)

    def _recompose(self, kind: str, index: int) -> None:
        started = time.perf_counter()
        result = self.composer.compose_chain(tuple(self._mappings))
        self._result = result
        self.events.append(
            SessionEvent(
                kind=kind,
                index=index,
                chain_length=len(self._mappings),
                total_hops=len(result.hops),
                replayed_hops=result.replayed_hops,
                reused_hops=result.reused_hops,
                elapsed_seconds=time.perf_counter() - started,
            )
        )

    def __repr__(self) -> str:
        return (
            f"<EvolutionSession: {len(self._mappings)} mappings, "
            f"{len(self.events)} recompositions>"
        )
