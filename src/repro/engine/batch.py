"""Batch execution of composition problems over ``concurrent.futures``.

The value of a best-effort composition algorithm shows at scale: hundreds of
problems drawn from an evolution simulator, figure sweeps re-running the same
scenario over a parameter grid, regression suites over a problem corpus.
:class:`BatchComposer` runs such workloads through one engine with

* selectable backends — ``serial`` (plain loop), ``thread`` and ``process``
  pools (``auto`` picks per the machine's CPU count),
* failure isolation: one crashing problem is recorded and the rest of the
  batch proceeds,
* a soft per-problem timeout: problems whose execution exceeds the budget are
  reported as timed out and their result discarded (cooperative — CPython
  threads cannot be preempted), and
* a shared expression cache (:mod:`repro.algebra.interning`) so sub-expressions
  repeated across the batch are simplified once.

``BatchComposer.map`` is the generic engine; ``run`` (composition problems)
and ``run_chains`` (mapping chains) are the composition-aware entry points the
experiment drivers build on.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import enum
import gc
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.algebra.interning import ExpressionCache, activate_cache, shared_expression_cache
from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.engine.chain import ChainResult, compose_chain
from repro.engine.checkpoint import ChainCheckpoint, CheckpointStore
from repro.exceptions import EngineError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping

__all__ = [
    "BatchBackend",
    "BatchConfig",
    "ProblemStatus",
    "BatchItemResult",
    "BatchReport",
    "BatchComposer",
]


class BatchBackend(str, enum.Enum):
    """Execution backend of a :class:`BatchComposer`."""

    AUTO = "auto"
    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"


class ProblemStatus(enum.Enum):
    """Terminal state of one problem within a batch."""

    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class BatchConfig:
    """Tunable parameters of a :class:`BatchComposer`.

    Attributes
    ----------
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"`` (the default),
        which resolves to ``serial``: composition is GIL-bound pure Python, so
        threads cannot speed it up and process pools only pay off for large
        problems — pick ``thread`` (GIL-releasing jobs) or ``process``
        (big CPU-bound jobs) explicitly when they fit the workload.
    max_workers:
        Pool size for the thread/process backends (``None`` = executor default).
    timeout_seconds:
        Soft per-problem wall-clock budget; a problem that runs longer is
        reported as :attr:`ProblemStatus.TIMED_OUT` and its result discarded.
        ``None`` disables the budget.
    composer_config:
        The :class:`ComposerConfig` used by ``run`` / ``run_chains``.
    share_expression_cache:
        Activate one :class:`ExpressionCache` across the whole batch so
        repeated sub-expressions are simplified once (per worker process when
        the ``process`` backend is used).
    cache_max_entries:
        Size bound of the shared cache.
    share_checkpoints:
        Keep one hop-checkpoint store (:mod:`repro.engine.checkpoint`) on the
        composer and thread it through every ``run_chains`` job, so chains
        sharing a fingerprinted prefix — within one batch or across
        successive batches on the same composer, the schema-evolution
        edit-replay pattern — recompose incrementally.  This applies to the
        ``serial`` and ``thread`` backends; ``process`` workers keep private
        per-batch stores (pre-seeded from the composer's store, which the
        parent can fill via ``composer.checkpoints.seed(...)``), because
        checkpoints recorded in a worker die with that batch's pool — the
        same memory-isolation trade the expression cache makes.
    checkpoint_max_entries:
        Size bound of the checkpoint store.
    pause_gc:
        Disable the cyclic garbage collector for the duration of the batch
        (re-enabled afterwards; no forced collection — composition allocates
        (almost) no reference cycles, so refcounting reclaims the batch's
        garbage and the next natural collection handles the rest).
        Composition allocates millions of small immutable nodes and the
        shared cache keeps large long-lived tables; periodic full collections
        re-scan those tables for cycles they cannot contain.  Set to
        ``False`` if jobs create reference cycles that must be reclaimed
        mid-batch.
    fail_fast:
        Re-raise the first problem failure instead of isolating it.
    """

    backend: str = BatchBackend.AUTO.value
    max_workers: Optional[int] = None
    timeout_seconds: Optional[float] = None
    composer_config: ComposerConfig = field(default_factory=ComposerConfig)
    share_expression_cache: bool = True
    cache_max_entries: int = 200_000
    share_checkpoints: bool = True
    checkpoint_max_entries: int = 4096
    pause_gc: bool = True
    fail_fast: bool = False

    def __post_init__(self) -> None:
        try:
            BatchBackend(self.backend)
        except ValueError:
            raise EngineError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{[b.value for b in BatchBackend]}"
            ) from None
        if self.max_workers is not None and self.max_workers < 1:
            raise EngineError("max_workers must be positive")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise EngineError("timeout_seconds must be positive")

    def resolved_backend(self) -> str:
        """The concrete backend ``auto`` resolves to."""
        if self.backend != BatchBackend.AUTO.value:
            return self.backend
        return BatchBackend.SERIAL.value


@dataclass(frozen=True)
class BatchItemResult:
    """The terminal record of one problem of a batch."""

    index: int
    label: str
    status: ProblemStatus
    result: Optional[object] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ProblemStatus.SUCCEEDED

    def __repr__(self) -> str:
        return f"<BatchItemResult #{self.index} {self.label!r}: {self.status.value}>"


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one batch run."""

    items: Tuple[BatchItemResult, ...]
    backend: str
    elapsed_seconds: float
    cache_stats: Optional[dict] = None
    checkpoint_stats: Optional[dict] = None

    # -- aggregate statistics ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.items)

    @property
    def succeeded(self) -> Tuple[BatchItemResult, ...]:
        return tuple(item for item in self.items if item.status is ProblemStatus.SUCCEEDED)

    @property
    def failed(self) -> Tuple[BatchItemResult, ...]:
        return tuple(item for item in self.items if item.status is ProblemStatus.FAILED)

    @property
    def timed_out(self) -> Tuple[BatchItemResult, ...]:
        return tuple(item for item in self.items if item.status is ProblemStatus.TIMED_OUT)

    @property
    def all_succeeded(self) -> bool:
        return len(self.succeeded) == len(self.items)

    def results(self) -> List[object]:
        """Payloads of the successful items, in submission order."""
        return [item.result for item in self.succeeded]

    def throughput(self) -> float:
        """Problems completed per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.items) / self.elapsed_seconds

    def total_problem_seconds(self) -> float:
        """Sum of per-problem execution times (>= wall time under parallelism)."""
        return sum(item.elapsed_seconds for item in self.items)

    def mean_fraction_eliminated(self) -> float:
        """Mean ``fraction_eliminated`` over successful composition payloads."""
        fractions = [
            item.result.fraction_eliminated
            for item in self.succeeded
            if hasattr(item.result, "fraction_eliminated")
        ]
        return sum(fractions) / len(fractions) if fractions else 1.0

    def raise_failures(self) -> None:
        """Raise :class:`EngineError` summarizing failures, if any occurred."""
        problems = [item for item in self.items if not item.ok]
        if not problems:
            return
        first = problems[0]
        raise EngineError(
            f"{len(problems)}/{len(self.items)} batch problems did not succeed; "
            f"first: #{first.index} {first.label!r} ({first.status.value})"
            + (f"\n{first.error}" if first.error else "")
        )

    def summary(self) -> str:
        """A short human-readable summary of the batch."""
        lines = [
            f"{len(self.succeeded)}/{len(self.items)} problems succeeded "
            f"on the {self.backend} backend in {self.elapsed_seconds:.2f} s "
            f"({self.throughput():.1f} problems/s)",
        ]
        if self.failed:
            lines.append(f"failed: {', '.join(item.label for item in self.failed)}")
        if self.timed_out:
            lines.append(f"timed out: {', '.join(item.label for item in self.timed_out)}")
        if self.cache_stats is not None:
            lines.append(
                f"expression cache: {self.cache_stats['hits']:.0f} hits / "
                f"{self.cache_stats['misses']:.0f} misses "
                f"({self.cache_stats['hit_rate']:.0%})"
            )
        if self.checkpoint_stats is not None:
            lines.append(
                f"hop checkpoints: {self.checkpoint_stats['entries']:.0f} recorded, "
                f"{self.checkpoint_stats['hits']:.0f} prefix reuses"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<BatchReport: {len(self.succeeded)}/{len(self.items)} succeeded "
            f"via {self.backend}>"
        )


# ---------------------------------------------------------------------------
# Worker functions (module-level so the process backend can pickle them)
# ---------------------------------------------------------------------------


def _timed_call(
    fn: Callable[[object], object], item: object
) -> Tuple[object, float, bool]:
    """Run one job, timing it and capturing (not raising) its failure.

    Returns ``(payload_or_exception, elapsed_seconds, succeeded)``.  Catching
    inside the worker keeps the measured time the job's own runtime (never the
    collector's queue wait) and lets the process backend ship the exception
    object back across the pickle boundary.
    """
    started = time.perf_counter()
    try:
        payload = fn(item)
    except Exception as exc:  # noqa: BLE001 - failure isolation by design
        return exc, time.perf_counter() - started, False
    return payload, time.perf_counter() - started, True


def _compose_job(args: Tuple[CompositionProblem, ComposerConfig]) -> object:
    problem, config = args
    return compose(problem, config)


#: Per-process checkpoint store installed by the process-pool initializer
#: (``None`` in the parent process and in workers without checkpoint sharing).
_worker_checkpoints: Optional[CheckpointStore] = None


def _compose_chain_job(
    args: Tuple[Sequence[Mapping], ComposerConfig, Optional[CheckpointStore]]
) -> ChainResult:
    mappings, config, checkpoints = args
    if checkpoints is None:
        # Process backend: the store does not travel with the job — each
        # worker uses its own pre-seeded store installed by the initializer.
        checkpoints = _worker_checkpoints
    return compose_chain(mappings, config, checkpoints=checkpoints)


@contextlib.contextmanager
def _gc_paused(enabled: bool):
    """Pause the cyclic collector for a batch run (see ``BatchConfig.pause_gc``).

    No forced collection afterwards: composition allocates (almost) no
    reference cycles, so refcounting reclaims the batch's garbage and the next
    natural collection handles the rest.
    """
    if not enabled or not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _process_pool_initializer(
    cache_max_entries: int,
    seeds: Tuple = (),
    checkpoint_max_entries: int = 0,
    checkpoint_seeds: Tuple[ChainCheckpoint, ...] = (),
) -> None:
    # Each worker process gets its own cache: memory is not shared across
    # processes, but within one worker the batch's repetition still pays off.
    # ``seeds`` are representative expressions from the batch (constraint
    # sides); interning them up front ships a pre-warmed cache to the worker,
    # so the first problems start from shared, summarized structure.
    if cache_max_entries > 0:
        cache = activate_cache(ExpressionCache(max_entries=cache_max_entries))
        for expression in seeds:
            cache.intern(expression)
    # Checkpoints are pre-seeded the same way: tokens are deterministic
    # digests, so the parent's recorded prefixes are recognized verbatim in
    # the worker and chain jobs resume after them.
    global _worker_checkpoints
    if checkpoint_max_entries > 0:
        _worker_checkpoints = CheckpointStore(max_entries=checkpoint_max_entries)
        _worker_checkpoints.seed(checkpoint_seeds)
    else:
        _worker_checkpoints = None


class BatchComposer:
    """Runs many composition problems through one configured engine.

    The composer is stateful across runs: with ``share_checkpoints`` enabled
    it keeps one hop-checkpoint store, so successive ``run_chains`` batches
    over evolving chains (the schema-editing pattern: every batch is the
    previous chain plus a delta) recompose incrementally on the serial and
    thread backends (see ``BatchConfig.share_checkpoints`` for the process
    backend's worker-local behaviour).
    """

    def __init__(
        self,
        config: Optional[BatchConfig] = None,
        checkpoints: Optional[CheckpointStore] = None,
    ):
        """``checkpoints`` overrides the composer's own store — pass a
        :class:`~repro.catalog.checkpoints.PersistentCheckpointStore` (or any
        other externally owned store) to share recorded hops beyond this
        composer's lifetime.  An explicit store wins over the
        ``share_checkpoints`` setting (it is threaded through ``run_chains``
        either way); process workers still keep private pre-seeded copies."""
        self.config = config or BatchConfig()
        if checkpoints is not None:
            self.checkpoints: Optional[CheckpointStore] = checkpoints
        else:
            self.checkpoints = (
                CheckpointStore(max_entries=self.config.checkpoint_max_entries)
                if self.config.share_checkpoints
                else None
            )

    # -- generic engine --------------------------------------------------------

    def map(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        labels: Optional[Sequence[str]] = None,
        seeds: Tuple = (),
        checkpoint_seeds: Tuple = (),
    ) -> BatchReport:
        """Apply ``fn`` to every item with the configured backend.

        Results are reported in submission order regardless of completion
        order.  With the ``process`` backend, ``fn`` and the items must be
        picklable (module-level functions; the built-in ``run`` and
        ``run_chains`` jobs are) and ``seeds`` (representative expressions
        gathered by the composition-aware entry points) pre-warm each worker's
        expression cache; ``checkpoint_seeds`` pre-warm each worker's
        hop-checkpoint store the same way.
        """
        if labels is None:
            labels = [f"problem[{index}]" for index in range(len(items))]
        elif len(labels) != len(items):
            raise EngineError("labels must match items one-to-one")

        backend = self.config.resolved_backend()
        started = time.perf_counter()
        cache_stats: Optional[dict] = None

        with _gc_paused(self.config.pause_gc):
            if backend == BatchBackend.PROCESS.value:
                results = self._map_pool(
                    fn,
                    items,
                    labels,
                    process=True,
                    seeds=seeds,
                    checkpoint_seeds=checkpoint_seeds,
                )
            elif self.config.share_expression_cache:
                cache = ExpressionCache(max_entries=self.config.cache_max_entries)
                with shared_expression_cache(cache):
                    if backend == BatchBackend.THREAD.value:
                        results = self._map_pool(fn, items, labels, process=False)
                    else:
                        results = self._map_serial(fn, items, labels)
                cache_stats = cache.stats()
            else:
                if backend == BatchBackend.THREAD.value:
                    results = self._map_pool(fn, items, labels, process=False)
                else:
                    results = self._map_serial(fn, items, labels)

        return BatchReport(
            items=tuple(results),
            backend=backend,
            elapsed_seconds=time.perf_counter() - started,
            cache_stats=cache_stats,
            # Like cache_stats, checkpoint counters are only reported when the
            # parent process can observe them: process workers keep private
            # stores, so the parent's counters would misstate what happened.
            checkpoint_stats=(
                self.checkpoints.stats()
                if self.checkpoints is not None
                and backend != BatchBackend.PROCESS.value
                else None
            ),
        )

    def _classify(
        self, index: int, label: str, payload: object, elapsed: float
    ) -> BatchItemResult:
        timeout = self.config.timeout_seconds
        if timeout is not None and elapsed > timeout:
            return BatchItemResult(
                index=index,
                label=label,
                status=ProblemStatus.TIMED_OUT,
                error=f"exceeded the per-problem budget of {timeout} s",
                elapsed_seconds=elapsed,
            )
        return BatchItemResult(
            index=index,
            label=label,
            status=ProblemStatus.SUCCEEDED,
            result=payload,
            elapsed_seconds=elapsed,
        )

    def _failure(self, index: int, label: str, exc: Exception, elapsed: float) -> BatchItemResult:
        if self.config.fail_fast:
            raise exc
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()
        return BatchItemResult(
            index=index,
            label=label,
            status=ProblemStatus.FAILED,
            error=detail,
            elapsed_seconds=elapsed,
        )

    def _map_serial(
        self, fn: Callable[[object], object], items: Sequence[object], labels: Sequence[str]
    ) -> List[BatchItemResult]:
        results = []
        for index, (item, label) in enumerate(zip(items, labels)):
            payload, elapsed, succeeded = _timed_call(fn, item)
            if succeeded:
                results.append(self._classify(index, label, payload, elapsed))
            else:
                results.append(self._failure(index, label, payload, elapsed))
        return results

    def _map_pool(
        self,
        fn: Callable[[object], object],
        items: Sequence[object],
        labels: Sequence[str],
        process: bool,
        seeds: Tuple = (),
        checkpoint_seeds: Tuple = (),
    ) -> List[BatchItemResult]:
        if process:
            use_initializer = (
                self.config.share_expression_cache or self.config.share_checkpoints
            )
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.max_workers,
                initializer=_process_pool_initializer if use_initializer else None,
                initargs=(
                    self.config.cache_max_entries
                    if self.config.share_expression_cache
                    else 0,
                    seeds,
                    self.config.checkpoint_max_entries
                    if self.config.share_checkpoints
                    else 0,
                    checkpoint_seeds,
                )
                if use_initializer
                else (),
            )
        else:
            executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.config.max_workers
            )
        results: List[BatchItemResult] = []
        try:
            futures = [executor.submit(_timed_call, fn, item) for item in items]
            for index, (future, label) in enumerate(zip(futures, labels)):
                try:
                    payload, elapsed, succeeded = future.result()
                except Exception as exc:
                    # The pool itself failed (broken process, unpicklable
                    # job); the job's own exceptions come back as payloads.
                    payload, elapsed, succeeded = exc, 0.0, False
                if succeeded:
                    results.append(self._classify(index, label, payload, elapsed))
                else:
                    results.append(self._failure(index, label, payload, elapsed))
        except BaseException:
            # fail_fast (or a caller interrupt): drop the queued jobs so the
            # shutdown below does not first drain the whole batch.
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            executor.shutdown(wait=True)
        return results

    # -- composition-aware entry points ---------------------------------------

    #: Bound on the number of constraint-side expressions shipped to process
    #: workers as cache seeds (keeps the pickled initializer payload small).
    MAX_PROCESS_SEEDS = 512

    #: Bound on the number of hop checkpoints shipped to process workers
    #: (deepest first — a deep prefix subsumes every shallower one; the
    #: checkpoints carry whole constraint sets, so the bound is tighter).
    MAX_PROCESS_CHECKPOINT_SEEDS = 64

    def _collect_seeds(self, constraint_sets) -> Tuple:
        """Unique constraint sides to pre-warm process-worker caches with."""
        if self.config.resolved_backend() != BatchBackend.PROCESS.value or (
            not self.config.share_expression_cache
        ):
            return ()
        seeds = {}
        for constraints in constraint_sets:
            for constraint in constraints:
                for side in (constraint.left, constraint.right):
                    if side not in seeds:
                        seeds[side] = None
                        if len(seeds) >= self.MAX_PROCESS_SEEDS:
                            return tuple(seeds)
        return tuple(seeds)

    def run_partitioned(self, problems: Sequence[CompositionProblem]) -> BatchReport:
        """Compose every problem with the cost-guided planner, running each
        problem's independent constraint-graph components as sub-tasks on this
        composer's backend (*intra*-problem parallelism, unlike :meth:`run`,
        which parallelizes across problems).

        The problems are walked in order; for each one, :func:`compose` plans
        the partition and fans the per-component eliminations out to the
        backend's pool (``serial`` composes components in-process).  Merging
        happens in plan order, so payloads are byte-identical across backends.
        A ``composer_config`` with ``elimination_order="fixed"`` is switched
        to ``"cost"`` for these runs — partitioning *is* the planner — and an
        explicit ``symbol_order`` is dropped with it (the planner computes
        its own order; the two cannot be combined).

        Accepts plain :class:`CompositionProblem` objects or objects with a
        ``problem`` attribute (e.g. the workload generator's
        ``PartitionedProblem``).  Payloads are :class:`CompositionResult`
        objects; per-problem failures and soft timeouts are isolated exactly
        as in :meth:`map`.
        """
        config = self.config.composer_config
        if config.elimination_order != "cost":
            config = replace(config, elimination_order="cost", symbol_order=None)
        unwrapped = [getattr(problem, "problem", problem) for problem in problems]
        labels = [
            problem.name or f"problem[{index}]"
            for index, problem in enumerate(unwrapped)
        ]
        backend = self.config.resolved_backend()
        started = time.perf_counter()
        cache_stats: Optional[dict] = None
        results: List[BatchItemResult] = []

        def run_all(executor) -> None:
            for index, (problem, label) in enumerate(zip(unwrapped, labels)):
                payload, elapsed, succeeded = _timed_call(
                    lambda item: compose(item, config, executor=executor), problem
                )
                if succeeded:
                    results.append(self._classify(index, label, payload, elapsed))
                else:
                    results.append(self._failure(index, label, payload, elapsed))

        cache: Optional[ExpressionCache] = None
        with _gc_paused(self.config.pause_gc), contextlib.ExitStack() as stack:
            executor = None
            if backend == BatchBackend.PROCESS.value:
                seeds = self._collect_seeds(
                    constraints
                    for problem in unwrapped
                    for constraints in (problem.sigma12, problem.sigma23)
                )
                warm_workers = self.config.share_expression_cache
                executor = stack.enter_context(
                    concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.config.max_workers,
                        initializer=_process_pool_initializer if warm_workers else None,
                        initargs=(self.config.cache_max_entries, seeds)
                        if warm_workers
                        else (),
                    )
                )
            elif backend == BatchBackend.THREAD.value:
                executor = stack.enter_context(
                    concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.config.max_workers
                    )
                )
            if self.config.share_expression_cache and backend != BatchBackend.PROCESS.value:
                # The module-level activation is visible to the pool's worker
                # threads, so component sub-tasks share the cache too.
                cache = ExpressionCache(max_entries=self.config.cache_max_entries)
                stack.enter_context(shared_expression_cache(cache))
            run_all(executor)
        if cache is not None:
            cache_stats = cache.stats()

        return BatchReport(
            items=tuple(results),
            backend=backend,
            elapsed_seconds=time.perf_counter() - started,
            cache_stats=cache_stats,
        )

    def run(self, problems: Sequence[CompositionProblem]) -> BatchReport:
        """Compose every problem; payloads are :class:`CompositionResult` objects."""
        labels = [
            problem.name or f"problem[{index}]" for index, problem in enumerate(problems)
        ]
        jobs = [(problem, self.config.composer_config) for problem in problems]
        seeds = self._collect_seeds(
            constraints
            for problem in problems
            for constraints in (problem.sigma12, problem.sigma23)
        )
        return self.map(_compose_job, jobs, labels=labels, seeds=seeds)

    def run_chains(self, chains: Sequence[Sequence[Mapping]]) -> BatchReport:
        """Compose every chain of mappings; payloads are :class:`ChainResult` objects.

        Accepts plain sequences of mappings or objects with a ``mappings``
        attribute (e.g. the workload generator's ``ChainProblem``).  With
        ``share_checkpoints`` enabled, every serial/thread job records and
        reuses hop checkpoints in the composer's store — within this batch
        and across earlier batches on the same composer — so chains that
        extend or edit previously composed chains replay only the changed
        suffix.  Process workers keep private per-batch stores pre-seeded
        with the composer's deepest recorded checkpoints; their new
        checkpoints stay in the worker (like the expression cache), so
        cross-batch reuse on the process backend requires seeding the
        composer's store explicitly (``composer.checkpoints.seed(...)``).
        """
        process = self.config.resolved_backend() == BatchBackend.PROCESS.value
        shared_store = None if process else self.checkpoints
        labels = []
        jobs = []
        for index, chain in enumerate(chains):
            label = getattr(chain, "name", "") or f"chain[{index}]"
            mappings = getattr(chain, "mappings", chain)
            labels.append(label)
            jobs.append((tuple(mappings), self.config.composer_config, shared_store))
        seeds = self._collect_seeds(
            mapping.constraints for mappings, _, _ in jobs for mapping in mappings
        )
        checkpoint_seeds: Tuple = ()
        if process and self.checkpoints is not None:
            # A persistent store freshly constructed after a restart has an
            # empty in-memory table; pull its disk entries in first so the
            # deepest-first snapshot below actually sees them and process
            # workers resume recorded prefixes across restarts too.
            warm = getattr(self.checkpoints, "warm", None)
            if warm is not None:
                warm()
            checkpoint_seeds = self.checkpoints.snapshot(
                limit=self.MAX_PROCESS_CHECKPOINT_SEEDS
            )
        return self.map(
            _compose_chain_job,
            jobs,
            labels=labels,
            seeds=seeds,
            checkpoint_seeds=checkpoint_seeds,
        )
