"""Seeded randomized workload generation for the batch/chain engine.

A *chain problem* is a sequence of mappings ``σ1 → σ2 → … → σn`` produced by
driving the schema-evolution simulator: every hop applies one randomly drawn
primitive of Figure 1 and then renames every surviving relation (an equality
constraint links each relation to its fresh copy), so consecutive signatures
are fully disjoint and every hop consumes its entire input schema — exactly
the shape chained composition must eliminate.

All randomness flows through one seed: the same :class:`WorkloadConfig`
always generates the same problems, making stress scenarios reproducible
from a single number.  Diversity comes from per-problem variation of chain
length, relation arities, keys (hence vertical partitioning and, through
right compose, Skolem depth) and the primitive mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.algebra.evaluation import evaluate
from repro.algebra.expressions import Relation
from repro.algebra.traversal import relation_names
from repro.constraints.constraint import Constraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.model import RelationNamer, SchemaState, SimulatedRelation
from repro.evolution.simulator import SchemaEvolutionSimulator
from repro.exceptions import EngineError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.instance import Instance
from repro.schema.signature import RelationSchema, Signature

__all__ = [
    "WorkloadConfig",
    "ChainProblem",
    "ChainGrower",
    "PartitionedProblem",
    "generate_chain_problem",
    "generate_workload",
    "generate_partitioned_problem",
    "generate_partitioned_workload",
    "partitioned_forward_instance",
    "pairwise_problems",
    "FORWARD_PRIMITIVES",
    "forward_event_vector",
    "forward_instance",
]

#: Primitives whose constraints let produced relations be *computed* from
#: their inputs (no backward constraint needs inverting), so satisfying
#: instances of a whole chain can be built by forward propagation.
FORWARD_PRIMITIVES = ("AR", "DR", "DA", "Df", "Hf", "Nf", "Sub", "Sup")


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a randomized composition workload.

    Attributes
    ----------
    num_problems:
        Number of chain problems to generate.
    min_chain_length / max_chain_length:
        Range (inclusive) from which each problem's chain length is drawn.
    schema_size:
        Number of relations in each problem's initial schema.
    min_arity / max_arity:
        Arity range of generated relations; each problem draws its own
        ``max_arity`` from this range so problems differ in width.
    keys_fraction:
        Fraction of problems generated with keys enabled (unlocking the
        vertical-partitioning primitives and key constraints).
    event_vector:
        Primitive weights used by the simulator (``None`` = paper default).
    num_components:
        Number of independent sub-problems merged into each problem by
        :func:`generate_partitioned_workload` — each component's relations
        are namespaced apart, so no constraint of the merged problem links
        two components and its symbol co-occurrence graph has at least this
        many connected components (the shape the cost-guided planner
        partitions; symbols that happen not to co-occur *within* a component
        split it further).  Ignored by :func:`generate_workload`.
    seed:
        Master seed; every problem derives its own sub-seed from it.
    """

    num_problems: int = 50
    min_chain_length: int = 4
    max_chain_length: int = 6
    schema_size: int = 4
    min_arity: int = 2
    max_arity: int = 6
    keys_fraction: float = 0.3
    event_vector: Optional[EventVector] = None
    num_components: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_problems < 1:
            raise EngineError("num_problems must be positive")
        if self.min_chain_length < 2 or self.max_chain_length < self.min_chain_length:
            raise EngineError("chain length range must be valid and at least 2")
        if self.schema_size < 2:
            raise EngineError("schema_size must be at least 2")
        if self.min_arity < 1 or self.max_arity < self.min_arity:
            raise EngineError("invalid arity range")
        if not 0.0 <= self.keys_fraction <= 1.0:
            raise EngineError("keys_fraction must be in [0, 1]")
        if self.num_components < 1:
            raise EngineError("num_components must be positive")


@dataclass(frozen=True)
class ChainProblem:
    """One generated chain of mappings, plus the provenance to regenerate it."""

    name: str
    seed: int
    mappings: Tuple[Mapping, ...]
    primitives: Tuple[str, ...] = ()

    @property
    def chain_length(self) -> int:
        return len(self.mappings)

    def constraint_count(self) -> int:
        return sum(mapping.constraint_count() for mapping in self.mappings)

    def operator_count(self) -> int:
        return sum(mapping.operator_count() for mapping in self.mappings)

    def __repr__(self) -> str:
        return (
            f"<ChainProblem {self.name!r}: {self.chain_length} hops, "
            f"{self.constraint_count()} constraints>"
        )


def _rename_survivors(
    state: SchemaState,
    survivors: Sequence[SimulatedRelation],
    namer: RelationNamer,
) -> Tuple[List[SimulatedRelation], List[Constraint]]:
    """Fresh copies of the surviving relations plus the equalities linking them."""
    copies: List[SimulatedRelation] = []
    equalities: List[Constraint] = []
    for relation in survivors:
        copy = SimulatedRelation(namer.fresh(), relation.arity, relation.key, "copy")
        copies.append(copy)
        equalities.append(
            EqualityConstraint(
                relation.to_schema().to_expression(), copy.to_schema().to_expression()
            )
        )
    return copies, equalities


class ChainGrower:
    """Grows a chain of composable mappings one evolution hop at a time.

    The batch generator builds whole chains up front;
    :class:`~repro.engine.incremental.EvolutionSession` wants the opposite
    shape — a designer applying edits one by one, each producing the next
    mapping of the chain.  A grower keeps the simulator and renamer state
    between hops, so :meth:`grow` can be called whenever the session needs
    another edit, and the produced mappings always splice onto the chain so
    far (each hop consumes its entire input schema, exactly like the
    generator's chains).
    """

    def __init__(
        self,
        seed: int,
        schema_size: int = 4,
        simulator_config: Optional[SimulatorConfig] = None,
        event_vector: Optional[EventVector] = None,
    ):
        simulator_config = simulator_config or SimulatorConfig(min_arity=2, max_arity=5)
        self._simulator = SchemaEvolutionSimulator(
            seed=seed, config=simulator_config, event_vector=event_vector
        )
        self._copy_namer = RelationNamer(prefix="C")
        self._state = self._simulator.random_schema(schema_size)
        self.primitives: List[str] = []

    @property
    def state(self) -> SchemaState:
        """The current schema (the next mapping's input side)."""
        return self._state

    def grow(self) -> Mapping:
        """Apply one random edit and return the mapping it induces."""
        before = self._state
        step = self._simulator.apply_random_edit(before)
        self.primitives.append(step.primitive)

        produced_names = set(step.produced_names)
        survivors = [r for r in step.after.relations if r.name not in produced_names]
        copies, equalities = _rename_survivors(before, survivors, self._copy_namer)
        after = SchemaState(tuple(copies) + tuple(step.produced))
        self._state = after

        return Mapping(
            input_signature=before.signature(),
            output_signature=after.signature(),
            constraints=ConstraintSet(tuple(step.constraints) + tuple(equalities)),
        )

    def grow_many(self, count: int) -> List[Mapping]:
        """Apply ``count`` edits and return their mappings, in order."""
        return [self.grow() for _ in range(count)]


def generate_chain_problem(
    seed: int,
    chain_length: int = 4,
    schema_size: int = 4,
    simulator_config: Optional[SimulatorConfig] = None,
    event_vector: Optional[EventVector] = None,
    name: str = "",
) -> ChainProblem:
    """Generate one chain of ``chain_length`` mappings from the evolution primitives.

    Every hop applies one random primitive and renames all surviving relations,
    so the hop's input and output signatures are disjoint and chained
    composition must eliminate the entire intermediate schema at every step.
    """
    if chain_length < 2:
        raise EngineError("a chain problem needs at least two mappings")
    grower = ChainGrower(
        seed=seed,
        schema_size=schema_size,
        simulator_config=simulator_config,
        event_vector=event_vector,
    )
    mappings = grower.grow_many(chain_length)
    return ChainProblem(
        name=name or f"chain(seed={seed}, length={chain_length})",
        seed=seed,
        mappings=tuple(mappings),
        primitives=tuple(grower.primitives),
    )


def generate_workload(config: Optional[WorkloadConfig] = None) -> List[ChainProblem]:
    """Generate the full workload described by ``config``, deterministically."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    problems: List[ChainProblem] = []
    for index in range(config.num_problems):
        problem_seed = rng.randrange(2**31)
        chain_length = rng.randint(config.min_chain_length, config.max_chain_length)
        keys_enabled = rng.random() < config.keys_fraction
        max_arity = rng.randint(max(config.min_arity, 3), config.max_arity)
        simulator_config = SimulatorConfig(
            keys_enabled=keys_enabled,
            min_arity=config.min_arity,
            max_arity=max_arity,
        )
        problems.append(
            generate_chain_problem(
                seed=problem_seed,
                chain_length=chain_length,
                schema_size=config.schema_size,
                simulator_config=simulator_config,
                event_vector=config.event_vector,
                name=f"workload[{index}](seed={problem_seed})",
            )
        )
    return problems


@dataclass(frozen=True)
class PartitionedProblem:
    """One multi-component composition problem plus its generating parts.

    ``problem`` merges ``components`` — independent two-mapping chains whose
    relation names are namespaced apart — into a single
    :class:`CompositionProblem`: no constraint mentions symbols of two
    different components, so the problem's symbol co-occurrence graph has at
    least ``len(components)`` connected components (symbols that do not
    co-occur within a component split it further).  The per-component chains
    are kept so satisfying instances can be built component-wise
    (:func:`partitioned_forward_instance`).
    """

    name: str
    seed: int
    problem: CompositionProblem
    components: Tuple[ChainProblem, ...]

    @property
    def num_components(self) -> int:
        return len(self.components)

    def __repr__(self) -> str:
        return (
            f"<PartitionedProblem {self.name!r}: {self.num_components} components, "
            f"{len(self.problem.all_constraints)} constraints>"
        )


def _prefixed_mapping(mapping: Mapping, prefix: str) -> Mapping:
    """Return ``mapping`` with every relation name namespaced under ``prefix``.

    Prefixed names are fresh (no generated name starts with a component
    prefix), so renaming one symbol at a time cannot capture another.
    """

    def prefixed(signature):
        return Signature(
            RelationSchema(prefix + schema.name, schema.arity, schema.key)
            for schema in signature.relations()
        )

    constraints = mapping.constraints
    for signature in (mapping.input_signature, mapping.output_signature):
        for schema in signature.relations():
            constraints = constraints.substituting(
                schema.name, Relation(prefix + schema.name, schema.arity)
            )
    return Mapping(
        input_signature=prefixed(mapping.input_signature),
        output_signature=prefixed(mapping.output_signature),
        constraints=constraints,
    )


def _merged_mapping(mappings: Sequence[Mapping]) -> Mapping:
    """Union of mappings over pairwise-disjoint signatures."""
    input_signature = mappings[0].input_signature
    output_signature = mappings[0].output_signature
    constraints = mappings[0].constraints
    for mapping in mappings[1:]:
        input_signature = input_signature.union(mapping.input_signature)
        output_signature = output_signature.union(mapping.output_signature)
        constraints = constraints.union(mapping.constraints)
    return Mapping(input_signature, output_signature, constraints)


def generate_partitioned_problem(
    seed: int,
    num_components: int = 4,
    schema_size: int = 3,
    simulator_config: Optional[SimulatorConfig] = None,
    event_vector: Optional[EventVector] = None,
    name: str = "",
) -> PartitionedProblem:
    """Generate one composition problem made of independent components.

    Each component is a two-mapping evolution chain generated on its own
    sub-seed; its relation names are prefixed ``P{i}_`` so the merged
    signatures stay disjoint and no constraint links two components.  The
    merged problem is exactly the shape the cost-guided planner partitions:
    composing it fixed-order drags every elimination across all components'
    constraints, while the planner composes each component on its own set.
    """
    if num_components < 1:
        raise EngineError("num_components must be positive")
    rng = random.Random(seed)
    components: List[ChainProblem] = []
    first_hops: List[Mapping] = []
    second_hops: List[Mapping] = []
    for index in range(num_components):
        component_seed = rng.randrange(2**31)
        chain = generate_chain_problem(
            seed=component_seed,
            chain_length=2,
            schema_size=schema_size,
            simulator_config=simulator_config,
            event_vector=event_vector,
        )
        prefix = f"P{index}_"
        mappings = tuple(_prefixed_mapping(m, prefix) for m in chain.mappings)
        components.append(
            ChainProblem(
                name=f"component[{index}](seed={component_seed})",
                seed=component_seed,
                mappings=mappings,
                primitives=chain.primitives,
            )
        )
        first_hops.append(mappings[0])
        second_hops.append(mappings[1])
    problem = CompositionProblem.from_mappings(
        _merged_mapping(first_hops),
        _merged_mapping(second_hops),
        name=name or f"partitioned(seed={seed}, components={num_components})",
    )
    return PartitionedProblem(
        name=problem.name,
        seed=seed,
        problem=problem,
        components=tuple(components),
    )


def generate_partitioned_workload(
    config: Optional[WorkloadConfig] = None,
) -> List[PartitionedProblem]:
    """Generate ``config.num_problems`` multi-component problems, deterministically.

    Every problem merges ``config.num_components`` independent components
    (see :func:`generate_partitioned_problem`); the remaining knobs vary
    per problem exactly as in :func:`generate_workload`.
    """
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    problems: List[PartitionedProblem] = []
    for index in range(config.num_problems):
        problem_seed = rng.randrange(2**31)
        keys_enabled = rng.random() < config.keys_fraction
        max_arity = rng.randint(max(config.min_arity, 3), config.max_arity)
        simulator_config = SimulatorConfig(
            keys_enabled=keys_enabled,
            min_arity=config.min_arity,
            max_arity=max_arity,
        )
        problems.append(
            generate_partitioned_problem(
                seed=problem_seed,
                num_components=config.num_components,
                schema_size=config.schema_size,
                simulator_config=simulator_config,
                event_vector=config.event_vector,
                name=f"partitioned[{index}](seed={problem_seed})",
            )
        )
    return problems


def partitioned_forward_instance(
    partitioned: PartitionedProblem,
    seed: int = 0,
    domain_size: int = 4,
    max_rows: int = 4,
) -> Instance:
    """A satisfying instance of a partitioned problem's combined signature.

    Built component-wise with :func:`forward_instance` (components share no
    relation names, so the union of per-component satisfying instances
    satisfies the merged constraint set).  Same restriction as
    :func:`forward_instance`: the components must be generated from
    :data:`FORWARD_PRIMITIVES`.
    """
    combined: Optional[Instance] = None
    for offset, component in enumerate(partitioned.components):
        instance = forward_instance(
            component, seed=seed + offset, domain_size=domain_size, max_rows=max_rows
        )
        combined = instance if combined is None else combined.merged_with(instance)
    return combined if combined is not None else Instance({})


def forward_event_vector() -> EventVector:
    """An event vector restricted to the forward-propagatable primitives.

    Workloads generated with this vector admit :func:`forward_instance`, which
    the semantic-equivalence tests use to obtain instances that *satisfy* the
    chain's constraints (random instances essentially never satisfy the rename
    equalities).
    """
    return EventVector.uniform(FORWARD_PRIMITIVES)


def forward_instance(
    chain: ChainProblem,
    seed: int = 0,
    domain_size: int = 4,
    max_rows: int = 4,
) -> Instance:
    """Build an instance over the chain's combined signature satisfying all hops.

    The first signature's relations are filled with random rows; every later
    relation is then *derived* by evaluating the defining side of the
    constraint that mentions it (equalities ``E = S`` assign ``S := eval(E)``;
    containments assign the unpopulated side to the populated side's value,
    which satisfies either direction).  Relations produced without constraints
    (the AR primitive) are filled randomly.

    Only works for chains generated from :data:`FORWARD_PRIMITIVES`; a chain
    using backward primitives (``Db``, ``Hb``, ``Vb``, …) raises
    :class:`EngineError` because their constraints cannot be solved by forward
    evaluation.
    """
    rng = random.Random(seed)
    contents = {}

    def random_rows(arity: int):
        return {
            tuple(rng.randrange(domain_size) for _ in range(arity))
            for _ in range(rng.randint(1, max_rows))
        }

    for schema in chain.mappings[0].input_signature.relations():
        contents[schema.name] = random_rows(schema.arity)

    for mapping in chain.mappings:
        pending = list(mapping.constraints)
        progress = True
        while pending and progress:
            progress = False
            for constraint in list(pending):
                assigned = _assign_forward(constraint, contents)
                if assigned:
                    pending.remove(constraint)
                    progress = True
        # Remaining constraints mention only populated relations (e.g. the Nf
        # inclusion between two already-derived projections): they hold by
        # construction and are re-checked by the callers' satisfaction tests.
        pending = [
            c
            for c in pending
            if any(name not in contents for name in c.relation_names())
        ]
        if pending:
            raise EngineError(
                "chain is not forward-propagatable; stuck on constraints "
                f"{[str(c) for c in pending]} (use forward_event_vector() "
                "when generating workloads for instance construction)"
            )
        for schema in mapping.output_signature.relations():
            if schema.name not in contents:
                contents[schema.name] = random_rows(schema.arity)

    combined = chain.mappings[0].input_signature
    for mapping in chain.mappings:
        combined = combined.union(mapping.output_signature)
    return Instance(contents, combined)


def _assign_forward(constraint: Constraint, contents: dict) -> bool:
    """Populate one bare unpopulated side of ``constraint`` if possible."""
    for target, source in ((constraint.left, constraint.right),
                           (constraint.right, constraint.left)):
        if not isinstance(target, Relation) or target.name in contents:
            continue
        if any(name not in contents for name in relation_names(source)):
            continue
        contents[target.name] = evaluate(source, Instance(contents))
        return True
    return False


def pairwise_problems(chain: ChainProblem) -> List[CompositionProblem]:
    """The chain's adjacent-hop composition problems (for ``BatchComposer.run``).

    Problem ``i`` composes mapping ``i`` with mapping ``i + 1`` in isolation —
    useful for exercising the pair-wise engine on generated workloads and for
    comparing hop-by-hop against full-chain composition.
    """
    problems = []
    for index in range(len(chain.mappings) - 1):
        problems.append(
            CompositionProblem.from_mappings(
                chain.mappings[index],
                chain.mappings[index + 1],
                name=f"{chain.name}/hop[{index}]",
            )
        )
    return problems
