"""n-ary chained composition: fold a list of mappings through COMPOSE.

A schema that evolves through versions ``σ1 → σ2 → … → σn`` yields a chain of
mappings ``m12, m23, …, m(n-1)(n)``; the mapping from the first version to the
last is the composition ``m12 ∘ m23 ∘ … ∘ m(n-1)(n)``.  Because COMPOSE is
best-effort, every hop may leave residual intermediate symbols behind;
:func:`compose_chain` threads those residuals forward — by default it keeps
retrying them as part of the next hop's intermediate signature, exactly as the
paper's schema-editing scenario retries leftovers after every edit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.interning import ExpressionCache
    from repro.engine.checkpoint import CheckpointStore

from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.compose.result import CompositionResult
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import EngineError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature

__all__ = ["ChainHop", "ChainResult", "compose_chain", "validate_chain"]


@dataclass(frozen=True)
class ChainHop:
    """The outcome of folding one more mapping into the running composition.

    Attributes
    ----------
    index:
        0-based hop number; hop ``i`` composes the accumulated mapping with
        ``mappings[i + 1]`` of the chain.
    result:
        The full :class:`CompositionResult` of this hop, including per-symbol
        elimination outcomes.
    attempted_symbols / eliminated_symbols / residual_symbols:
        The intermediate symbols this hop tried to eliminate, the ones it
        removed, and the ones that survive into the next hop.
    elapsed_seconds:
        Wall-clock time of the hop: problem assembly plus composition.
    assembly_seconds:
        The share of ``elapsed_seconds`` spent assembling the hop's
        :class:`CompositionProblem` (signature unions, constraint-set
        validation) before COMPOSE ran; ``elapsed_seconds -
        assembly_seconds`` is the composition proper, and
        ``result.phase_seconds`` breaks that down further.
    """

    index: int
    result: CompositionResult
    attempted_symbols: Tuple[str, ...]
    eliminated_symbols: Tuple[str, ...]
    residual_symbols: Tuple[str, ...]
    elapsed_seconds: float
    assembly_seconds: float = 0.0

    @property
    def is_complete(self) -> bool:
        """``True`` iff the hop eliminated every symbol it attempted."""
        return not self.residual_symbols

    @property
    def compose_seconds(self) -> float:
        """Wall-clock time of the composition alone (assembly excluded)."""
        return self.elapsed_seconds - self.assembly_seconds

    @property
    def phase_seconds(self) -> Tuple[Tuple[str, float], ...]:
        """The composition's per-phase buckets (see :mod:`repro.compose.phases`)."""
        return self.result.phase_seconds

    def __repr__(self) -> str:
        return (
            f"<ChainHop #{self.index}: {len(self.eliminated_symbols)}/"
            f"{len(self.attempted_symbols)} eliminated>"
        )


@dataclass(frozen=True)
class ChainResult:
    """The outcome of composing a whole chain of mappings.

    Attributes
    ----------
    sigma_first / sigma_last:
        The outermost signatures of the chain.
    residual_signature:
        The intermediate symbols that survived every elimination attempt
        (empty for a perfect composition).
    constraints:
        The final constraint set over ``σ_first ∪ residual ∪ σ_last``.
    hops:
        Per-hop records, in composition order (``len(mappings) - 1`` entries).
    elapsed_seconds:
        Total wall-clock time of the chained composition.
    reused_hops:
        Number of leading hops restored from a checkpoint store instead of
        being recomputed (0 without a store; their :class:`ChainHop` records —
        including timings — are the originals).
    """

    sigma_first: Signature
    sigma_last: Signature
    residual_signature: Signature
    constraints: ConstraintSet
    hops: Tuple[ChainHop, ...]
    elapsed_seconds: float
    reused_hops: int = 0

    # -- derived statistics --------------------------------------------------------

    @property
    def replayed_hops(self) -> int:
        """Number of hops actually recomputed by this call."""
        return len(self.hops) - self.reused_hops

    @property
    def is_complete(self) -> bool:
        """``True`` iff no intermediate symbol survived the whole chain."""
        return len(self.residual_signature) == 0

    @property
    def residual_symbols(self) -> Tuple[str, ...]:
        """Names of the surviving intermediate symbols."""
        return self.residual_signature.names()

    @property
    def chain_length(self) -> int:
        """Number of mappings in the composed chain."""
        return len(self.hops) + 1

    @property
    def fraction_eliminated(self) -> float:
        """Fraction of distinct intermediate symbols eliminated over the chain.

        A symbol retried over several hops counts once; it is eliminated iff
        it does not survive into the final result.
        """
        attempted = set()
        for hop in self.hops:
            attempted.update(hop.attempted_symbols)
        if not attempted:
            return 1.0
        return 1.0 - len(set(self.residual_symbols)) / len(attempted)

    def to_mapping(self) -> Mapping:
        """The composed mapping ``σ_first → σ_last`` (complete chains only)."""
        if not self.is_complete:
            raise EngineError(
                "chained composition is partial; residual symbols "
                f"{self.residual_symbols} survive (use to_mapping_with_residue)"
            )
        return Mapping(self.sigma_first, self.sigma_last, self.constraints)

    def to_mapping_with_residue(self) -> Mapping:
        """The result as a mapping from ``σ_first ∪ residual`` to ``σ_last``."""
        return Mapping(
            self.sigma_first.union(self.residual_signature),
            self.sigma_last,
            self.constraints,
        )

    def summary(self) -> str:
        """A short human-readable summary of the chained composition."""
        eliminated = sum(len(hop.eliminated_symbols) for hop in self.hops)
        attempted = len({s for hop in self.hops for s in hop.attempted_symbols})
        lines = [
            f"chain of {self.chain_length} mappings composed in "
            f"{self.elapsed_seconds * 1000:.1f} ms",
            f"eliminated {eliminated} symbol instances "
            f"({attempted} distinct attempted, {self.fraction_eliminated:.0%} gone)",
            f"constraints: {len(self.constraints)}, "
            f"operators: {self.constraints.operator_count()}",
        ]
        if not self.is_complete:
            lines.append("residual symbols: " + ", ".join(self.residual_symbols))
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "complete" if self.is_complete else f"{len(self.residual_signature)} residual"
        return f"<ChainResult: {self.chain_length} mappings, {status}>"


def validate_chain(mappings: Sequence[Mapping]) -> None:
    """Check that the mappings form a composable chain.

    Adjacent mappings must share their middle signature exactly, and no
    relation name may recur in non-adjacent signatures (the composition
    problems built along the fold require pairwise-disjoint signatures).
    """
    if not mappings:
        raise EngineError("cannot compose an empty chain of mappings")
    for index in range(len(mappings) - 1):
        if mappings[index].output_signature != mappings[index + 1].input_signature:
            raise EngineError(
                f"chain breaks between hops {index} and {index + 1}: the output "
                "signature of one mapping must equal the input signature of the next"
            )
    seen = {}
    signatures = [mappings[0].input_signature] + [m.output_signature for m in mappings]
    for position, signature in enumerate(signatures):
        for name in signature.names():
            if name in seen and seen[name] != position - 1:
                raise EngineError(
                    f"relation {name!r} appears in non-adjacent chain signatures "
                    f"({seen[name]} and {position}); chained composition requires "
                    "globally distinct intermediate names"
                )
            seen[name] = position


def compose_chain(
    mappings: Sequence[Mapping],
    config: Optional[ComposerConfig] = None,
    retry_residuals: bool = True,
    cache: Optional["ExpressionCache"] = None,
    checkpoints: Optional["CheckpointStore"] = None,
    executor=None,
) -> ChainResult:
    """Compose ``m12 ∘ m23 ∘ … ∘ m(n-1)(n)`` by folding through :func:`compose`.

    Parameters
    ----------
    mappings:
        The chain, in application order; mapping ``i``'s output signature must
        equal mapping ``i + 1``'s input signature.
    config:
        Composer configuration used for every hop.
    retry_residuals:
        When ``True`` (the default), symbols a hop failed to eliminate are put
        back into the intermediate signature of every later hop, giving the
        algorithm more chances as the surrounding constraints change.  When
        ``False``, residuals are frozen into the input signature immediately.
    cache:
        Optional :class:`~repro.algebra.interning.ExpressionCache` activated
        for the whole chain — including the per-hop problem assembly — so
        every hop shares one set of fixpoint tokens and memo tables (the
        batch engine threads its own cache this way).
    checkpoints:
        Optional :class:`~repro.engine.checkpoint.CheckpointStore`.  When
        given, the fold records a checkpoint after every hop, keyed by the
        cumulative content fingerprint of the consumed prefix
        (:mod:`repro.engine.fingerprint`), and a later call whose fingerprint
        chain matches a recorded prefix resumes after it, replaying only the
        hops at or after the first mismatch.  Reuse is sound because
        residuals only flow forward: a hop's state is a deterministic
        function of the config and the mappings up to it, which is exactly
        what the token names.  Outputs are byte-identical with the store
        hot, cold, or absent; ``ChainResult.reused_hops`` reports the savings.
    executor:
        Optional ``concurrent.futures`` executor handed to every hop's
        :func:`compose` call.  With the cost-guided planner active
        (``config.elimination_order == "cost"``) each hop's independent
        constraint-graph components then run as parallel sub-tasks on it —
        intra-problem parallelism on top of the fold; the fixed-order path
        ignores it.

    Returns the :class:`ChainResult`; a single-mapping chain returns a trivial
    result with zero hops.
    """
    if cache is not None:
        from repro.algebra.interning import shared_expression_cache

        with shared_expression_cache(cache):
            return compose_chain(
                mappings,
                config,
                retry_residuals,
                checkpoints=checkpoints,
                executor=executor,
            )
    validate_chain(mappings)
    config = config or ComposerConfig()
    started = time.perf_counter()

    first = mappings[0]
    sigma1 = first.input_signature
    residual = Signature()
    current_output = first.output_signature
    constraints = first.constraints
    hops: List[ChainHop] = []

    tokens: Optional[List[bytes]] = None
    reused = 0
    if checkpoints is not None and len(mappings) > 1:
        from repro.engine.fingerprint import chain_tokens

        tokens = chain_tokens(mappings, config, retry_residuals)
        # Deepest matching prefix wins; every shallower checkpoint of the
        # same chain is subsumed by it.
        for hop_index in range(len(tokens) - 1, -1, -1):
            checkpoint = checkpoints.get(tokens[hop_index])
            if checkpoint is not None:
                hops = list(checkpoint.hops)
                constraints = checkpoint.constraints
                residual = checkpoint.residual
                current_output = checkpoint.current_output
                reused = hop_index + 1
                break

    for index in range(reused, len(mappings) - 1):
        next_mapping = mappings[index + 1]
        hop_started = time.perf_counter()
        if retry_residuals:
            sigma2 = current_output.union(residual)
            problem_sigma1 = sigma1
        else:
            sigma2 = current_output
            problem_sigma1 = sigma1.union(residual)
        problem = CompositionProblem(
            sigma1=problem_sigma1,
            sigma2=sigma2,
            sigma3=next_mapping.output_signature,
            sigma12=constraints,
            sigma23=next_mapping.constraints,
            name=f"chain hop {index}",
        )
        assembly_seconds = time.perf_counter() - hop_started
        result = compose(problem, config, executor=executor)
        residual = result.residual_sigma2 if retry_residuals else residual.union(
            result.residual_sigma2
        )
        current_output = next_mapping.output_signature
        constraints = result.constraints
        hops.append(
            ChainHop(
                index=index,
                result=result,
                attempted_symbols=result.attempted_symbols,
                eliminated_symbols=result.eliminated_symbols,
                residual_symbols=result.remaining_symbols,
                elapsed_seconds=time.perf_counter() - hop_started,
                assembly_seconds=assembly_seconds,
            )
        )
        if tokens is not None:
            from repro.engine.checkpoint import ChainCheckpoint

            checkpoints.put(
                ChainCheckpoint(
                    token=tokens[index],
                    hops=tuple(hops),
                    constraints=constraints,
                    residual=residual,
                    current_output=current_output,
                )
            )

    return ChainResult(
        sigma_first=sigma1,
        sigma_last=current_output,
        residual_signature=residual,
        constraints=constraints,
        hops=tuple(hops),
        elapsed_seconds=time.perf_counter() - started,
        reused_hops=reused,
    )
