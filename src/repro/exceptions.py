"""Exception hierarchy for the ``repro`` mapping-composition library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  The hierarchy mirrors the major subsystems:
algebra construction, parsing, evaluation, constraint handling, composition,
and the schema-evolution simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ExpressionError(ReproError):
    """A relational-algebra expression is malformed."""


class ArityError(ExpressionError):
    """An expression or constraint violates arity rules.

    Raised, for example, when the two sides of a union have different arities,
    when a projection references an index outside its input arity, or when the
    two sides of a containment constraint disagree on arity.
    """


class ConditionError(ExpressionError):
    """A selection condition is malformed (bad index, bad operator, ...)."""


class ParseError(ReproError):
    """The textual constraint / expression syntax could not be parsed."""

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text


class EvaluationError(ReproError):
    """An expression could not be evaluated over an instance.

    Typical causes: a referenced relation is missing from the instance, a
    Skolem function has no interpretation, or materializing the active-domain
    relation ``D^r`` would exceed the configured size limit.
    """


class SchemaError(ReproError):
    """A signature or instance is inconsistent (unknown relation, bad key, ...)."""


class ConstraintError(ReproError):
    """A constraint or constraint set is malformed."""


class CompositionError(ReproError):
    """An unrecoverable error occurred inside the composition algorithm.

    Note that *failure to eliminate a symbol* is not an error — the algorithm
    is best-effort and reports partial results.  This exception is reserved
    for genuine misuse (e.g. overlapping signatures passed to ``compose``).
    """


class NormalizationError(CompositionError):
    """Left- or right-normalization could not bring a constraint into shape.

    Used internally; the compose steps convert it into a per-symbol failure.
    """


class DeskolemizationError(CompositionError):
    """The 12-step deskolemization procedure failed.

    Used internally by the right-compose step; converted into a per-symbol
    failure rather than propagated to the caller.
    """


class EngineError(ReproError):
    """The batch/chain composition engine was misused or a batch run failed.

    Raised for invalid chains (non-adjacent mappings, empty chains), invalid
    engine configurations, and by :meth:`BatchReport.raise_failures` when a
    caller asks for all-or-nothing semantics on a batch that had failures.
    """


class SimulatorError(ReproError):
    """The schema-evolution simulator was asked to do something impossible.

    For example, applying a vertical-partitioning primitive to a schema that
    has no keyed relation.
    """


class RegistryError(ReproError):
    """An operator was registered incorrectly or looked up but never registered."""


class CatalogError(ReproError):
    """The mapping catalog was misused or its on-disk state is inconsistent.

    Raised for unknown entries or versions, invalid entry names (entry names
    become file names, so they are restricted to a safe alphabet), kind
    mismatches, and records whose serialized form cannot be parsed back.
    """


class JournalError(CatalogError):
    """A replication-journal entry or segment is malformed or misused.

    Raised for truncated/corrupt entries (bad length prefix, CRC mismatch,
    undecodable payload — what a torn tail presents to a reader), malformed
    segment names, and invalid journal parameters.  Torn *tails* are healed
    silently by the append path; this error surfaces only genuine corruption
    or misuse.
    """


class CatalogLockTimeoutError(CatalogError):
    """A shard/lease file lock could not be acquired within its timeout.

    The lock is advisory and fd-held, so a *crashed* holder releases it
    instantly — this error means a live process held the lock for the whole
    timeout (a stalled writer, a stuck NFS mount, or an injected
    lock-contention fault), which callers treat as a transient overload
    rather than corruption.
    """


class LeaseUnavailableError(CatalogError):
    """A cross-process work claim stayed held by a live peer past the wait bound.

    Raised by :meth:`~repro.catalog.leases.LeaseTable.wait_acquire` when the
    claimed key's lease was continuously renewed by another process for the
    whole wait budget.  Crashed holders do not raise this: their leases stop
    being renewed and are taken over after expiry.
    """


class StaleEpochError(CatalogError):
    """A local write was attempted with a fencing epoch the root has outgrown.

    Raised on the write path when the catalog root carries a ``FENCED``
    tombstone (a promoted replica fenced this root off) or when the persisted
    epoch next to the journal is higher than the epoch this handle adopted —
    both mean another process was promoted past this writer.  A zombie
    ex-primary that wakes up after failover hits this instead of
    split-braining the store.  Journal *mirroring* is exempt: a fenced root
    may still be re-seeded as a follower of the new primary.
    """


class ServiceError(ReproError):
    """A composition request submitted to the service failed.

    Carries the failure detail of the underlying batch item (the original
    traceback text for crashed compositions, or a timeout notice).
    """


class ReplicationError(ServiceError):
    """A replication follower could not tail or apply its source's journal.

    Raised when the replication source is malformed (an unusable URL or
    root), or when an applied entry fails its post-apply fingerprint
    verification — the mirrored bytes do not reproduce the content the
    primary acknowledged.  Transient source unavailability is *not* an
    error: the follower keeps polling and reports reachability in its
    status instead.
    """


class ServiceOverloadedError(ServiceError):
    """The service rejected a request because its queue is at capacity.

    Admission control: the request was *not* enqueued; the caller may retry
    later or raise ``max_pending``.
    """


class ServiceDeadlineError(ServiceOverloadedError):
    """A blocking-admission request waited past its deadline for queue space.

    Raised only with ``ServiceConfig(admission="block")`` and a deadline (the
    service-wide ``deadline_seconds`` or a per-request override): the request
    blocked for its whole budget without the queue draining below
    ``max_pending``.  Subclasses :class:`ServiceOverloadedError` because the
    meaning to the caller is the same — not enqueued, retry later — which
    also keeps HTTP 429 handling uniform.
    """
