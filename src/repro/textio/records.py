"""Extended plain-text records: schemas, mappings, chains and results.

:mod:`repro.textio.format` reproduces the paper's distribution format for
*composition problems*.  The mapping catalog needs to persist more than
problems — named schemas, individual mappings, whole mapping chains, and
composed results with their plan/phase bookkeeping — so this module extends
the same syntax into a small family of *records*.  A record is metadata
comments followed by named sections::

    # kind: mapping
    # name: orders_v1_to_v2
    # description: drop the discontinued column
    [input]
    Orders/4 key=0
    [output]
    Orders_v2/3 key=0
    [constraints]
    project[0,1,2](Orders/4) = Orders_v2/3

Metadata comments are ``# key: value`` lines (the ``name``/``description``
keys are exactly the ones :mod:`repro.textio.format` already understands);
relation declarations are ``name/arity`` with the optional ``key=i,j``
suffix; constraints use the expression syntax of
:mod:`repro.algebra.printer`.  Every serializer here round-trips: parsing the
emitted text reconstructs an equal object (results included — per-symbol
outcomes, failure reasons, plan and phase timings all survive).

Floats are written with ``repr`` so timings survive the round-trip exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.parser import parse_constraint
from repro.compose.result import CompositionResult, EliminationMethod, EliminationOutcome
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import ParseError
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature
from repro.textio.format import _parse_relation_line, _signature_to_lines

__all__ = [
    "Record",
    "parse_record",
    "detect_kind",
    "signature_to_text",
    "signature_from_text",
    "mapping_to_text",
    "mapping_from_text",
    "chain_to_text",
    "chain_from_text",
    "ChainDelta",
    "chain_delta_to_text",
    "chain_delta_from_text",
    "result_to_text",
    "result_from_text",
]

#: ``# key: value`` metadata comment; keys are lowercase kebab-case words.
_METADATA_RE = re.compile(r"^([a-z][a-z0-9-]*)\s*:\s*(.*)$")


@dataclass
class Record:
    """A parsed record: metadata plus named sections of non-empty lines."""

    metadata: Dict[str, str] = field(default_factory=dict)
    sections: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return self.metadata.get("kind", "")

    @property
    def name(self) -> str:
        return self.metadata.get("name", "")

    @property
    def description(self) -> str:
        return self.metadata.get("description", "")

    def section(self, name: str) -> List[str]:
        """The named section's lines; a missing section is an error."""
        try:
            return self.sections[name]
        except KeyError:
            raise ParseError(f"record is missing the [{name}] section") from None

    def expect_kind(self, expected: str) -> None:
        """Fail unless the record's declared kind is ``expected`` (or absent)."""
        if self.kind and self.kind != expected:
            raise ParseError(
                f"expected a {expected!r} record, found kind {self.kind!r}"
            )


def parse_record(text: str) -> Record:
    """Parse metadata comments and sections (section contents stay verbatim)."""
    record = Record()
    current: Optional[str] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = _METADATA_RE.match(line[1:].strip())
            # First occurrence wins, matching format.py's name/description
            # handling; non-matching comment lines are plain comments.
            if match and match.group(1) not in record.metadata:
                record.metadata[match.group(1)] = match.group(2).strip()
            continue
        if line.startswith("[") and line.endswith("]"):
            current = line[1:-1].strip()
            if not current:
                raise ParseError("empty section header '[]'")
            record.sections.setdefault(current, [])
            continue
        if current is None:
            raise ParseError(f"content outside any section: {line!r}")
        record.sections[current].append(line)
    return record


def detect_kind(text: str) -> str:
    """The record kind declared in ``text``.

    Falls back to ``"problem"`` for kind-less texts in the original
    distribution format of :mod:`repro.textio.format` (recognized by their
    ``[sigma12]`` section), so the catalog and CLI can ingest the paper's
    task files unchanged.
    """
    record = parse_record(text)
    if record.kind:
        return record.kind
    if "sigma12" in record.sections:
        return "problem"
    raise ParseError("record declares no '# kind:' and is not a composition problem")


def _metadata_value(key: str, value: str) -> str:
    # Metadata rides on single comment lines; an embedded newline would dump
    # the remainder outside any section and make the record unparseable, so
    # reject it before anything reaches disk.
    if "\n" in value or "\r" in value:
        raise ParseError(f"metadata value for {key!r} must be a single line: {value!r}")
    return value


def _metadata_lines(kind: str, name: str, description: str, extra: Sequence[Tuple[str, str]] = ()) -> List[str]:
    lines = [f"# kind: {kind}"]
    if name:
        lines.append(f"# name: {_metadata_value('name', name)}")
    if description:
        lines.append(f"# description: {_metadata_value('description', description)}")
    for key, value in extra:
        lines.append(f"# {key}: {_metadata_value(key, value)}")
    return lines


def _signature_section(header: str, signature: Signature) -> List[str]:
    return [f"[{header}]"] + _signature_to_lines(signature)


def _parse_signature(lines: Sequence[str]) -> Signature:
    return Signature(_parse_relation_line(line) for line in lines)


def _parse_constraints(lines: Sequence[str]) -> ConstraintSet:
    return ConstraintSet(parse_constraint(line) for line in lines)


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def signature_to_text(signature: Signature, name: str = "", description: str = "") -> str:
    """Serialize a signature as a ``schema`` record."""
    lines = _metadata_lines("schema", name, description)
    lines.extend(_signature_section("relations", signature))
    return "\n".join(lines) + "\n"


def signature_from_text(text: str) -> Signature:
    """Parse a ``schema`` record back into a :class:`Signature`."""
    record = parse_record(text)
    record.expect_kind("schema")
    return _parse_signature(record.section("relations"))


# ---------------------------------------------------------------------------
# Mappings
# ---------------------------------------------------------------------------


def mapping_to_text(mapping: Mapping, name: str = "", description: str = "") -> str:
    """Serialize a mapping as a ``mapping`` record."""
    lines = _metadata_lines("mapping", name, description)
    lines.extend(_signature_section("input", mapping.input_signature))
    lines.extend(_signature_section("output", mapping.output_signature))
    lines.append("[constraints]")
    lines.extend(str(constraint) for constraint in mapping.constraints)
    return "\n".join(lines) + "\n"


def mapping_from_text(text: str) -> Mapping:
    """Parse a ``mapping`` record back into a :class:`Mapping`."""
    record = parse_record(text)
    record.expect_kind("mapping")
    return Mapping(
        input_signature=_parse_signature(record.section("input")),
        output_signature=_parse_signature(record.section("output")),
        constraints=_parse_constraints(record.section("constraints")),
    )


# ---------------------------------------------------------------------------
# Chains
# ---------------------------------------------------------------------------


def chain_to_text(
    mappings: Sequence[Mapping], name: str = "", description: str = ""
) -> str:
    """Serialize a chain of mappings as one ``chain`` record.

    Adjacent mappings share their middle signature, so a chain of ``n``
    mappings is written as ``n + 1`` ``[schema.i]`` sections interleaved with
    ``n`` ``[constraints.i]`` sections (constraints ``i`` relate schema ``i``
    to schema ``i + 1``).
    """
    if not mappings:
        raise ParseError("cannot serialize an empty chain of mappings")
    for index in range(len(mappings) - 1):
        if mappings[index].output_signature != mappings[index + 1].input_signature:
            raise ParseError(
                f"chain breaks between mappings {index} and {index + 1}; "
                "adjacent mappings must share their middle signature"
            )
    lines = _metadata_lines(
        "chain", name, description, extra=(("length", str(len(mappings))),)
    )
    for index, mapping in enumerate(mappings):
        lines.extend(_signature_section(f"schema.{index}", mapping.input_signature))
        lines.append(f"[constraints.{index}]")
        lines.extend(str(constraint) for constraint in mapping.constraints)
    lines.extend(_signature_section(f"schema.{len(mappings)}", mappings[-1].output_signature))
    return "\n".join(lines) + "\n"


def _chain_mappings_from_record(record: Record, declared_length: Optional[str]) -> Tuple[Mapping, ...]:
    # The sections are authoritative; the length metadata is only a
    # cross-check (a truncated or hand-edited record must fail loudly, not
    # silently drop mappings).
    length = sum(1 for key in record.sections if key.startswith("constraints."))
    if length < 1:
        raise ParseError("chain record declares no mappings")
    if declared_length is not None and declared_length != str(length):
        raise ParseError(
            f"chain record declares length {declared_length} but has {length} "
            "constraint sections"
        )
    signatures = [
        _parse_signature(record.section(f"schema.{index}")) for index in range(length + 1)
    ]
    return tuple(
        Mapping(
            input_signature=signatures[index],
            output_signature=signatures[index + 1],
            constraints=_parse_constraints(record.section(f"constraints.{index}")),
        )
        for index in range(length)
    )


def chain_from_text(text: str) -> Tuple[Mapping, ...]:
    """Parse a ``chain`` record back into its tuple of mappings."""
    record = parse_record(text)
    record.expect_kind("chain")
    return _chain_mappings_from_record(record, record.metadata.get("length"))


# ---------------------------------------------------------------------------
# Chain deltas
#
# An n-edit evolution history stores n chain versions whose bodies are almost
# identical — the full-record layout costs O(n^2) hops of text across the
# history.  A ``chain-delta`` record stores one version as a reference to an
# earlier stored version (its catalog version number and content fingerprint)
# plus only the mappings after the shared prefix, making the whole history
# O(n) hops of text.  The suffix is serialized with the same interleaved
# schema/constraints sections as a full chain record, so the two formats
# share their parser.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainDelta:
    """A parsed ``chain-delta`` record: base reference plus replacement suffix.

    The represented chain is ``base[:prefix_hops] + suffix`` where ``base``
    is the chain stored as version ``base_version`` of the same catalog
    entry (whose full-chain fingerprint must equal ``base_fingerprint``).
    """

    base_version: int
    base_fingerprint: str
    prefix_hops: int
    length: int
    suffix: Tuple[Mapping, ...]


def chain_delta_to_text(
    suffix: Sequence[Mapping],
    base_version: int,
    base_fingerprint: str,
    prefix_hops: int,
    name: str = "",
    description: str = "",
) -> str:
    """Serialize a chain version as a delta against an earlier version."""
    suffix = tuple(suffix)
    if not suffix:
        raise ParseError("a chain delta must carry at least one suffix mapping")
    if prefix_hops < 1:
        raise ParseError("a chain delta must share at least one prefix hop")
    for index in range(len(suffix) - 1):
        if suffix[index].output_signature != suffix[index + 1].input_signature:
            raise ParseError(
                f"delta suffix breaks between mappings {index} and {index + 1}; "
                "adjacent mappings must share their middle signature"
            )
    lines = _metadata_lines(
        "chain-delta",
        name,
        description,
        extra=(
            ("base-version", str(base_version)),
            ("base-fingerprint", base_fingerprint),
            ("prefix-hops", str(prefix_hops)),
            ("suffix-length", str(len(suffix))),
        ),
    )
    for index, mapping in enumerate(suffix):
        lines.extend(_signature_section(f"schema.{index}", mapping.input_signature))
        lines.append(f"[constraints.{index}]")
        lines.extend(str(constraint) for constraint in mapping.constraints)
    lines.extend(_signature_section(f"schema.{len(suffix)}", suffix[-1].output_signature))
    return "\n".join(lines) + "\n"


def chain_delta_from_text(text: str) -> ChainDelta:
    """Parse a ``chain-delta`` record back into its :class:`ChainDelta`."""
    record = parse_record(text)
    record.expect_kind("chain-delta")
    try:
        base_version = int(record.metadata["base-version"])
        prefix_hops = int(record.metadata["prefix-hops"])
    except KeyError as exc:
        raise ParseError(f"chain-delta record is missing the {exc.args[0]!r} metadata") from None
    except ValueError as exc:
        raise ParseError(f"chain-delta record has malformed metadata: {exc}") from None
    base_fingerprint = record.metadata.get("base-fingerprint", "")
    if not base_fingerprint:
        raise ParseError("chain-delta record is missing the 'base-fingerprint' metadata")
    if base_version < 1 or prefix_hops < 1:
        raise ParseError("chain-delta base-version and prefix-hops must be positive")
    suffix = _chain_mappings_from_record(record, record.metadata.get("suffix-length"))
    return ChainDelta(
        base_version=base_version,
        base_fingerprint=base_fingerprint,
        prefix_hops=prefix_hops,
        length=prefix_hops + len(suffix),
        suffix=suffix,
    )


# ---------------------------------------------------------------------------
# Composition results
# ---------------------------------------------------------------------------

_STATUS = {True: "eliminated", False: "kept"}
_STATUS_BACK = {text: flag for flag, text in _STATUS.items()}


def _outcome_lines(outcome: EliminationOutcome) -> List[str]:
    parts = [
        outcome.symbol,
        _STATUS[outcome.success],
        outcome.method.value,
        repr(outcome.duration_seconds),
    ]
    if outcome.blowup_aborted:
        parts.append("blowup")
    lines = [" ".join(parts)]
    # Failure reasons are free text; each rides on a '- ' continuation line
    # attached to the preceding outcome.
    lines.extend(f"- {reason}" for reason in outcome.failure_reasons)
    return lines


def _parse_outcomes(lines: Sequence[str]) -> Tuple[EliminationOutcome, ...]:
    outcomes: List[EliminationOutcome] = []
    reasons: List[List[str]] = []
    for line in lines:
        if line.startswith("- "):
            if not outcomes:
                raise ParseError(f"failure reason before any outcome line: {line!r}")
            reasons[-1].append(line[2:])
            continue
        parts = line.split()
        if len(parts) not in (4, 5) or (len(parts) == 5 and parts[4] != "blowup"):
            raise ParseError(f"malformed outcome line {line!r}")
        symbol, status, method, seconds = parts[:4]
        if status not in _STATUS_BACK:
            raise ParseError(f"unknown outcome status {status!r} in {line!r}")
        try:
            method_value = EliminationMethod(method)
        except ValueError:
            raise ParseError(f"unknown elimination method {method!r} in {line!r}") from None
        try:
            duration = float(seconds)
        except ValueError:
            raise ParseError(f"invalid duration in outcome line {line!r}") from None
        outcomes.append(
            EliminationOutcome(
                symbol=symbol,
                success=_STATUS_BACK[status],
                method=method_value,
                duration_seconds=duration,
                blowup_aborted=len(parts) == 5,
            )
        )
        reasons.append([])
    return tuple(
        outcome
        if not attached
        else EliminationOutcome(
            symbol=outcome.symbol,
            success=outcome.success,
            method=outcome.method,
            duration_seconds=outcome.duration_seconds,
            failure_reasons=tuple(attached),
            blowup_aborted=outcome.blowup_aborted,
        )
        for outcome, attached in zip(outcomes, reasons)
    )


def result_to_text(
    result: CompositionResult, name: str = "", description: str = ""
) -> str:
    """Serialize a :class:`CompositionResult` as a ``result`` record.

    Everything the result carries is persisted: signatures, constraints,
    per-symbol outcomes (with their failure reasons), the planner's component
    orders, and the per-phase timing buckets.
    """
    extra = [
        ("elapsed-seconds", repr(result.elapsed_seconds)),
        ("input-operators", str(result.input_operator_count)),
        ("output-operators", str(result.output_operator_count)),
        ("components", str(result.components)),
        ("reorderings", str(result.reorderings)),
    ]
    lines = _metadata_lines("result", name, description, extra=extra)
    lines.extend(_signature_section("sigma1", result.sigma1))
    lines.extend(_signature_section("residual", result.residual_sigma2))
    lines.extend(_signature_section("sigma3", result.sigma3))
    lines.append("[constraints]")
    lines.extend(str(constraint) for constraint in result.constraints)
    lines.append("[outcomes]")
    for outcome in result.outcomes:
        lines.extend(_outcome_lines(outcome))
    lines.append("[plan]")
    lines.extend(",".join(component) for component in result.plan)
    lines.append("[phases]")
    lines.extend(f"{phase} {repr(seconds)}" for phase, seconds in result.phase_seconds)
    return "\n".join(lines) + "\n"


def result_from_text(text: str) -> CompositionResult:
    """Parse a ``result`` record back into a :class:`CompositionResult`."""
    record = parse_record(text)
    record.expect_kind("result")

    def _float_meta(key: str) -> float:
        try:
            return float(record.metadata.get(key, "0"))
        except ValueError:
            raise ParseError(f"invalid float metadata '# {key}:'") from None

    def _int_meta(key: str) -> int:
        try:
            return int(record.metadata.get(key, "0"))
        except ValueError:
            raise ParseError(f"invalid integer metadata '# {key}:'") from None

    phases: List[Tuple[str, float]] = []
    for line in record.sections.get("phases", []):
        parts = line.split()
        if len(parts) != 2:
            raise ParseError(f"malformed phase line {line!r}")
        try:
            phases.append((parts[0], float(parts[1])))
        except ValueError:
            raise ParseError(f"invalid seconds in phase line {line!r}") from None

    return CompositionResult(
        sigma1=_parse_signature(record.section("sigma1")),
        sigma3=_parse_signature(record.section("sigma3")),
        residual_sigma2=_parse_signature(record.section("residual")),
        constraints=_parse_constraints(record.section("constraints")),
        outcomes=_parse_outcomes(record.sections.get("outcomes", [])),
        elapsed_seconds=_float_meta("elapsed-seconds"),
        input_operator_count=_int_meta("input-operators"),
        output_operator_count=_int_meta("output-operators"),
        phase_seconds=tuple(phases),
        plan=tuple(
            tuple(symbol for symbol in line.split(",") if symbol)
            for line in record.sections.get("plan", [])
        ),
        components=_int_meta("components"),
        reorderings=_int_meta("reorderings"),
    )
