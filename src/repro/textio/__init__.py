"""Plain-text serialization: the paper's task format plus catalog records.

:mod:`repro.textio.format` is the paper's distribution format for composition
problems; :mod:`repro.textio.records` extends the same syntax to the other
objects the mapping catalog persists — schemas, mappings, chains and composed
results.
"""

from repro.textio.format import problem_from_text, problem_to_text, read_problem, write_problem
from repro.textio.records import (
    Record,
    chain_from_text,
    chain_to_text,
    detect_kind,
    mapping_from_text,
    mapping_to_text,
    parse_record,
    result_from_text,
    result_to_text,
    signature_from_text,
    signature_to_text,
)

__all__ = [
    "problem_to_text",
    "problem_from_text",
    "write_problem",
    "read_problem",
    "Record",
    "parse_record",
    "detect_kind",
    "signature_to_text",
    "signature_from_text",
    "mapping_to_text",
    "mapping_from_text",
    "chain_to_text",
    "chain_from_text",
    "result_to_text",
    "result_from_text",
]
