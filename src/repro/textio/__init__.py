"""Plain-text serialization of composition problems (the paper's task format)."""

from repro.textio.format import problem_from_text, problem_to_text, read_problem, write_problem

__all__ = ["problem_to_text", "problem_from_text", "write_problem", "read_problem"]
