"""Plain-text serialization of composition problems.

The paper distributed its composition tasks "in a machine-readable format"
with "a plain-text syntax for specifying mapping composition tasks".  This
module provides that: a composition problem is written as five sections —
the three signatures and the two constraint sets — using the expression syntax
of :mod:`repro.algebra.printer`::

    # name: example3_inclusion_chain
    # description: {R <= S, S <= T} is equivalent to {R <= T}
    [sigma1]
    R/2
    [sigma2]
    S/2
    [sigma3]
    T/2
    [sigma12]
    R/2 <= S/2
    [sigma23]
    S/2 <= T/2

Relations are declared one per line as ``name/arity`` with an optional
``key=i,j`` suffix.  Lines starting with ``#`` are comments; the first
``# name:`` / ``# description:`` comments populate the problem metadata.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra.parser import parse_constraint
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import ParseError
from repro.mapping.composition_problem import CompositionProblem
from repro.schema.signature import RelationSchema, Signature

__all__ = ["problem_to_text", "problem_from_text", "write_problem", "read_problem"]

_SECTIONS = ("sigma1", "sigma2", "sigma3", "sigma12", "sigma23")


def _signature_to_lines(signature: Signature) -> List[str]:
    lines = []
    for schema in signature.relations():
        line = f"{schema.name}/{schema.arity}"
        if schema.key is not None:
            line += " key=" + ",".join(str(i) for i in schema.key)
        lines.append(line)
    return lines


def problem_to_text(problem: CompositionProblem) -> str:
    """Serialize a composition problem to the plain-text format."""
    lines: List[str] = []
    if problem.name:
        lines.append(f"# name: {problem.name}")
    if problem.description:
        lines.append(f"# description: {problem.description}")
    for section, signature in (
        ("sigma1", problem.sigma1),
        ("sigma2", problem.sigma2),
        ("sigma3", problem.sigma3),
    ):
        lines.append(f"[{section}]")
        lines.extend(_signature_to_lines(signature))
    lines.append("[sigma12]")
    lines.extend(str(constraint) for constraint in problem.sigma12)
    lines.append("[sigma23]")
    lines.extend(str(constraint) for constraint in problem.sigma23)
    return "\n".join(lines) + "\n"


def _parse_relation_line(line: str) -> RelationSchema:
    parts = line.split()
    head = parts[0]
    if "/" not in head:
        raise ParseError(f"expected 'name/arity' in relation declaration, got {line!r}")
    name, arity_text = head.split("/", 1)
    try:
        arity = int(arity_text)
    except ValueError:
        raise ParseError(f"invalid arity in relation declaration {line!r}") from None
    key: Optional[Tuple[int, ...]] = None
    for extra in parts[1:]:
        if extra.startswith("key="):
            key = tuple(int(piece) for piece in extra[4:].split(",") if piece)
        else:
            raise ParseError(f"unexpected token {extra!r} in relation declaration {line!r}")
    return RelationSchema(name, arity, key)


def problem_from_text(text: str) -> CompositionProblem:
    """Parse a composition problem from the plain-text format."""
    sections: Dict[str, List[str]] = {section: [] for section in _SECTIONS}
    name = ""
    description = ""
    current: Optional[str] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            comment = line[1:].strip()
            if comment.lower().startswith("name:"):
                name = comment[5:].strip()
            elif comment.lower().startswith("description:"):
                description = comment[12:].strip()
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            if section not in sections:
                raise ParseError(f"unknown section {section!r}")
            current = section
            continue
        if current is None:
            raise ParseError(f"content outside any section: {line!r}")
        sections[current].append(line)

    signatures = {}
    for section in ("sigma1", "sigma2", "sigma3"):
        signatures[section] = Signature(
            _parse_relation_line(line) for line in sections[section]
        )
    constraint_sets = {}
    for section in ("sigma12", "sigma23"):
        constraint_sets[section] = ConstraintSet(
            parse_constraint(line) for line in sections[section]
        )
    return CompositionProblem(
        sigma1=signatures["sigma1"],
        sigma2=signatures["sigma2"],
        sigma3=signatures["sigma3"],
        sigma12=constraint_sets["sigma12"],
        sigma23=constraint_sets["sigma23"],
        name=name,
        description=description,
    )


def write_problem(problem: CompositionProblem, path) -> None:
    """Write a composition problem to ``path`` in the plain-text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(problem_to_text(problem))


def read_problem(path) -> CompositionProblem:
    """Read a composition problem from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return problem_from_text(handle.read())
