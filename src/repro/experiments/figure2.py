"""Figure 2 — fraction of symbols eliminated per schema-evolution primitive.

The paper's Figure 2 plots, for each primitive on the x-axis and for four
configurations of the algorithm ('no keys', 'keys', 'no unfolding', 'no right
compose'), the fraction of intermediate symbols that the composition following
an edit of that primitive managed to eliminate.

Expected shape (paper Section 4.2): the forward partitioning primitives Hf, Vf
and Nf are the hardest; adding keys barely changes the elimination rate; and
disabling view unfolding or right compose weakens the algorithm substantially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.engine.batch import BatchComposer
from repro.evolution.event_vector import ALL_PRIMITIVES
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    EditingStudy,
    ExperimentConfiguration,
    run_editing_study,
)

__all__ = ["Figure2Result", "run_figure2"]

#: The primitives shown on the x-axis of Figure 2 (AR is omitted: it consumes nothing).
FIGURE2_PRIMITIVES: Tuple[str, ...] = tuple(
    name for name in ALL_PRIMITIVES if name != "AR"
)


@dataclass
class Figure2Result:
    """Per-configuration, per-primitive elimination fractions."""

    study: EditingStudy
    fractions: Dict[str, Dict[str, float]]

    def series(self, configuration: str) -> Dict[str, float]:
        """The Figure 2 series for one configuration."""
        return self.fractions[configuration]

    def hardest_primitives(self, configuration: str, count: int = 3) -> Tuple[str, ...]:
        """The primitives with the lowest elimination fraction for a configuration."""
        series = self.fractions[configuration]
        ordered = sorted(series, key=lambda primitive: series[primitive])
        return tuple(ordered[:count])

    def to_table(self) -> str:
        """Render the figure as a text table (primitives × configurations)."""
        configurations = list(self.fractions)
        headers = ["primitive"] + configurations
        rows = []
        for primitive in FIGURE2_PRIMITIVES:
            row = [primitive]
            for configuration in configurations:
                value = self.fractions[configuration].get(primitive)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        return format_table(
            headers, rows, title="Figure 2: fraction of symbols eliminated per primitive"
        )


def run_figure2(
    schema_size: int = 30,
    num_edits: int = 30,
    runs: int = 3,
    seed: int = 0,
    configurations: Optional[Sequence[ExperimentConfiguration]] = None,
    paper_scale: bool = False,
    study: Optional[EditingStudy] = None,
    batch: Optional[BatchComposer] = None,
) -> Figure2Result:
    """Regenerate Figure 2 (optionally reusing an existing editing study)."""
    study = study or run_editing_study(
        schema_size=schema_size,
        num_edits=num_edits,
        runs=runs,
        seed=seed,
        configurations=configurations,
        paper_scale=paper_scale,
        batch=batch,
    )
    fractions = {
        configuration: study.fraction_by_primitive(configuration)
        for configuration in study.configurations()
    }
    return Figure2Result(study=study, fractions=fractions)
