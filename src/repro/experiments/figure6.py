"""Figure 6 — schema reconciliation while varying the intermediate schema size.

The paper's Figure 6 plots the fraction of symbols eliminated when composing
two independently evolved mappings (each produced by an edit sequence over the
same original schema) against the size of that original — i.e. intermediate —
schema, for three configurations: complete, no view unfolding, and no right
compose.

Expected shape: a larger intermediate schema makes composition *easier* (the
two edit sequences are less likely to touch the same relations), and the two
crippled configurations eliminate 10-20% fewer symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compose.config import ComposerConfig
from repro.engine.batch import BatchComposer
from repro.evolution.config import SimulatorConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import _reconciliation_job, mean

__all__ = ["Figure6Result", "run_figure6", "FIGURE6_CONFIGURATIONS"]

#: The three algorithm configurations of Figure 6.
FIGURE6_CONFIGURATIONS: Dict[str, ComposerConfig] = {
    "complete": ComposerConfig.default(),
    "no view unfolding": ComposerConfig.no_view_unfolding(),
    "no right compose": ComposerConfig.no_right_compose(),
}


@dataclass
class Figure6Result:
    """Fraction of symbols eliminated per schema size and configuration."""

    schema_sizes: List[int]
    fractions: Dict[str, Dict[int, float]] = field(default_factory=dict)
    durations: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def series(self, configuration: str) -> List[float]:
        return [self.fractions[configuration][size] for size in self.schema_sizes]

    def to_table(self) -> str:
        configurations = list(self.fractions)
        headers = ["schema size"] + configurations
        rows = []
        for size in self.schema_sizes:
            row = [size]
            for configuration in configurations:
                row.append(f"{self.fractions[configuration][size]:.2f}")
            rows.append(row)
        return format_table(
            headers, rows, title="Figure 6: fraction of symbols eliminated vs. schema size"
        )


def run_figure6(
    schema_sizes: Optional[Sequence[int]] = None,
    num_edits: int = 20,
    tasks_per_point: int = 2,
    seed: int = 0,
    simulator_config: Optional[SimulatorConfig] = None,
    configurations: Optional[Dict[str, ComposerConfig]] = None,
    paper_scale: bool = False,
    batch: Optional[BatchComposer] = None,
) -> Figure6Result:
    """Regenerate Figure 6.

    The paper averages 500 reconciliation tasks per data point with 100-edit
    sequences over schema sizes 10..100; the defaults here are scaled down.
    Every (configuration, size, task) triple is an independent reconciliation
    task with its own seed, so the whole sweep is dispatched as one batch
    through ``batch`` (a default serial :class:`BatchComposer` when omitted).
    """
    if paper_scale:
        schema_sizes = schema_sizes or list(range(10, 101, 10))
        num_edits, tasks_per_point = 100, 20
    schema_sizes = list(schema_sizes) if schema_sizes else [10, 20, 30, 40]
    simulator_config = simulator_config or SimulatorConfig.no_keys()
    configurations = configurations or FIGURE6_CONFIGURATIONS
    batch = batch or BatchComposer()

    jobs = []
    labels = []
    for name, composer_config in configurations.items():
        for size in schema_sizes:
            for task_index in range(tasks_per_point):
                labels.append(f"{name}/size[{size}]/task[{task_index}]")
                jobs.append(
                    dict(
                        schema_size=size,
                        num_edits=num_edits,
                        seed=seed + task_index,
                        simulator_config=simulator_config,
                        composer_config=composer_config,
                    )
                )
    report = batch.map(_reconciliation_job, jobs, labels=labels)
    report.raise_failures()

    result = Figure6Result(schema_sizes=schema_sizes)
    records = iter(item.result for item in report.items)
    for name in configurations:
        result.fractions[name] = {}
        result.durations[name] = {}
        for size in schema_sizes:
            point = [next(records) for _ in range(tasks_per_point)]
            result.fractions[name][size] = mean([r.fraction_eliminated for r in point])
            result.durations[name][size] = mean([r.duration_seconds for r in point])
    return result
