"""The literature-problem study (the paper's first data set).

Runs the composition algorithm over every problem of the literature suite and
summarizes the per-problem outcome: symbols eliminated, whether the outcome
matches the documented expectation, running time, and output size.  This is
the "test suite that can be used for verifying implementations of composition"
role the paper assigns to its 22 literature problems.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.compose.composer import compose
from repro.compose.config import ComposerConfig
from repro.compose.result import CompositionResult
from repro.experiments.reporting import format_table
from repro.literature.problems import LiteratureProblem, all_problems

__all__ = ["LiteratureOutcome", "LiteratureStudyResult", "run_literature_study"]


@dataclass(frozen=True)
class LiteratureOutcome:
    """Outcome of one literature problem."""

    problem: LiteratureProblem
    result: CompositionResult
    duration_seconds: float

    @property
    def matches_expectation(self) -> bool:
        """Whether the outcome agrees with the documented expectation (if any)."""
        eliminated = set(self.result.eliminated_symbols)
        if self.problem.expected_eliminable is not None:
            if not set(self.problem.expected_eliminable) <= eliminated:
                return False
        if set(self.problem.expected_not_eliminable) & eliminated:
            return False
        return True


@dataclass
class LiteratureStudyResult:
    """Aggregate over the whole suite."""

    outcomes: List[LiteratureOutcome] = field(default_factory=list)

    @property
    def total_problems(self) -> int:
        return len(self.outcomes)

    @property
    def matching_expectations(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.matches_expectation)

    @property
    def fully_composed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.result.is_complete)

    def total_duration(self) -> float:
        return sum(outcome.duration_seconds for outcome in self.outcomes)

    def fraction_symbols_eliminated(self) -> float:
        attempted = sum(len(outcome.result.outcomes) for outcome in self.outcomes)
        eliminated = sum(
            len(outcome.result.eliminated_symbols) for outcome in self.outcomes
        )
        return eliminated / attempted if attempted else 1.0

    def to_table(self) -> str:
        rows = []
        for outcome in self.outcomes:
            rows.append(
                (
                    outcome.problem.name,
                    f"{len(outcome.result.eliminated_symbols)}/{len(outcome.result.outcomes)}",
                    "yes" if outcome.matches_expectation else "NO",
                    f"{1000 * outcome.duration_seconds:.1f}",
                )
            )
        table = format_table(
            ["problem", "eliminated", "as documented", "time (ms)"],
            rows,
            title="Literature composition problems",
        )
        summary = (
            f"\n{self.matching_expectations}/{self.total_problems} match documented outcomes, "
            f"{self.fully_composed} fully composed, "
            f"{self.fraction_symbols_eliminated():.0%} of symbols eliminated, "
            f"total {self.total_duration():.3f}s"
        )
        return table + summary


def run_literature_study(config: Optional[ComposerConfig] = None) -> LiteratureStudyResult:
    """Run the composition algorithm over the full literature suite."""
    config = config or ComposerConfig.default()
    study = LiteratureStudyResult()
    for problem in all_problems():
        started = time.perf_counter()
        result = compose(problem.problem, config)
        duration = time.perf_counter() - started
        study.outcomes.append(
            LiteratureOutcome(problem=problem, result=result, duration_seconds=duration)
        )
    return study
