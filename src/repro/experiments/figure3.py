"""Figure 3 — execution time per edit for each schema-evolution primitive.

The paper's Figure 3 plots the mean composition time per edit (milliseconds),
per primitive, for the same four configurations as Figure 2.

Expected shape: adding keys or disabling view unfolding increases the running
time significantly (about an order of magnitude on the per-run medians), while
'no right compose' is comparable to 'no keys'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.engine.batch import BatchComposer
from repro.experiments.figure2 import FIGURE2_PRIMITIVES
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    EditingStudy,
    ExperimentConfiguration,
    run_editing_study,
)

__all__ = ["Figure3Result", "run_figure3"]


@dataclass
class Figure3Result:
    """Per-configuration, per-primitive mean composition times (milliseconds)."""

    study: EditingStudy
    times_ms: Dict[str, Dict[str, float]]
    median_run_seconds: Dict[str, float]

    def series(self, configuration: str) -> Dict[str, float]:
        """The Figure 3 series for one configuration."""
        return self.times_ms[configuration]

    def to_table(self) -> str:
        configurations = list(self.times_ms)
        headers = ["primitive"] + [f"{name} (ms)" for name in configurations]
        rows = []
        for primitive in FIGURE2_PRIMITIVES:
            row = [primitive]
            for configuration in configurations:
                value = self.times_ms[configuration].get(primitive)
                row.append("-" if value is None else f"{value:.2f}")
            rows.append(row)
        table = format_table(
            headers, rows, title="Figure 3: execution time per edit (ms) per primitive"
        )
        medians = ", ".join(
            f"{name}: {seconds:.3f}s" for name, seconds in self.median_run_seconds.items()
        )
        return table + "\nmedian time per run: " + medians


def run_figure3(
    schema_size: int = 30,
    num_edits: int = 30,
    runs: int = 3,
    seed: int = 0,
    configurations: Optional[Sequence[ExperimentConfiguration]] = None,
    paper_scale: bool = False,
    study: Optional[EditingStudy] = None,
    batch: Optional[BatchComposer] = None,
) -> Figure3Result:
    """Regenerate Figure 3 (optionally reusing an existing editing study)."""
    study = study or run_editing_study(
        schema_size=schema_size,
        num_edits=num_edits,
        runs=runs,
        seed=seed,
        configurations=configurations,
        paper_scale=paper_scale,
        batch=batch,
    )
    times = {
        configuration: study.time_per_edit_by_primitive(configuration)
        for configuration in study.configurations()
    }
    medians = {
        configuration: study.median_run_duration(configuration)
        for configuration in study.configurations()
    }
    return Figure3Result(study=study, times_ms=times, median_run_seconds=medians)
