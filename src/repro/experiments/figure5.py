"""Figure 5 — increasing the proportion of inclusion (open-world) primitives.

The paper's Figure 5 sweeps the share of Sub/Sup edits from 0% to 20% of the
event vector and plots, against that proportion: the total fraction of symbols
eliminated, the per-primitive fractions for Df, DA, Nf and Hf, and the total
running time.

Expected shape: as the proportion of inclusion edits grows, composition gets
harder (total fraction drops, mainly because view unfolding applies less
often) while the running time *decreases*, because the algorithm fails fast on
symbols that cannot be isolated on either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compose.config import ComposerConfig
from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.scenarios import run_editing_scenario
from repro.experiments.reporting import format_table
from repro.experiments.runner import mean

__all__ = ["Figure5Point", "Figure5Result", "run_figure5", "FIGURE5_TRACKED_PRIMITIVES"]

#: The individual primitives whose series the paper plots alongside the total.
FIGURE5_TRACKED_PRIMITIVES: Tuple[str, ...] = ("Df", "DA", "Nf", "Hf")


@dataclass(frozen=True)
class Figure5Point:
    """One x-axis position of Figure 5."""

    inclusion_proportion: float
    total_fraction: float
    per_primitive: Dict[str, float]
    mean_run_seconds: float


@dataclass
class Figure5Result:
    """The full Figure 5 sweep."""

    points: List[Figure5Point] = field(default_factory=list)

    def proportions(self) -> List[float]:
        return [point.inclusion_proportion for point in self.points]

    def total_series(self) -> List[float]:
        return [point.total_fraction for point in self.points]

    def time_series(self) -> List[float]:
        return [point.mean_run_seconds for point in self.points]

    def primitive_series(self, primitive: str) -> List[float]:
        return [point.per_primitive.get(primitive, float("nan")) for point in self.points]

    def to_table(self) -> str:
        headers = ["inclusion %", "total"] + list(FIGURE5_TRACKED_PRIMITIVES) + ["time (s)"]
        rows = []
        for point in self.points:
            row = [f"{100 * point.inclusion_proportion:.0f}", f"{point.total_fraction:.2f}"]
            for primitive in FIGURE5_TRACKED_PRIMITIVES:
                value = point.per_primitive.get(primitive)
                row.append("-" if value is None else f"{value:.2f}")
            row.append(f"{point.mean_run_seconds:.3f}")
            rows.append(row)
        return format_table(
            headers, rows, title="Figure 5: increasing proportion of inclusion primitives"
        )


def run_figure5(
    proportions: Optional[Sequence[float]] = None,
    schema_size: int = 30,
    num_edits: int = 30,
    runs: int = 2,
    seed: int = 0,
    simulator_config: Optional[SimulatorConfig] = None,
    composer_config: Optional[ComposerConfig] = None,
    paper_scale: bool = False,
) -> Figure5Result:
    """Regenerate Figure 5.

    ``proportions`` lists the Sub/Sup shares to sweep (default 0%..20% in 4%
    steps; the paper uses 0%..20% in 2% steps with 100 edits and many runs).
    """
    if paper_scale:
        schema_size, num_edits, runs = 30, 100, 20
        proportions = proportions or [i / 100.0 for i in range(0, 21, 2)]
    proportions = list(proportions) if proportions else [0.0, 0.04, 0.08, 0.12, 0.16, 0.20]
    simulator_config = simulator_config or SimulatorConfig.no_keys()
    composer_config = composer_config or ComposerConfig.default()

    result = Figure5Result()
    for proportion in proportions:
        vector = EventVector.default().with_inclusion_proportion(proportion)
        run_results = [
            run_editing_scenario(
                schema_size=schema_size,
                num_edits=num_edits,
                seed=seed + run_index,
                simulator_config=simulator_config,
                composer_config=composer_config,
                event_vector=vector,
            )
            for run_index in range(runs)
        ]
        attempted: Dict[str, int] = {}
        eliminated: Dict[str, int] = {}
        total_attempted = 0
        total_eliminated = 0
        for run_result in run_results:
            for record in run_result.records:
                total_attempted += len(record.consumed_symbols)
                total_eliminated += len(record.consumed_eliminated)
                if record.consumed_symbols:
                    attempted[record.primitive] = attempted.get(record.primitive, 0) + len(
                        record.consumed_symbols
                    )
                    eliminated[record.primitive] = eliminated.get(record.primitive, 0) + len(
                        record.consumed_eliminated
                    )
        per_primitive = {
            primitive: eliminated.get(primitive, 0) / count
            for primitive, count in attempted.items()
        }
        result.points.append(
            Figure5Point(
                inclusion_proportion=proportion,
                total_fraction=(total_eliminated / total_attempted) if total_attempted else 1.0,
                per_primitive=per_primitive,
                mean_run_seconds=mean([r.total_duration() for r in run_results]),
            )
        )
    return result
