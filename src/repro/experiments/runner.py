"""Shared infrastructure for the experiment drivers.

The paper's schema-editing experiments examine four configurations of the
algorithm/simulator pair ('no keys', 'keys', 'no unfolding', 'no right
compose'); :data:`STANDARD_CONFIGURATIONS` captures them, and
:class:`EditingStudy` runs a number of editing-scenario runs for each and
keeps the raw per-run results that Figures 2, 3 and 4 aggregate differently.

All experiment parameters default to a *scaled-down* workload so that the
benchmark suite completes in minutes on a laptop; the paper-scale parameters
(100 runs of 100 edits over schemas of size 30) are available through
``paper_scale=True`` or by passing the numbers explicitly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compose.config import ComposerConfig
from repro.engine.batch import BatchComposer
from repro.evolution.config import SimulatorConfig
from repro.evolution.event_vector import EventVector
from repro.evolution.scenarios import (
    EditingScenarioResult,
    run_editing_scenario,
    run_reconciliation_scenario,
)

__all__ = [
    "ExperimentConfiguration",
    "STANDARD_CONFIGURATIONS",
    "EditingStudy",
    "planner_configurations",
    "run_editing_study",
    "median",
    "mean",
]


def median(values: Sequence[float]) -> float:
    """Median of a sequence (0.0 for an empty one)."""
    return statistics.median(values) if values else 0.0


def mean(values: Sequence[float]) -> float:
    """Mean of a sequence (0.0 for an empty one)."""
    return statistics.fmean(values) if values else 0.0


@dataclass(frozen=True)
class ExperimentConfiguration:
    """One named column of the paper's editing experiments."""

    name: str
    simulator_config: SimulatorConfig
    composer_config: ComposerConfig

    def __repr__(self) -> str:
        return f"<ExperimentConfiguration {self.name!r}>"


def _standard_configurations() -> Tuple[ExperimentConfiguration, ...]:
    return (
        ExperimentConfiguration(
            "no keys", SimulatorConfig.no_keys(), ComposerConfig.default()
        ),
        ExperimentConfiguration(
            "keys", SimulatorConfig.with_keys(), ComposerConfig.default()
        ),
        ExperimentConfiguration(
            "no unfolding", SimulatorConfig.no_keys(), ComposerConfig.no_view_unfolding()
        ),
        ExperimentConfiguration(
            "no right compose", SimulatorConfig.no_keys(), ComposerConfig.no_right_compose()
        ),
    )


#: The four configurations of Figures 2 and 3.
STANDARD_CONFIGURATIONS: Tuple[ExperimentConfiguration, ...] = _standard_configurations()


def planner_configurations() -> Tuple[ExperimentConfiguration, ...]:
    """The standard configurations plus a cost-guided planner column.

    Not part of :data:`STANDARD_CONFIGURATIONS` (the figures reproduce the
    paper's fixed-order algorithm); pass this to :func:`run_editing_study` to
    ablate the planner (:mod:`repro.compose.planner`) against the paper's
    columns on the same editing workload.
    """
    return STANDARD_CONFIGURATIONS + (
        ExperimentConfiguration(
            "cost planner", SimulatorConfig.no_keys(), ComposerConfig.cost_guided()
        ),
    )


@dataclass
class EditingStudy:
    """Raw results of repeated schema-editing runs for several configurations."""

    schema_size: int
    num_edits: int
    runs: int
    results: Dict[str, List[EditingScenarioResult]] = field(default_factory=dict)

    def configurations(self) -> Tuple[str, ...]:
        return tuple(self.results)

    # -- aggregations used by Figures 2-4 -------------------------------------------

    def fraction_by_primitive(self, configuration: str) -> Dict[str, float]:
        """Mean per-primitive elimination fraction across runs (Figure 2)."""
        attempted: Dict[str, int] = {}
        eliminated: Dict[str, int] = {}
        for result in self.results[configuration]:
            for record in result.records:
                if not record.consumed_symbols:
                    continue
                attempted[record.primitive] = attempted.get(record.primitive, 0) + len(
                    record.consumed_symbols
                )
                eliminated[record.primitive] = eliminated.get(record.primitive, 0) + len(
                    record.consumed_eliminated
                )
        return {
            primitive: eliminated.get(primitive, 0) / count
            for primitive, count in attempted.items()
        }

    def time_per_edit_by_primitive(self, configuration: str) -> Dict[str, float]:
        """Mean per-primitive composition time in milliseconds (Figure 3)."""
        durations: Dict[str, List[float]] = {}
        for result in self.results[configuration]:
            for record in result.records:
                durations.setdefault(record.primitive, []).append(record.duration_seconds)
        return {
            primitive: 1000.0 * mean(values) for primitive, values in durations.items()
        }

    def run_durations(self, configuration: str) -> List[float]:
        """Total composition time of each run, in seconds (Figure 4)."""
        return [result.total_duration() for result in self.results[configuration]]

    def median_run_duration(self, configuration: str) -> float:
        """Median per-run composition time (the statistic the paper reports)."""
        return median(self.run_durations(configuration))

    def total_fraction_eliminated(self, configuration: str) -> float:
        """Overall fraction of consumed symbols eliminated across all runs."""
        attempted = 0
        eliminated = 0
        for result in self.results[configuration]:
            for record in result.records:
                attempted += len(record.consumed_symbols)
                eliminated += len(record.consumed_eliminated)
        return eliminated / attempted if attempted else 1.0

    def mean_constraint_stats(self, configuration: str) -> Tuple[float, float]:
        """Mean (constraints, operators) of the final accumulated mappings."""
        constraint_counts = [
            len(result.constraints) for result in self.results[configuration]
        ]
        operator_counts = [
            result.constraints.operator_count() for result in self.results[configuration]
        ]
        return mean(constraint_counts), mean(operator_counts)


def _editing_run_job(kwargs: dict) -> EditingScenarioResult:
    """Module-level job wrapper (picklable for the process backend)."""
    return run_editing_scenario(**kwargs)


def _reconciliation_job(kwargs: dict):
    """Module-level reconciliation job (shared by the Figure 6 and 7 drivers)."""
    record, _ = run_reconciliation_scenario(**kwargs)
    return record


def run_editing_study(
    schema_size: int = 30,
    num_edits: int = 30,
    runs: int = 3,
    seed: int = 0,
    configurations: Optional[Sequence[ExperimentConfiguration]] = None,
    event_vector: Optional[EventVector] = None,
    paper_scale: bool = False,
    batch: Optional[BatchComposer] = None,
) -> EditingStudy:
    """Run the schema-editing study underlying Figures 2, 3 and 4.

    With ``paper_scale=True`` the paper's parameters are used (schema size 30,
    100 edits per run, 100 runs), which takes considerably longer.  All
    configuration × run combinations are independent (each run owns its seed),
    so they are dispatched as one batch through ``batch`` (a
    :class:`BatchComposer`; a default serial one when omitted) — pass a
    thread/process-backed composer to spread paper-scale studies over cores.
    """
    if paper_scale:
        schema_size, num_edits, runs = 30, 100, 100
    configurations = tuple(configurations) if configurations else STANDARD_CONFIGURATIONS
    event_vector = event_vector or EventVector.default()
    batch = batch or BatchComposer()

    jobs = []
    labels = []
    for configuration in configurations:
        for run_index in range(runs):
            labels.append(f"{configuration.name}/run[{run_index}]")
            jobs.append(
                dict(
                    schema_size=schema_size,
                    num_edits=num_edits,
                    seed=seed + run_index,
                    simulator_config=configuration.simulator_config,
                    composer_config=configuration.composer_config,
                    event_vector=event_vector,
                )
            )
    report = batch.map(_editing_run_job, jobs, labels=labels)
    report.raise_failures()

    study = EditingStudy(schema_size=schema_size, num_edits=num_edits, runs=runs)
    payloads = iter(item.result for item in report.items)
    for configuration in configurations:
        study.results[configuration.name] = [next(payloads) for _ in range(runs)]
    return study
