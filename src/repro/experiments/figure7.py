"""Figure 7 — schema reconciliation while varying the number of edits.

The paper's Figure 7 plots, for reconciliation tasks over a fixed-size
intermediate schema, the fraction of symbols eliminated and the execution time
against the length of the two edit sequences (10 to 210 edits).

Expected shape: more edits make composition harder — the fraction of
eliminated symbols drops while the running time grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.compose.config import ComposerConfig
from repro.engine.batch import BatchComposer
from repro.evolution.config import SimulatorConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import _reconciliation_job, mean

__all__ = ["Figure7Point", "Figure7Result", "run_figure7"]


@dataclass(frozen=True)
class Figure7Point:
    """One x-axis position of Figure 7."""

    num_edits: int
    fraction_eliminated: float
    mean_seconds: float


@dataclass
class Figure7Result:
    """The full Figure 7 sweep."""

    schema_size: int
    points: List[Figure7Point] = field(default_factory=list)

    def edit_counts(self) -> List[int]:
        return [point.num_edits for point in self.points]

    def fraction_series(self) -> List[float]:
        return [point.fraction_eliminated for point in self.points]

    def time_series(self) -> List[float]:
        return [point.mean_seconds for point in self.points]

    def to_table(self) -> str:
        rows = [
            (point.num_edits, f"{point.fraction_eliminated:.2f}", f"{point.mean_seconds:.3f}")
            for point in self.points
        ]
        return format_table(
            ["number of edits", "fraction eliminated", "execution time (s)"],
            rows,
            title=f"Figure 7: varying number of edits (schema size {self.schema_size})",
        )


def run_figure7(
    edit_counts: Optional[Sequence[int]] = None,
    schema_size: int = 30,
    tasks_per_point: int = 2,
    seed: int = 0,
    simulator_config: Optional[SimulatorConfig] = None,
    composer_config: Optional[ComposerConfig] = None,
    paper_scale: bool = False,
    batch: Optional[BatchComposer] = None,
) -> Figure7Result:
    """Regenerate Figure 7 (paper: 10..210 edits in steps of 20, schema size 30).

    As with Figure 6, the (edit count, task) grid is dispatched as one batch
    through ``batch`` (a default serial :class:`BatchComposer` when omitted).
    """
    if paper_scale:
        edit_counts = edit_counts or list(range(10, 211, 20))
        tasks_per_point = 20
    edit_counts = list(edit_counts) if edit_counts else [10, 20, 40, 60]
    simulator_config = simulator_config or SimulatorConfig.no_keys()
    composer_config = composer_config or ComposerConfig.default()
    batch = batch or BatchComposer()

    jobs = []
    labels = []
    for num_edits in edit_counts:
        for task_index in range(tasks_per_point):
            labels.append(f"edits[{num_edits}]/task[{task_index}]")
            jobs.append(
                dict(
                    schema_size=schema_size,
                    num_edits=num_edits,
                    seed=seed + task_index,
                    simulator_config=simulator_config,
                    composer_config=composer_config,
                )
            )
    report = batch.map(_reconciliation_job, jobs, labels=labels)
    report.raise_failures()

    result = Figure7Result(schema_size=schema_size)
    records = iter(item.result for item in report.items)
    for num_edits in edit_counts:
        point = [next(records) for _ in range(tasks_per_point)]
        result.points.append(
            Figure7Point(
                num_edits=num_edits,
                fraction_eliminated=mean([r.fraction_eliminated for r in point]),
                mean_seconds=mean([r.duration_seconds for r in point]),
            )
        )
    return result
