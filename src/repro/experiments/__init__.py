"""Experiment drivers regenerating every figure of the paper's evaluation."""

from repro.experiments.runner import (
    EditingStudy,
    ExperimentConfiguration,
    STANDARD_CONFIGURATIONS,
    planner_configurations,
    run_editing_study,
)
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.literature_study import LiteratureStudyResult, run_literature_study
from repro.experiments.reporting import format_table

__all__ = [
    "EditingStudy",
    "ExperimentConfiguration",
    "STANDARD_CONFIGURATIONS",
    "planner_configurations",
    "run_editing_study",
    "Figure2Result",
    "run_figure2",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "LiteratureStudyResult",
    "run_literature_study",
    "format_table",
]
