"""Text rendering helpers for the experiment drivers.

Every figure driver can render its result as a plain-text table whose rows
mirror the series of the corresponding figure in the paper, so running a
benchmark (or an example) prints something directly comparable to the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_float", "format_percent"]


def format_float(value: float, digits: int = 3) -> str:
    """Render a float compactly (used for seconds and fractions)."""
    return f"{value:.{digits}f}"


def format_percent(value: float) -> str:
    """Render a fraction as a percentage."""
    return f"{100.0 * value:.1f}%"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)
