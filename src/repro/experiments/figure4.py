"""Figure 4 — sorted execution time across runs for the 'no keys' configuration.

The paper's Figure 4 sorts the total composition time of each of the 100 runs
and shows that most runs cluster tightly while a few outliers skew the mean —
the justification for reporting medians throughout the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.batch import BatchComposer
from repro.experiments.reporting import format_table
from repro.experiments.runner import EditingStudy, STANDARD_CONFIGURATIONS, mean, median, run_editing_study

__all__ = ["Figure4Result", "run_figure4"]


@dataclass
class Figure4Result:
    """Sorted per-run composition times for one configuration."""

    configuration: str
    sorted_durations: List[float]

    @property
    def median_seconds(self) -> float:
        return median(self.sorted_durations)

    @property
    def mean_seconds(self) -> float:
        return mean(self.sorted_durations)

    @property
    def max_seconds(self) -> float:
        return max(self.sorted_durations) if self.sorted_durations else 0.0

    def skew_ratio(self) -> float:
        """How far the slowest run is above the median (the 'outlier' effect)."""
        if self.median_seconds == 0:
            return 0.0
        return self.max_seconds / self.median_seconds

    def to_table(self) -> str:
        rows = [
            (index, f"{duration:.3f}")
            for index, duration in enumerate(self.sorted_durations)
        ]
        table = format_table(
            ["run (sorted)", "execution time (s)"],
            rows,
            title=f"Figure 4: sorted execution time across runs ({self.configuration})",
        )
        return (
            table
            + f"\nmedian: {self.median_seconds:.3f}s  mean: {self.mean_seconds:.3f}s  "
            + f"max: {self.max_seconds:.3f}s"
        )


def run_figure4(
    schema_size: int = 30,
    num_edits: int = 30,
    runs: int = 10,
    seed: int = 0,
    configuration: str = "no keys",
    paper_scale: bool = False,
    study: Optional[EditingStudy] = None,
    batch: Optional[BatchComposer] = None,
) -> Figure4Result:
    """Regenerate Figure 4 (optionally reusing an existing editing study)."""
    if study is None:
        selected = [c for c in STANDARD_CONFIGURATIONS if c.name == configuration]
        study = run_editing_study(
            schema_size=schema_size,
            num_edits=num_edits,
            runs=runs,
            seed=seed,
            configurations=selected,
            paper_scale=paper_scale,
            batch=batch,
        )
    durations = sorted(study.run_durations(configuration))
    return Figure4Result(configuration=configuration, sorted_durations=durations)
