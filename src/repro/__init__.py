"""``repro`` — a reproduction of *Implementing Mapping Composition* (VLDB 2006).

The library implements the paper's algebra-based mapping-composition
component: mappings are sets of containment/equality constraints between
relational-algebra expressions, and :func:`repro.compose.compose` eliminates
as many intermediate-schema symbols as possible via view unfolding, left
composition and right composition (with Skolemization/deskolemization).

It also ships the evaluation apparatus of the paper: a schema-evolution
simulator with the primitives of Figure 1, the literature-derived composition
test suite, and experiment drivers that regenerate Figures 2-7.

Quickstart
----------
>>> from repro import Signature, Mapping, ConstraintSet
>>> from repro import parse_constraint, compose_mappings
>>> movies = Signature.from_arities({"Movies": 6})
>>> five_star = Signature.from_arities({"FiveStarMovies": 3})
>>> names_years = Signature.from_arities({"Names": 2, "Years": 2})
>>> m12 = Mapping(movies, five_star, ConstraintSet([
...     parse_constraint(
...         "project[0,1,2](select[#3 = 5](Movies/6)) <= FiveStarMovies/3")]))
>>> m23 = Mapping(five_star, names_years, ConstraintSet([
...     parse_constraint(
...         "project[0,1](FiveStarMovies/3) <= Names/2"),
...     parse_constraint(
...         "project[0,2](FiveStarMovies/3) <= Years/2")]))
>>> result = compose_mappings(m12, m23)
>>> result.is_complete
True
"""

from repro.algebra import (
    Attribute,
    Comparison,
    Condition,
    ConstantRelation,
    Constant,
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    SkolemFunction,
    Union,
    evaluate,
    parse_constraint,
    parse_constraints,
    parse_expression,
)
from repro.compose import (
    ComposerConfig,
    CompositionResult,
    EliminationMethod,
    compose,
    compose_mappings,
    eliminate,
)
from repro.constraints import (
    ConstraintSet,
    ContainmentConstraint,
    EqualityConstraint,
    satisfies,
    satisfies_all,
)
from repro.engine import (
    BatchComposer,
    BatchConfig,
    BatchReport,
    ChainGrower,
    ChainProblem,
    ChainResult,
    CheckpointStore,
    EvolutionSession,
    IncrementalComposer,
    WorkloadConfig,
    compose_chain,
    generate_workload,
)
from repro.catalog import CatalogEntry, MappingCatalog, PersistentCheckpointStore
from repro.mapping import CompositionProblem, Mapping, identity_mapping
from repro.operators import Monotonicity, OperatorRegistry, default_registry, monotonicity
from repro.schema import Instance, RelationSchema, Signature
from repro.service import CompositionService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algebra
    "Expression",
    "Relation",
    "Domain",
    "Empty",
    "ConstantRelation",
    "Union",
    "Intersection",
    "Difference",
    "CrossProduct",
    "Selection",
    "Projection",
    "SkolemFunction",
    "SkolemApplication",
    "Attribute",
    "Constant",
    "Condition",
    "Comparison",
    "parse_expression",
    "parse_constraint",
    "parse_constraints",
    "evaluate",
    # schema
    "Signature",
    "RelationSchema",
    "Instance",
    # constraints
    "ConstraintSet",
    "ContainmentConstraint",
    "EqualityConstraint",
    "satisfies",
    "satisfies_all",
    # mappings
    "Mapping",
    "identity_mapping",
    "CompositionProblem",
    # composition
    "ComposerConfig",
    "CompositionResult",
    "EliminationMethod",
    "compose",
    "compose_mappings",
    "eliminate",
    # engine
    "BatchComposer",
    "BatchConfig",
    "BatchReport",
    "ChainGrower",
    "ChainProblem",
    "ChainResult",
    "CheckpointStore",
    "EvolutionSession",
    "IncrementalComposer",
    "WorkloadConfig",
    "compose_chain",
    "generate_workload",
    # operators
    "Monotonicity",
    "monotonicity",
    "OperatorRegistry",
    "default_registry",
    # catalog + service
    "CatalogEntry",
    "MappingCatalog",
    "PersistentCheckpointStore",
    "CompositionService",
    "ServiceConfig",
]
