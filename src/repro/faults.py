"""Deterministic fault injection for the storage/catalog/service tier.

A durability claim that can only be tested by hand-written kill scripts is a
claim, not a test.  This module turns every failure mode the catalog tier
defends against into a *replayable schedule*: named fault points are threaded
through :mod:`repro.catalog.storage`, :mod:`repro.catalog.catalog`,
:mod:`repro.catalog.checkpoints` and :mod:`repro.catalog.leases`, and a
seeded :class:`FaultInjector` decides — deterministically, from per-point
call counters and a per-spec PRNG — which calls fail, stall, tear, or crash
the process outright.

Fault points currently instrumented
-----------------------------------

===============================  ==============================================
``storage.write.begin``          start of an atomic write (``eio``/``slow``)
``storage.write.torn``           tear the write: half the bytes land in the
                                 temp file, then ``EIO`` — the destination
                                 must stay untouched (``torn``)
``storage.fsync``                before the data fsync (``eio``/``slow``)
``storage.write.after_rename``   immediately after ``os.replace`` — the
                                 classic crash-after-rename window
                                 (``crash``/``eio``/``slow``)
``catalog.shard.read``           reading one index shard (``eio``/``slow``)
``catalog.lock.acquire``         taking a shard/lease file lock
                                 (``stall``/``eio``)
``checkpoint.load``              reading a checkpoint file (``eio``/``slow``)
``checkpoint.persist``           mirroring a checkpoint to disk
                                 (``eio``/``slow``)
``lease.write``                  writing a lease claim (``eio``/``slow``)
``journal.append.torn``          tear a journal append: a prefix of the
                                 entry lands, then ``EIO`` — the next append
                                 truncates the torn tail (``torn``)
``journal.append.fsync``         before the journal fsync
                                 (``eio``/``slow``/``crash``)
``journal.replay``               reading journal entries back
                                 (``eio``/``slow``)
``replica.apply``                a follower applying one journal entry
                                 (``eio``/``slow``/``crash``)
``router.backend``               the router proxying one request to one
                                 backend (``eio``/``slow``)
``election.acquire``             an elector claiming/racing for the
                                 ``leader`` lease (``eio``/``slow``/``crash``)
``election.renew``               a leader renewing its ``leader`` lease
                                 (``eio``/``slow``/``stall``)
``journal.epoch.write``          persisting a fencing epoch or ``FENCED``
                                 tombstone (``eio``/``slow``/``crash``)
===============================  ==============================================

Schedules
---------

A schedule is a ``;``-separated list of clauses.  ``seed=N`` seeds the
per-spec PRNGs; every other clause is ``point:kind[:key=value]*``::

    seed=7;storage.write.begin:eio:p=0.1;catalog.lock.acquire:stall:ms=25
    storage.write.after_rename:crash:after=3:limit=1

Spec keys: ``p`` (firing probability, default 1), ``nth`` (fire on every nth
matching call), ``after`` (skip the first N calls), ``limit`` (stop after
firing N times), ``ms`` (sleep milliseconds for ``slow``/``stall``).  A
trailing ``*`` in the point name matches a prefix (``storage.*``).

Activation
----------

Programmatic (tests): ``install(FaultInjector.from_text("..."))`` /
``clear()``.  Environment (subprocesses, CI chaos jobs): set
``REPRO_FAULTS`` to a schedule — the injector installs itself on the first
instrumented call.  ``REPRO_FAULTS_LOG`` names a JSONL file to which every
*fired* fault is appended (point, kind, pid, sequence numbers), so a chaos
run leaves an audit trail of exactly which faults it survived.

Injected I/O errors are ordinary ``OSError`` with ``errno == EIO``, so the
production classification in :mod:`repro.retry` treats them exactly like the
real thing.  ``crash`` calls ``os._exit(137)`` — no cleanup handlers, no
flushes — modelling SIGKILL at the instrumented instant.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from random import Random
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "LOG_ENV_VAR",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "install",
    "clear",
    "active",
    "fire",
    "torn_data",
]

ENV_VAR = "REPRO_FAULTS"
LOG_ENV_VAR = "REPRO_FAULTS_LOG"

#: ``stall`` is an alias of ``slow`` that reads better on lock points.
FAULT_KINDS = ("eio", "slow", "stall", "torn", "crash")

_CRASH_EXIT_CODE = 137  # what a SIGKILLed process reports


@dataclass
class FaultSpec:
    """One scheduled failure: *where* (point), *what* (kind), and *when*."""

    point: str
    kind: str
    probability: float = 1.0
    nth: Optional[int] = None
    after: int = 0
    limit: Optional[int] = None
    delay_ms: float = 10.0
    calls: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("fault probability must be within [0, 1]")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth must be positive")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.limit is not None and self.limit < 0:
            raise ValueError("limit must be non-negative")
        if self.delay_ms < 0:
            raise ValueError("ms must be non-negative")

    def matches(self, point: str) -> bool:
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point

    def should_fire(self, rng: Random) -> bool:
        """Advance this spec's call counter and decide (deterministically).

        The caller holds the injector lock, so counters and the per-spec PRNG
        advance in one global order per process — the same schedule replays
        the same decisions for the same call sequence.
        """
        self.calls += 1
        if self.limit is not None and self.fired >= self.limit:
            return False
        if self.calls <= self.after:
            return False
        if self.nth is not None and self.calls % self.nth != 0:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def label(self) -> str:
        return f"{self.point}:{self.kind}"


def _parse_clause(clause: str) -> FaultSpec:
    parts = clause.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"malformed fault clause {clause!r}: expected 'point:kind[:key=value]*'"
        )
    point, kind = parts[0].strip(), parts[1].strip()
    kwargs: Dict[str, object] = {}
    for option in parts[2:]:
        key, _, value = option.partition("=")
        key = key.strip()
        value = value.strip()
        if not value:
            raise ValueError(f"malformed fault option {option!r} in {clause!r}")
        if key == "p":
            kwargs["probability"] = float(value)
        elif key == "nth":
            kwargs["nth"] = int(value)
        elif key == "after":
            kwargs["after"] = int(value)
        elif key == "limit":
            kwargs["limit"] = int(value)
        elif key == "ms":
            kwargs["delay_ms"] = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {clause!r}")
    return FaultSpec(point=point, kind=kind, **kwargs)


class FaultInjector:
    """A seeded set of :class:`FaultSpec` plus the machinery to fire them.

    Thread-safe: one lock serializes every decision, so per-spec counters and
    PRNG draws advance in a single process-wide order.  Each spec gets its
    own PRNG seeded from ``(seed, point, kind, index)``, so adding a clause
    to a schedule never perturbs the draws of the clauses before it.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        seed: int = 0,
        log_path: Optional[str] = None,
    ):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.log_path = log_path
        self._lock = threading.Lock()
        self._rngs: List[Random] = [
            Random(self._spec_seed(spec, index)) for index, spec in enumerate(self.specs)
        ]
        self._log_handle = None
        self._log_failed = False

    def _spec_seed(self, spec: FaultSpec, index: int) -> int:
        digest = blake2b(
            f"{self.seed}/{spec.point}/{spec.kind}/{index}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, log_path: Optional[str] = None) -> "FaultInjector":
        """Parse a schedule string (see the module docstring for the grammar)."""
        seed = 0
        specs: List[FaultSpec] = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            specs.append(_parse_clause(clause))
        return cls(specs, seed=seed, log_path=log_path)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultInjector"]:
        """Build an injector from ``$REPRO_FAULTS`` (``None`` when unset/empty)."""
        environ = os.environ if environ is None else environ
        text = environ.get(ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_text(text, log_path=environ.get(LOG_ENV_VAR) or None)

    # -- firing ----------------------------------------------------------------------

    def _triggered(self, point: str, kinds: Tuple[str, ...]) -> List[FaultSpec]:
        with self._lock:
            hits = []
            for index, spec in enumerate(self.specs):
                if spec.kind not in kinds or not spec.matches(point):
                    continue
                if spec.should_fire(self._rngs[index]):
                    hits.append(spec)
                    self._log(point, spec)
            return hits

    def fire(self, point: str, **context) -> None:
        """Run every non-``torn`` fault scheduled at ``point``.

        ``slow``/``stall`` sleep, ``crash`` exits the process without
        cleanup, and ``eio`` raises ``OSError(EIO)`` — after the sleeps, so
        a clause pair ``slow`` + ``eio`` models a write that hung *and then*
        failed.
        """
        eio: Optional[FaultSpec] = None
        for spec in self._triggered(point, ("slow", "stall", "crash", "eio")):
            if spec.kind in ("slow", "stall"):
                time.sleep(spec.delay_ms / 1000.0)
            elif spec.kind == "crash":
                self._flush_log()
                os._exit(_CRASH_EXIT_CODE)
            else:
                eio = spec
        if eio is not None:
            raise OSError(
                errno.EIO,
                f"injected transient I/O fault ({eio.label()}) at {point}",
            )

    def torn_data(self, point: str, data: bytes) -> Optional[bytes]:
        """The truncated payload a ``torn`` spec at ``point`` demands, or ``None``.

        The storage layer writes the returned prefix to its temp file and then
        raises ``EIO`` — modelling a writer that died mid-write.  Because the
        tear happens before the rename, the destination must never see it.
        """
        if not self._triggered(point, ("torn",)):
            return None
        return data[: max(1, len(data) // 2)]

    # -- audit trail -----------------------------------------------------------------

    def _log(self, point: str, spec: FaultSpec) -> None:
        if not self.log_path or self._log_failed:
            return
        try:
            if self._log_handle is None:
                self._log_handle = open(self.log_path, "a", encoding="utf-8")
            self._log_handle.write(
                json.dumps(
                    {
                        "ts": time.time(),
                        "pid": os.getpid(),
                        "point": point,
                        "spec": spec.label(),
                        "call": spec.calls,
                        "fired": spec.fired,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            self._log_handle.flush()
        except OSError:
            # The log is an audit convenience; it must never become a fault
            # of its own.
            self._log_failed = True

    def _flush_log(self) -> None:
        if self._log_handle is not None:
            try:
                self._log_handle.flush()
                os.fsync(self._log_handle.fileno())
            except OSError:
                pass

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "specs": [
                    {
                        "spec": spec.label(),
                        "calls": spec.calls,
                        "fired": spec.fired,
                    }
                    for spec in self.specs
                ],
                "fired_total": sum(spec.fired for spec in self.specs),
            }

    def __repr__(self) -> str:
        return f"<FaultInjector seed={self.seed}: {len(self.specs)} specs>"


# -- the process-global injector -----------------------------------------------------
#
# Instrumented sites call the module-level fire()/torn_data(), which consult
# one process-global injector.  Tests install one explicitly; subprocesses
# (chaos suite, CI) activate through $REPRO_FAULTS on the first call.

_active: Optional[FaultInjector] = None
_env_checked = False
_install_lock = threading.Lock()


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-global injector; returns it."""
    global _active, _env_checked
    with _install_lock:
        _active = injector
        _env_checked = True
    return injector


def clear() -> None:
    """Deactivate fault injection (and forget any env-derived injector)."""
    global _active, _env_checked
    with _install_lock:
        _active = None
        _env_checked = True


def active() -> Optional[FaultInjector]:
    """The process-global injector, lazily created from ``$REPRO_FAULTS``."""
    global _active, _env_checked
    if _env_checked:
        return _active
    with _install_lock:
        if not _env_checked:
            _active = FaultInjector.from_env()
            _env_checked = True
    return _active


def fire(point: str, **context) -> None:
    """Fire the faults scheduled at ``point`` (no-op when none is installed)."""
    injector = active()
    if injector is not None:
        injector.fire(point, **context)


def torn_data(point: str, data: bytes) -> Optional[bytes]:
    """The torn payload scheduled at ``point``, or ``None`` (the common case)."""
    injector = active()
    if injector is None:
        return None
    return injector.torn_data(point, data)
