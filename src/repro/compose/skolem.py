"""Canonical form for constraints containing Skolem functions.

Deskolemization (Section 3.5.3) first brings each Skolemized left-hand side
into the canonical shape the paper describes::

    π σ f g ... σ (R1 × R2 × ... × Rk)

i.e. an outer projection over a chain of Skolem functions over a (selected)
cross product of Skolem-free expressions.  We represent that shape explicitly:

* ``base``    — a Skolem-free expression (the ``σ(R1 × ... × Rk)`` part);
* ``skolems`` — the chain of Skolem columns, each recording its function and
  which *base* columns it depends on;
* ``output``  — for every output column, whether it reads a base column or a
  Skolem column (the outer ``π``).

Canonicalization is best-effort: shapes it cannot handle (Skolem functions
under union/intersection/difference, selections on Skolem columns, Skolem
functions depending on other Skolem columns) return ``None``, which makes the
enclosing right-compose step fail for that symbol — mirroring the paper, whose
deskolemization "may fail at several of the steps".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.algebra.builders import select
from repro.algebra.expressions import (
    CrossProduct,
    Expression,
    Projection,
    Selection,
    SkolemApplication,
    SkolemFunction,
)
from repro.algebra.traversal import contains_skolem

__all__ = ["ColumnRef", "SkolemColumn", "SkolemizedSide", "canonicalize_skolemized"]


@dataclass(frozen=True)
class ColumnRef:
    """A reference to either a base column or a Skolem column of the canonical form."""

    kind: str  # "base" or "skolem"
    index: int

    def shifted(self, base_offset: int, skolem_offset: int) -> "ColumnRef":
        if self.kind == "base":
            return ColumnRef("base", self.index + base_offset)
        return ColumnRef("skolem", self.index + skolem_offset)


@dataclass(frozen=True)
class SkolemColumn:
    """One Skolem column: the function applied and the base columns it reads."""

    function: SkolemFunction
    arguments: Tuple[ColumnRef, ...]

    def shifted(self, base_offset: int, skolem_offset: int) -> "SkolemColumn":
        return SkolemColumn(
            self.function,
            tuple(argument.shifted(base_offset, skolem_offset) for argument in self.arguments),
        )


@dataclass(frozen=True)
class SkolemizedSide:
    """The canonical form ``π_output(skolems(base))`` of a Skolemized expression."""

    base: Expression
    skolems: Tuple[SkolemColumn, ...]
    output: Tuple[ColumnRef, ...]

    @property
    def base_arity(self) -> int:
        return self.base.arity

    @property
    def skolem_count(self) -> int:
        return len(self.skolems)

    def function_names(self) -> Tuple[str, ...]:
        return tuple(column.function.name for column in self.skolems)

    def uses_skolem_output(self) -> bool:
        """Return ``True`` if any output column reads a Skolem column."""
        return any(ref.kind == "skolem" for ref in self.output)


def canonicalize_skolemized(expression: Expression) -> Optional[SkolemizedSide]:
    """Bring a (possibly Skolemized) expression into canonical form.

    Returns ``None`` when the expression's shape is outside the fragment the
    deskolemizer handles (the paper's unnest / cycle checks, steps 1-2).
    """
    if not contains_skolem(expression):
        return SkolemizedSide(
            base=expression,
            skolems=(),
            output=tuple(ColumnRef("base", i) for i in range(expression.arity)),
        )

    if isinstance(expression, SkolemApplication):
        inner = canonicalize_skolemized(expression.child)
        if inner is None:
            return None
        arguments: List[ColumnRef] = []
        for index in expression.function.depends_on:
            reference = inner.output[index]
            if reference.kind == "skolem":
                # A Skolem function depending on another Skolem column would be
                # a cycle (paper step 2): refuse.
                return None
            arguments.append(reference)
        new_column = SkolemColumn(expression.function, tuple(arguments))
        return SkolemizedSide(
            base=inner.base,
            skolems=inner.skolems + (new_column,),
            output=inner.output + (ColumnRef("skolem", len(inner.skolems)),),
        )

    if isinstance(expression, Projection):
        inner = canonicalize_skolemized(expression.child)
        if inner is None:
            return None
        return SkolemizedSide(
            base=inner.base,
            skolems=inner.skolems,
            output=tuple(inner.output[index] for index in expression.indices),
        )

    if isinstance(expression, Selection):
        inner = canonicalize_skolemized(expression.child)
        if inner is None:
            return None
        references = expression.condition.referenced_indices()
        mapping = {}
        for index in references:
            reference = inner.output[index]
            if reference.kind == "skolem":
                # A selection restricting a Skolem column (a "restricting atom",
                # paper step 5) is outside the fragment we eliminate: refuse.
                return None
            mapping[index] = reference.index
        pushed_condition = expression.condition.remapped(mapping)
        return SkolemizedSide(
            base=select(inner.base, pushed_condition),
            skolems=inner.skolems,
            output=inner.output,
        )

    if isinstance(expression, CrossProduct):
        left = canonicalize_skolemized(expression.left)
        right = canonicalize_skolemized(expression.right)
        if left is None or right is None:
            return None
        base = CrossProduct(left.base, right.base)
        base_offset = left.base.arity
        skolem_offset = len(left.skolems)
        skolems = left.skolems + tuple(
            column.shifted(base_offset, skolem_offset) for column in right.skolems
        )
        output = left.output + tuple(
            reference.shifted(base_offset, skolem_offset) for reference in right.output
        )
        return SkolemizedSide(base=base, skolems=skolems, output=output)

    # Skolem functions under any other operator (union, intersection,
    # difference, extended operators) are outside the canonical fragment.
    return None
