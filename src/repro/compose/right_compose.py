"""The right-compose step of ELIMINATE (paper Sections 3.1 and 3.5).

Right compose is dual to left compose: it finds a *lower bound* ``E1 ⊆ S``
(via right-normalization, possibly introducing Skolem functions to invert
projections) and substitutes ``E1`` for ``S`` in every constraint where ``S``
occurs on the left-hand side in a position monotone in ``S``:

    ``M(S) ⊆ E2``  becomes  ``M(E1) ⊆ E2``,

sound because ``M(E1) ⊆ M(S) ⊆ E2`` and complete by setting ``S := E1``.
If Skolem functions were introduced, the result must be deskolemized; if that
fails, the whole right-compose step fails (the paper's behaviour).
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.traversal import contains_relation, substitute_relation
from repro.compose.deskolemize import deskolemize
from repro.compose.empty_elimination import eliminate_empty
from repro.compose.failure_memo import NormalizationFailureMemo
from repro.compose.normalize_context import NormalizationContext
from repro.compose.phases import timed
from repro.compose.right_normalize import right_normalize
from repro.constraints.constraint import Constraint, ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.operators.monotonicity import Monotonicity, monotonicity

__all__ = ["right_compose"]

_SAFE = (Monotonicity.MONOTONE, Monotonicity.INDEPENDENT)


def right_compose(
    constraints: ConstraintSet,
    symbol: str,
    symbol_arity: int,
    registry=None,
    max_steps: int = 500,
) -> Optional[ConstraintSet]:
    """Try to eliminate ``symbol`` by right composition.

    Returns the rewritten constraint set (free of ``symbol``) on success, or
    ``None`` if any sub-step fails:

    1. the symbol appears on both sides of some constraint;
    2. some left-hand side containing the symbol is not monotone in it;
    3. right-normalization fails (e.g. an unknown operator on the right);
    4. the post-normalization monotonicity re-check fails;
    5. deskolemization fails.

    As in left compose, the per-constraint failures (kinds 1-3) are recorded
    in the active cache's failure memo so retries fast-fail.
    """
    mentioning = [constraints[i] for i in constraints.indices_mentioning(symbol)]
    memo = NormalizationFailureMemo("right-compose", registry, symbol)
    if memo.any_known(mentioning):
        return None

    # Step 0: exit if S appears on both sides of some constraint.  The symbol
    # index narrows every scan to the constraints that mention S at all.
    for constraint in mentioning:
        if constraint.mentions_on_left(symbol) and constraint.mentions_on_right(symbol):
            memo.record(constraint)
            return None

    # Convert equalities mentioning S into pairs of containments.
    working = constraints.with_equalities_split(symbol)
    memo.map_split_origins(mentioning)

    # Step 1: left-monotonicity check — every LHS that mentions S must be monotone in S.
    for index in working.indices_mentioning(symbol):
        constraint = working[index]
        if constraint.mentions_on_left(symbol):
            if monotonicity(constraint.left, symbol, registry) not in _SAFE:
                memo.record(constraint)
                return None

    # Step 2: right-normalize, producing the single lower bound ξ : E1 ⊆ S.
    context = NormalizationContext(symbol=symbol, symbol_arity=symbol_arity, registry=registry)
    with timed("normalize"):
        normalized = right_normalize(
            working, symbol, context, max_steps=max_steps, failure_sink=memo.sink
        )
    if normalized is None:
        return None
    normalized_set, xi = normalized
    lower_bound = xi.left
    if contains_relation(lower_bound, symbol):
        return None

    # Step 3: basic right compose — drop ξ and substitute E1 for S on left-hand sides.
    result: List[Constraint] = []
    for constraint in normalized_set:
        if constraint == xi:
            continue
        if constraint.mentions_on_right(symbol):
            # Right normal form guarantees S appears on the right only in ξ.
            return None
        if constraint.mentions_on_left(symbol):
            if monotonicity(constraint.left, symbol, registry) not in _SAFE:
                return None
            result.append(
                ContainmentConstraint(
                    substitute_relation(constraint.left, symbol, lower_bound),
                    constraint.right,
                )
            )
        else:
            result.append(constraint)

    candidate = ConstraintSet(result)

    # Step 4: deskolemize if normalization introduced Skolem functions.
    if candidate.contains_skolem():
        with timed("deskolemize"):
            deskolemized = deskolemize(candidate)
        if deskolemized is None:
            return None
        candidate = deskolemized

    # Step 5: eliminate the empty relation introduced by normalization.
    return eliminate_empty(candidate, registry)
