"""Eliminate the active-domain relation ``D`` (paper Section 3.4.3).

Left compose may introduce ``D`` (either through the vacuous bound ``S ⊆ D^r``
or through the selection identity).  This step applies the D-identities::

    E ∪ D^r = D^r      E ∩ D^r = E      E − D^r = ∅      π_I(D^r) = D^{|I|}

plus any user-supplied rules, and finally deletes constraints whose right-hand
side is ``D^r`` alone, since they are satisfied by every instance.  ``D`` is
not always fully eliminable; that is acceptable because a constraint
containing ``D`` can still be checked.
"""

from __future__ import annotations

from repro.algebra.simplify import simplify_constraint_set
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["eliminate_domain"]


def eliminate_domain(constraints: ConstraintSet, registry=None) -> ConstraintSet:
    """Apply the D-identities and drop trivially-satisfied constraints."""
    return simplify_constraint_set(constraints, registry, drop_trivial=True)
