"""Deskolemization — removing Skolem functions after right compose (Section 3.5.3).

Right-normalization introduces Skolem functions to invert projections; after
basic right composition those functions may appear in several constraints.
The semantics of a Skolemized constraint set is *existential second order*:
the constraints hold iff there exist interpretations of the Skolem functions
satisfying them.  Deskolemization rewrites such a set into an equivalent
first-order (Skolem-free) set of algebraic constraints, or fails.

The paper's procedure has 12 steps; this implementation realizes them on the
algebraic canonical form of :mod:`repro.compose.skolem`:

1.  *Unnest* — canonicalize each Skolemized left-hand side into
    ``π(skolem-chain(σ(base)))`` (:func:`canonicalize_skolemized`).
2.  *Check for cycles* — a Skolem function may not depend on another Skolem
    column (checked during canonicalization).
3.  *Check for repeated function symbols* — the same function applied twice
    within one constraint makes the existential reading invalid (this is what
    fails on the paper's Example 17); refuse.
4.  *Align variables* — group constraints by their base expression and map
    every constraint's Skolem columns into a per-group column space; a
    function used with two different bases or argument lists cannot be
    aligned; refuse.
5./6./7.  *Restricting atoms / restricted constraints* — selections on Skolem
    columns are rejected during canonicalization (a sound approximation).
8.  *Check for dependencies* — every Skolem function must depend on *all*
    columns of its group's base; otherwise the per-tuple existential reading
    used in step 11 would be weaker than the functional semantics; refuse.
9.  *Combine dependencies* — constraints of the same group are combined by
    intersecting their (lifted) right-hand sides over the shared
    base-plus-Skolem column space.
10. *Remove redundant constraints* — constraints whose outputs use no Skolem
    column are emitted directly without the existential machinery.
11. *Replace functions with ∃-variables* — each group becomes a single
    constraint ``base ⊆ π_base-columns(⋂ lifted right-hand sides)``.
12. *Eliminate unnecessary ∃-variables* — Skolem columns never referenced by
    any output are dropped before building the lifted space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.builders import project
from repro.algebra.conditions import conjunction, equals
from repro.algebra.expressions import (
    CrossProduct,
    Domain,
    Expression,
    Intersection,
    Selection,
    Union,
)
from repro.algebra.traversal import contains_skolem
from repro.compose.skolem import ColumnRef, SkolemizedSide, canonicalize_skolemized
from repro.constraints.constraint import Constraint, ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["deskolemize"]


@dataclass
class _GroupMember:
    """One Skolemized constraint, canonicalized, inside its group."""

    side: SkolemizedSide
    rhs: Expression


def _check_repeated_functions(side: SkolemizedSide) -> bool:
    """Step 3: no function symbol may occur twice within one constraint."""
    names = side.function_names()
    return len(names) == len(set(names))


def _full_dependency(side: SkolemizedSide) -> bool:
    """Step 8: every Skolem function must depend on all base columns."""
    expected = tuple(ColumnRef("base", i) for i in range(side.base_arity))
    for column in side.skolems:
        if tuple(sorted(column.arguments, key=lambda r: (r.kind, r.index))) != expected:
            return False
    return True


def _lift(member: _GroupMember, function_positions: Dict[str, int], width: int) -> Expression:
    """Lift a member's right-hand side into the group's (base + Skolem) column space.

    The lifted expression denotes the set of ``width``-tuples ``z`` such that
    the member's output columns of ``z`` form a tuple of the member's RHS.
    When the member's output is exactly the identity over the group space the
    lift is the RHS itself; otherwise it is expressed as
    ``π_{0..width-1}(σ_match(D^width × RHS))``.
    """
    positions: List[int] = []
    for reference in member.side.output:
        if reference.kind == "base":
            positions.append(reference.index)
        else:
            function_name = member.side.skolems[reference.index].function.name
            positions.append(function_positions[function_name])
    if positions == list(range(width)):
        return member.rhs
    rhs_arity = member.rhs.arity
    matching = conjunction(
        equals(positions[j], width + j) for j in range(rhs_arity)
    )
    return project(Selection(CrossProduct(Domain(width), member.rhs), matching), range(width))


def _translate_group(base: Expression, members: List[_GroupMember]) -> Optional[List[Constraint]]:
    """Steps 9-12 for one group of constraints sharing a base expression."""
    # Step 4 (alignment): a function symbol must be used consistently.
    signatures: Dict[str, Tuple[ColumnRef, ...]] = {}
    for member in members:
        for column in member.side.skolems:
            seen = signatures.get(column.function.name)
            if seen is None:
                signatures[column.function.name] = column.arguments
            elif seen != column.arguments:
                return None

    # Step 10/12: constraints whose output never reads a Skolem column are
    # already first-order — emit them directly.
    plain: List[Constraint] = []
    existential: List[_GroupMember] = []
    for member in members:
        if member.side.uses_skolem_output():
            existential.append(member)
        else:
            indices = tuple(reference.index for reference in member.side.output)
            plain.append(ContainmentConstraint(project(base, indices), member.rhs))
    if not existential:
        return plain

    # Step 12: only Skolem columns actually read by some output survive.
    used_functions: List[str] = []
    for member in existential:
        for reference in member.side.output:
            if reference.kind == "skolem":
                name = member.side.skolems[reference.index].function.name
                if name not in used_functions:
                    used_functions.append(name)
    used_functions.sort()

    base_arity = base.arity
    width = base_arity + len(used_functions)
    function_positions = {
        name: base_arity + offset for offset, name in enumerate(used_functions)
    }

    # Step 9/11: intersect the lifted right-hand sides and project back onto
    # the base columns, yielding the per-tuple existential reading.
    lifted = [_lift(member, function_positions, width) for member in existential]
    combined: Expression = lifted[0]
    for expression in lifted[1:]:
        combined = Intersection(combined, expression)
    result = ContainmentConstraint(base, project(combined, range(base_arity)))
    return plain + [result]


def deskolemize(constraints: ConstraintSet) -> Optional[ConstraintSet]:
    """Remove all Skolem functions from ``constraints``, or return ``None``.

    Constraints without Skolem functions pass through unchanged.  Constraints
    with Skolem functions on the *right-hand side* are rejected outright (they
    cannot arise from the library's own normalization and have no sound
    translation here).
    """
    plain: List[Constraint] = []
    groups: Dict[Expression, List[_GroupMember]] = {}
    function_owner: Dict[str, Expression] = {}

    # Step 1 (unnest), part one: a union on a Skolemized left-hand side splits
    # into one constraint per operand (``A ∪ B ⊆ C`` ↔ ``A ⊆ C, B ⊆ C``), which
    # is how a collapsed lower bound ``f(E) ∪ E' ⊆ S`` becomes tractable.
    pending: List[Constraint] = []
    for constraint in constraints:
        if (
            constraint.contains_skolem()
            and isinstance(constraint, ContainmentConstraint)
            and not contains_skolem(constraint.right)
        ):
            stack = [constraint.left]
            while stack:
                side = stack.pop()
                if isinstance(side, Union):
                    stack.extend(side.children)
                else:
                    pending.append(ContainmentConstraint(side, constraint.right))
        else:
            pending.append(constraint)

    for constraint in pending:
        if not constraint.contains_skolem():
            plain.append(constraint)
            continue
        if not isinstance(constraint, ContainmentConstraint):
            return None
        if contains_skolem(constraint.right):
            return None
        side = canonicalize_skolemized(constraint.left)  # steps 1-2, 5-7
        if side is None:
            return None
        if not _check_repeated_functions(side):  # step 3
            return None
        if not _full_dependency(side):  # step 8
            return None
        for name in side.function_names():
            owner = function_owner.get(name)
            if owner is None:
                function_owner[name] = side.base
            elif owner != side.base:  # step 4: same function, different base
                return None
        groups.setdefault(side.base, []).append(
            _GroupMember(side=side, rhs=constraint.right)
        )

    result: List[Constraint] = list(plain)
    for base, members in groups.items():
        translated = _translate_group(base, members)
        if translated is None:
            return None
        result.extend(translated)
    return ConstraintSet(result)
