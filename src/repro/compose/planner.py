"""Cost-guided elimination planning for COMPOSE.

The paper's COMPOSE is best-effort and order-sensitive: which σ2 symbol is
attempted first decides both how often the blow-up guard fires and how large
the intermediate constraint sets grow, yet the fixed-order composer walks one
configured order over the entire Σ12 ∪ Σ23 set.  The planner exploits the
structure the constraint-set mention index already caches:

1. **Partitioning.**  Two σ2 symbols *interact* only if some constraint
   mentions both — elimination reads and rewrites exclusively constraints
   mentioning the symbol, and the substituted bounds are built from those same
   constraints, so the connected components of the symbol co-occurrence graph
   are independent sub-problems.  Each component is composed on its own small
   constraint set: every per-symbol scan, split and rebuild touches component-
   sized state instead of the whole problem, and the blow-up guard's baseline
   shrinks from whole-problem size to component size (a blow-up localized to
   one component can no longer hide under the weight of the others).

2. **Cost-ordered elimination.**  Inside a component, symbols are attempted
   cheapest-first under a cost model read entirely from cached summaries: a
   defining equality (view unfolding will hit) ranks first, a constraint
   mentioning the symbol on both sides (left/right compose are dead on
   arrival) ranks last, and ties break on mention count, then the total
   operator count of the mentioning constraints, then σ2 order.

3. **Bounded backtracking.**  A failed symbol is re-queued after the cheaper
   ones instead of being given up in one pass: as long as some elimination
   succeeded (the constraint set changed), the failures are re-ranked against
   the rewritten set and retried, up to :data:`MAX_ELIMINATION_PASSES` passes.
   Each retry is another chance exactly like the best-effort retries
   ``compose_chain`` performs across hops — but within one composition.

Every transformation is one of ELIMINATE's own sound rewrites, so the planned
output is semantically equivalent to the fixed-order output (the equivalence
suites assert this on satisfying instances); it is not byte-identical, because
order, guard baselines and retries legitimately differ.

Components are embarrassingly parallel: :func:`plan_compose` accepts a
``concurrent.futures`` executor and fans :func:`compose_component` jobs out to
it — ``BatchComposer.run_partitioned`` supplies the thread/process pools.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.simplify import simplify_constraint_set
from repro.compose.config import ComposerConfig
from repro.compose.eliminate import eliminate
from repro.compose.phases import charge, collect_phases, timed
from repro.compose.result import CompositionResult, EliminationMethod, EliminationOutcome
from repro.constraints.constraint import Constraint, EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.mapping.composition_problem import CompositionProblem

__all__ = [
    "MAX_ELIMINATION_PASSES",
    "PlannedComponent",
    "CompositionPlan",
    "ComponentResult",
    "build_plan",
    "symbol_cost",
    "order_symbols",
    "compose_component",
    "plan_compose",
]

#: Upper bound on elimination passes per component.  The loop already stops at
#: the first pass that eliminates nothing (retrying against an unchanged set
#: cannot succeed), so this is a safety net, not the usual exit.
MAX_ELIMINATION_PASSES = 8


@dataclass(frozen=True)
class PlannedComponent:
    """One connected component of the symbol co-occurrence graph.

    ``symbols`` are the component's σ2 symbols in signature order (the cost
    order is computed against the live constraint set at composition time);
    ``constraint_indices`` locate the component's constraints in the problem's
    combined set; ``operator_count`` is the component's blow-up baseline.
    """

    symbols: Tuple[str, ...]
    constraint_indices: Tuple[int, ...]
    operator_count: int

    def __repr__(self) -> str:
        return (
            f"<PlannedComponent {len(self.symbols)} symbols, "
            f"{len(self.constraint_indices)} constraints>"
        )


@dataclass(frozen=True)
class CompositionPlan:
    """The decomposition of one composition problem.

    ``free_symbols`` are σ2 symbols mentioned by no constraint (dropped for
    free, no component needed); ``untouched_indices`` locate the constraints
    that mention no σ2 symbol — no elimination can rewrite them, so they are
    carried into the output verbatim.
    """

    components: Tuple[PlannedComponent, ...]
    free_symbols: Tuple[str, ...]
    untouched_indices: Tuple[int, ...]

    def __repr__(self) -> str:
        return (
            f"<CompositionPlan {len(self.components)} components, "
            f"{len(self.free_symbols)} free symbols>"
        )


@dataclass(frozen=True)
class ComponentResult:
    """The outcome of composing one component.

    ``outcomes`` holds each symbol's *final* outcome (retries overwrite), in
    first-attempt order; ``order`` is the first pass's cost order (recorded on
    ``CompositionResult.plan``); ``reorderings`` counts retry attempts beyond
    each symbol's first; ``eliminate_seconds`` is the wall-clock total over
    *all* attempts, retries included (the final outcomes only carry their own
    attempt's duration).
    """

    constraints: ConstraintSet
    outcomes: Tuple[EliminationOutcome, ...]
    order: Tuple[str, ...]
    reorderings: int
    eliminate_seconds: float = 0.0


def build_plan(constraints: ConstraintSet, symbols: Sequence[str]) -> CompositionPlan:
    """Partition ``symbols`` (and the constraints) into independent components.

    Union-find over the σ2 symbols, driven by one pass over the per-constraint
    cached relation-name sets: every constraint merges the symbols it
    mentions.  Deterministic: components are ordered by their earliest symbol
    in ``symbols`` order, symbols within a component keep ``symbols`` order,
    and constraint indices keep set order.
    """
    symbols = tuple(symbols)
    symbol_set = frozenset(symbols)
    parent: Dict[str, str] = {symbol: symbol for symbol in symbols}

    def find(symbol: str) -> str:
        root = symbol
        while parent[root] != root:
            root = parent[root]
        while parent[symbol] != root:  # path compression
            parent[symbol], symbol = root, parent[symbol]
        return root

    # One representative mentioned symbol per constraint (None = untouched).
    representatives: List[Optional[str]] = []
    for constraint in constraints:
        mentioned = [name for name in constraint.relation_names() if name in symbol_set]
        representatives.append(mentioned[0] if mentioned else None)
        for other in mentioned[1:]:
            root_a, root_b = find(mentioned[0]), find(other)
            if root_a != root_b:
                parent[root_b] = root_a

    position = {symbol: index for index, symbol in enumerate(symbols)}
    mentioned_anywhere = constraints.relation_names()
    group_symbols: Dict[str, List[str]] = {}
    free: List[str] = []
    for symbol in symbols:
        if symbol in mentioned_anywhere:
            group_symbols.setdefault(find(symbol), []).append(symbol)
        else:
            free.append(symbol)

    group_indices: Dict[str, List[int]] = {root: [] for root in group_symbols}
    untouched: List[int] = []
    for index, representative in enumerate(representatives):
        if representative is None:
            untouched.append(index)
        else:
            group_indices[find(representative)].append(index)

    components = []
    for root in sorted(
        group_symbols, key=lambda r: min(position[s] for s in group_symbols[r])
    ):
        indices = tuple(group_indices[root])
        components.append(
            PlannedComponent(
                symbols=tuple(sorted(group_symbols[root], key=position.__getitem__)),
                constraint_indices=indices,
                operator_count=sum(
                    constraints[index].operator_count() for index in indices
                ),
            )
        )
    return CompositionPlan(
        components=tuple(components),
        free_symbols=tuple(free),
        untouched_indices=tuple(untouched),
    )


def symbol_cost(constraints: ConstraintSet, symbol: str) -> Tuple[int, int, int]:
    """Estimated elimination cost of ``symbol`` against ``constraints``.

    Read entirely from cached summaries and the mention index — no tree walk.
    Returns ``(tier, mention_count, operator_count)``: tier 0 when a defining
    equality exists (view unfolding will hit, the cheapest outcome), tier 2
    when some constraint mentions the symbol on both sides (left and right
    compose fail their step 0, so only unfolding could save it — attempt
    last, after the cheaper eliminations have reshaped the set), tier 1
    otherwise; the remaining fields approximate the rewrite volume.
    """
    indices = constraints.indices_mentioning(symbol)
    operators = 0
    has_definition = False
    both_sides = False
    for index in indices:
        constraint = constraints[index]
        operators += constraint.operator_count()
        if (
            not has_definition
            and isinstance(constraint, EqualityConstraint)
            and constraint.definition_of(symbol) is not None
        ):
            has_definition = True
        if (
            not both_sides
            and constraint.mentions_on_left(symbol)
            and constraint.mentions_on_right(symbol)
        ):
            both_sides = True
    tier = 0 if has_definition else (2 if both_sides else 1)
    return (tier, len(indices), operators)


def order_symbols(
    constraints: ConstraintSet, symbols: Sequence[str]
) -> Tuple[str, ...]:
    """Sort ``symbols`` cheapest-first by :func:`symbol_cost` (ties: given order)."""
    return tuple(
        symbol
        for _, _, symbol in sorted(
            (symbol_cost(constraints, symbol), index, symbol)
            for index, symbol in enumerate(symbols)
        )
    )


def compose_component(
    constraints: ConstraintSet,
    symbols: Sequence[str],
    arities: Sequence[int],
    config: ComposerConfig,
) -> ComponentResult:
    """Eliminate ``symbols`` from a component's constraint set, cost-first.

    The blow-up baseline is the *component's* input operator count.  Failed
    symbols are re-queued: after every pass that made progress, the remaining
    failures are re-ranked against the rewritten set and retried (the
    surrounding constraints changed, so a previously dead elimination may now
    go through), up to :data:`MAX_ELIMINATION_PASSES` passes.
    """
    arity_of = dict(zip(symbols, arities))
    baseline = constraints.operator_count()
    final: Dict[str, EliminationOutcome] = {}
    first_order: List[str] = []
    remaining: List[str] = list(symbols)
    reorderings = 0
    eliminate_seconds = 0.0
    passes = 0
    while remaining and passes < MAX_ELIMINATION_PASSES:
        passes += 1
        failed: List[str] = []
        progress = False
        for symbol in order_symbols(constraints, remaining):
            symbol_started = time.perf_counter()
            constraints, outcome = eliminate(
                constraints,
                symbol,
                arity_of[symbol],
                config,
                baseline_operator_count=baseline,
            )
            symbol_seconds = time.perf_counter() - symbol_started
            charge("eliminate", symbol_seconds)
            eliminate_seconds += symbol_seconds
            outcome = replace(outcome, duration_seconds=symbol_seconds)
            if symbol in final:
                reorderings += 1
            else:
                first_order.append(symbol)
            final[symbol] = outcome
            if outcome.success:
                progress = True
            else:
                failed.append(symbol)
        if not progress:
            break
        remaining = failed
    return ComponentResult(
        constraints=constraints,
        outcomes=tuple(final[symbol] for symbol in first_order),
        order=tuple(first_order),
        reorderings=reorderings,
        eliminate_seconds=eliminate_seconds,
    )


def _compose_component_job(
    args: Tuple[ConstraintSet, Tuple[str, ...], Tuple[int, ...], ComposerConfig]
) -> ComponentResult:
    """Module-level wrapper so process pools can pickle component jobs."""
    constraints, symbols, arities, config = args
    return compose_component(constraints, symbols, arities, config)


def _merge_outputs(
    original: ConstraintSet,
    plan: CompositionPlan,
    component_results: Sequence[ComponentResult],
) -> ConstraintSet:
    """Splice the per-component outputs back into one constraint set.

    Untouched constraints keep their original positions; each component's
    whole output lands at the slot of the component's first constraint — a
    deterministic order independent of which component finished first.
    """
    output_at: Dict[int, ConstraintSet] = {
        component.constraint_indices[0]: result.constraints
        for component, result in zip(plan.components, component_results)
    }
    untouched = set(plan.untouched_indices)
    merged: List[Constraint] = []
    for index in range(len(original)):
        if index in untouched:
            merged.append(original[index])
        elif index in output_at:
            merged.extend(output_at[index])
    return ConstraintSet(merged)


def plan_compose(
    problem: CompositionProblem,
    config: Optional[ComposerConfig] = None,
    executor=None,
) -> CompositionResult:
    """Run the cost-guided planned composition of ``problem``.

    This is ``compose`` for ``ComposerConfig(elimination_order="cost")``:
    partition, per-component cost-ordered elimination with bounded retries,
    merge, final simplification.  When ``executor`` (a ``concurrent.futures``
    executor) is given and the plan has more than one component, the component
    compositions run as sub-tasks on it; results are merged in plan order, so
    the output is identical to the serial planned composition.
    """
    config = config or ComposerConfig()
    started = time.perf_counter()

    constraints: ConstraintSet = problem.all_constraints
    input_operator_count = constraints.operator_count()
    sigma2 = problem.sigma2
    sigma2_names = sigma2.names()

    with collect_phases() as phase_buckets:
        with timed("planner"):
            plan = build_plan(constraints, sigma2_names)
            jobs = []
            for component in plan.components:
                jobs.append(
                    (
                        constraints.subset(component.constraint_indices),
                        component.symbols,
                        tuple(sigma2.arity_of(symbol) for symbol in component.symbols),
                        config,
                    )
                )

        if executor is not None and len(jobs) > 1:
            futures = [executor.submit(_compose_component_job, job) for job in jobs]
            component_results = [future.result() for future in futures]
            # Pool workers charge their phase buckets to their own threads
            # (or processes), where no collection is active; credit their
            # elimination time — all attempts, retries included — here so
            # phase_seconds stays meaningful.
            charge(
                "eliminate",
                sum(result.eliminate_seconds for result in component_results),
            )
        else:
            component_results = [_compose_component_job(job) for job in jobs]

        merged = _merge_outputs(constraints, plan, component_results)
        if config.simplify_output:
            with timed("simplify"):
                merged = simplify_constraint_set(merged, config.registry)

    outcome_by_symbol: Dict[str, EliminationOutcome] = {
        symbol: EliminationOutcome(
            symbol=symbol, success=True, method=EliminationMethod.NOT_MENTIONED
        )
        for symbol in plan.free_symbols
    }
    for result in component_results:
        for outcome in result.outcomes:
            outcome_by_symbol[outcome.symbol] = outcome
    outcomes = tuple(outcome_by_symbol[symbol] for symbol in sigma2_names)
    eliminated = [outcome.symbol for outcome in outcomes if outcome.success]
    residual = sigma2.removing(*eliminated) if eliminated else sigma2

    return CompositionResult(
        sigma1=problem.sigma1,
        sigma3=problem.sigma3,
        residual_sigma2=residual,
        constraints=merged,
        outcomes=outcomes,
        elapsed_seconds=time.perf_counter() - started,
        input_operator_count=input_operator_count,
        output_operator_count=merged.operator_count(),
        phase_seconds=tuple(sorted(phase_buckets.items())),
        plan=tuple(result.order for result in component_results),
        components=len(plan.components),
        reorderings=sum(result.reorderings for result in component_results),
    )
