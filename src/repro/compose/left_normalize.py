"""Left-normalization (paper Section 3.4.1).

The goal is to bring the constraint set into *left normal form* for the symbol
``S`` being eliminated: ``S`` appears on the left-hand side of exactly one
constraint, and in that constraint it appears alone (``S ⊆ E``).

The rewriting uses the identities listed in the paper::

    ∪ :  E1 ∪ E2 ⊆ E3   ↔  E1 ⊆ E3,  E2 ⊆ E3
    − :  E1 − E2 ⊆ E3   ↔  E1 ⊆ E2 ∪ E3          (only when S occurs in E1)
    π :  π_I(E1) ⊆ E2   ↔  E1 ⊆ place(E2, I)      (E2's columns at positions I,
                                                   active-domain columns elsewhere)
    σ :  σ_c(E1) ⊆ E2   ↔  E1 ⊆ E2 ∪ (D^r − σ_c(D^r))

There are no identities for ∩ or × on the left (paper Example 6 shows the
"obvious" rewrite for × is unsound), nor for − when the symbol occurs in the
second operand; in those cases left-normalization fails.  User-defined
operators may contribute rules through the operator registry.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.algebra.builders import column_placement
from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Expression,
    Intersection,
    Projection,
    Relation,
    Selection,
    Union,
)
from repro.algebra.traversal import contains_relation  # noqa: F401  (used by rules/tests)
from repro.constraints.constraint import Constraint, ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.compose.normalize_context import NormalizationContext

__all__ = ["left_normalize", "rewrite_left_once"]

SidePair = Tuple[Expression, Expression]


def _is_bare_symbol(expression: Expression, symbol: str) -> bool:
    return isinstance(expression, Relation) and expression.name == symbol


def rewrite_left_once(
    left: Expression, right: Expression, symbol: str, context: NormalizationContext
) -> Optional[List[SidePair]]:
    """Apply one left-normalization rewriting step to ``left ⊆ right``.

    ``left`` is a complex expression containing ``symbol``.  Returns the list
    of replacement ``(left, right)`` pairs, or ``None`` if no rule applies.
    """
    if isinstance(left, Union):
        return [(left.left, right), (left.right, right)]

    if isinstance(left, Difference):
        # E1 − E2 ⊆ E3  ↔  E1 ⊆ E2 ∪ E3 (paper Example 7).  The identity holds
        # regardless of which operand mentions the symbol; when it is the
        # subtrahend, the symbol moves to the right-hand side, where the
        # monotonicity re-check of basic left compose guards the substitution.
        return [(left.left, Union(left.right, right))]

    if isinstance(left, Projection):
        if len(set(left.indices)) != len(left.indices):
            # Duplicated projection indices cannot be inverted by placement.
            return None
        placed = column_placement(right, left.indices, left.child.arity)
        return [(left.child, placed)]

    if isinstance(left, Selection):
        r = left.child.arity
        complement = Difference(Domain(r), Selection(Domain(r), left.condition))
        return [(left.child, Union(right, complement))]

    if isinstance(left, (Intersection, CrossProduct)):
        # The paper knows no sound left-normalization identities for these.
        return None

    registry = context.registry
    if registry is not None:
        rewritten = registry.left_normalize(left, right, symbol, context)
        if rewritten is not None:
            return rewritten
    return None


def left_normalize(
    constraints: ConstraintSet,
    symbol: str,
    context: NormalizationContext,
    max_steps: int = 500,
    failure_sink=None,
) -> Optional[Tuple[ConstraintSet, ContainmentConstraint]]:
    """Bring ``constraints`` into left normal form for ``symbol``.

    Preconditions (ensured by the left-compose driver): equality constraints
    mentioning the symbol have been split into containments, and no constraint
    mentions the symbol on both sides.

    Returns ``(normalized_set, ξ)`` where ``ξ`` is the single ``S ⊆ E``
    constraint, or ``None`` if normalization fails.  ``failure_sink``, when
    given, is called with the *input* constraint whose rewriting derivation
    hit a dead end (not with the step-budget exhaustion, which is a global
    property) — the failure memo uses it to fast-fail retries.
    """
    # Worklist version of the paper's "rewrite the first offending constraint"
    # loop: constraints are immutable and a constraint once inspected never
    # becomes rewritable again, so expanding each constraint depth-first and
    # left-to-right visits exactly the same rewrite sequence as re-scanning
    # the whole list from the start after every step — without the O(n²)
    # rescans and list-slice rebuilding.  Each worklist entry carries the
    # input constraint its derivation started from.
    working: List[Constraint] = []
    pending = deque((constraint, constraint) for constraint in constraints)
    steps = 0
    while pending:
        constraint, origin = pending.popleft()
        if (
            isinstance(constraint, ContainmentConstraint)
            and contains_relation(constraint.left, symbol)
            and not _is_bare_symbol(constraint.left, symbol)
        ):
            rewritten = rewrite_left_once(
                constraint.left, constraint.right, symbol, context
            )
            if rewritten is None:
                if failure_sink is not None:
                    failure_sink(origin)
                return None
            steps += 1
            if steps >= max_steps:
                # Exhausted the step budget without reaching a fixpoint.
                return None
            for left, right in reversed(rewritten):
                pending.appendleft((ContainmentConstraint(left, right), origin))
        else:
            working.append(constraint)

    # Collapse all ``S ⊆ E_i`` constraints into a single ``S ⊆ E_1 ∩ ... ∩ E_n``.
    bounds: List[Expression] = []
    remaining: List[Constraint] = []
    for constraint in working:
        if isinstance(constraint, ContainmentConstraint) and _is_bare_symbol(
            constraint.left, symbol
        ):
            bounds.append(constraint.right)
        else:
            remaining.append(constraint)

    if bounds:
        upper: Expression = bounds[0]
        for bound in bounds[1:]:
            upper = Intersection(upper, bound)
    else:
        # The symbol never appears on a left-hand side: any contents satisfy
        # the vacuous bound ``S ⊆ D^r``.
        upper = Domain(context.symbol_arity)

    xi = ContainmentConstraint(Relation(symbol, context.symbol_arity), upper)
    return ConstraintSet(remaining + [xi]), xi
