"""Per-phase wall-clock accounting for COMPOSE.

``CompositionResult.elapsed_seconds`` answers "how long did the composition
take"; the figures and the benchmark trajectory also want to know *where* the
time went — normalization vs. view unfolding vs. left/right compose vs.
deskolemization vs. the final simplification pass.  Threading timer objects
through every sub-step signature would couple all of them to bookkeeping, so
the buckets live here instead: :func:`collect_phases` opens a thread-local
bucket dictionary for the duration of one composition, and :func:`timed`
charges a block's wall-clock to a named bucket when a collection is active
(and is a no-op — one attribute probe — otherwise, so standalone ``eliminate``
calls pay nothing).

Buckets *nest* rather than partition: ``eliminate`` covers the whole
per-symbol attempt, ``left_compose``/``right_compose`` are inside it, and
``normalize``/``deskolemize`` are inside those.  ``planner`` (cost-guided
compositions only) covers plan construction — the co-occurrence partition and
the component sub-problem assembly — and is a sibling of ``eliminate``, so
planning overhead is directly comparable to the elimination work it saves.
Consumers compare siblings (e.g. ``normalize`` against ``left_compose``), not
the sum against the total.

The collection is thread-local, so batch workers running compositions
concurrently never mix buckets.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PHASES", "SPAN_PREFIX", "charge", "collect_phases", "span_name", "timed"]

#: The bucket names the composition pipeline charges (see module docstring for
#: the nesting).  ``timed`` accepts any name; this tuple documents the ones
#: the library itself produces.
PHASES = (
    "planner",
    "eliminate",
    "view_unfolding",
    "left_compose",
    "right_compose",
    "normalize",
    "deskolemize",
    "simplify",
)

#: Phase buckets bridged into request traces carry this span-name prefix
#: (``compose.phase.normalize`` etc.) — see :func:`span_name`.
SPAN_PREFIX = "compose.phase."


def span_name(phase: str) -> str:
    """The trace span name of one phase bucket.

    The service bridges each served request's buckets into its span tree as
    children of the execution span; keeping the name derivation here means
    the tracing layer and any future consumer agree on the mapping.
    """
    return SPAN_PREFIX + phase


_local = threading.local()


@contextmanager
def collect_phases() -> Iterator[Dict[str, float]]:
    """Open a fresh bucket dictionary for the duration of the block.

    Yields the dictionary being filled; it is complete when the block exits.
    Collections nest per thread — a composition running inside another (not a
    thing the library does today) would charge its phases to its own buckets,
    and the outer collection resumes afterwards.
    """
    previous = getattr(_local, "buckets", None)
    buckets: Dict[str, float] = {}
    _local.buckets = buckets
    try:
        yield buckets
    finally:
        _local.buckets = previous


class _PhaseTimer:
    """Hand-rolled context manager: ``timed`` sits inside the per-symbol hot
    loop, where a generator-based ``@contextmanager`` frame is measurable."""

    __slots__ = ("name", "buckets", "started")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> None:
        self.buckets = getattr(_local, "buckets", None)
        if self.buckets is not None:
            self.started = time.perf_counter()

    def __exit__(self, *exc) -> bool:
        buckets = self.buckets
        if buckets is not None:
            buckets[self.name] = (
                buckets.get(self.name, 0.0) + time.perf_counter() - self.started
            )
        return False


def timed(name: str) -> _PhaseTimer:
    """Charge the block's wall-clock time to bucket ``name``, if collecting."""
    return _PhaseTimer(name)


def charge(name: str, seconds: float) -> None:
    """Add an already-measured duration to bucket ``name``, if collecting.

    For callers that measure a span anyway (the composer times every symbol
    for its :class:`EliminationOutcome`), charging the measured number avoids
    a second pair of clock reads.
    """
    buckets = getattr(_local, "buckets", None)
    if buckets is not None:
        buckets[name] = buckets.get(name, 0.0) + seconds
