"""Right-normalization (paper Section 3.5.1).

The dual of left-normalization: bring the constraints into *right normal form*
for the symbol ``S`` — ``S`` appears on the right-hand side of exactly one
constraint, alone (``E ⊆ S``).  The rewriting identities are::

    ∪ :  E1 ⊆ E2 ∪ E3  ↔  E1 − E3 ⊆ E2            (keeping the operand with S)
    ∩ :  E1 ⊆ E2 ∩ E3  ↔  E1 ⊆ E2,  E1 ⊆ E3
    × :  E1 ⊆ E2 × E3  ↔  π_left(E1) ⊆ E2,  π_right(E1) ⊆ E3
    − :  E1 ⊆ E2 − E3  ↔  E1 ⊆ E2,  E1 ∩ E3 ⊆ ∅
    π :  E1 ⊆ π_I(E2)  ↔  skolemize(E1, I, arity(E2)) ⊆ E2
    σ :  E1 ⊆ σ_c(E2)  ↔  E1 ⊆ E2,  E1 ⊆ σ_c(D^r)

Unlike left-normalization there is a rule for every basic operator, so
right-normalization always succeeds on purely basic expressions; the price is
that the projection rule introduces Skolem functions that the deskolemization
step must later remove.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.algebra.expressions import (
    CrossProduct,
    Difference,
    Domain,
    Empty,
    Expression,
    Intersection,
    Projection,
    Relation,
    Selection,
    SkolemApplication,
    Union,
)
from repro.algebra.builders import project
from repro.algebra.traversal import contains_relation
from repro.compose.normalize_context import NormalizationContext
from repro.constraints.constraint import Constraint, ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["right_normalize", "rewrite_right_once", "skolemize_projection_bound"]

SidePair = Tuple[Expression, Expression]


def _is_bare_symbol(expression: Expression, symbol: str) -> bool:
    return isinstance(expression, Relation) and expression.name == symbol


def skolemize_projection_bound(
    lower: Expression,
    indices: Tuple[int, ...],
    target_arity: int,
    context: NormalizationContext,
) -> Optional[Expression]:
    """Rewrite the lower bound of ``lower ⊆ π_indices(E)`` into the space of ``E``.

    Produces an expression ``X`` of arity ``target_arity`` such that
    ``lower ⊆ π_indices(E)`` is equivalent (under existential second-order
    semantics for the introduced Skolem functions) to ``X ⊆ E``: the columns of
    ``lower`` are placed at ``indices`` and every other position receives a
    fresh Skolem function of all the columns of ``lower``.

    Returns ``None`` when the projection duplicates indices (the inverse image
    is then not expressible this way).
    """
    if len(set(indices)) != len(indices):
        return None
    missing = [position for position in range(target_arity) if position not in indices]
    extended: Expression = lower
    for _ in missing:
        function = context.skolems.fresh_function(range(lower.arity))
        extended = SkolemApplication(extended, function)
    # Column j of ``lower`` sits at position j of ``extended``; the t-th Skolem
    # column sits at position lower.arity + t.  Build the output permutation so
    # that position indices[j] of the result reads column j and position
    # missing[t] reads the t-th Skolem column.
    order = [0] * target_arity
    for source, target in enumerate(indices):
        order[target] = source
    for offset, target in enumerate(missing):
        order[target] = lower.arity + offset
    return project(extended, order)


def rewrite_right_once(
    left: Expression, right: Expression, symbol: str, context: NormalizationContext
) -> Optional[List[SidePair]]:
    """Apply one right-normalization rewriting step to ``left ⊆ right``.

    ``right`` is a complex expression containing ``symbol``.  Returns the list
    of replacement ``(left, right)`` pairs, or ``None`` if no rule applies.
    """
    if isinstance(right, Union):
        if contains_relation(right.left, symbol):
            return [(Difference(left, right.right), right.left)]
        return [(Difference(left, right.left), right.right)]

    if isinstance(right, Intersection):
        return [(left, right.left), (left, right.right)]

    if isinstance(right, CrossProduct):
        left_arity = right.left.arity
        return [
            (project(left, range(left_arity)), right.left),
            (project(left, range(left_arity, right.arity)), right.right),
        ]

    if isinstance(right, Difference):
        return [
            (left, right.left),
            (Intersection(left, right.right), Empty(left.arity)),
        ]

    if isinstance(right, Projection):
        skolemized = skolemize_projection_bound(
            left, right.indices, right.child.arity, context
        )
        if skolemized is None:
            return None
        return [(skolemized, right.child)]

    if isinstance(right, Selection):
        r = right.child.arity
        return [(left, right.child), (left, Selection(Domain(r), right.condition))]

    registry = context.registry
    if registry is not None:
        rewritten = registry.right_normalize(left, right, symbol, context)
        if rewritten is not None:
            return rewritten
    return None


def right_normalize(
    constraints: ConstraintSet,
    symbol: str,
    context: NormalizationContext,
    max_steps: int = 500,
    failure_sink=None,
) -> Optional[Tuple[ConstraintSet, ContainmentConstraint]]:
    """Bring ``constraints`` into right normal form for ``symbol``.

    Preconditions (ensured by the right-compose driver): equality constraints
    mentioning the symbol have been split, and no constraint mentions the
    symbol on both sides.

    Returns ``(normalized_set, ξ)`` where ``ξ`` is the single ``E ⊆ S``
    constraint, or ``None`` if normalization fails.  ``failure_sink``, when
    given, receives the *input* constraint whose rewriting derivation hit a
    dead end (step-budget exhaustion is global and is not reported).
    """
    # Worklist version of the paper's "rewrite the first offending constraint"
    # loop — see left_normalize for why depth-first, left-to-right expansion
    # visits the same rewrite sequence without the O(n²) rescans.  Each entry
    # carries the input constraint its derivation started from.
    working: List[Constraint] = []
    pending = deque((constraint, constraint) for constraint in constraints)
    steps = 0
    while pending:
        constraint, origin = pending.popleft()
        if (
            isinstance(constraint, ContainmentConstraint)
            and contains_relation(constraint.right, symbol)
            and not _is_bare_symbol(constraint.right, symbol)
        ):
            rewritten = rewrite_right_once(
                constraint.left, constraint.right, symbol, context
            )
            if rewritten is None:
                if failure_sink is not None:
                    failure_sink(origin)
                return None
            steps += 1
            if steps >= max_steps:
                # Exhausted the step budget without reaching a fixpoint.
                return None
            for left, right in reversed(rewritten):
                pending.appendleft((ContainmentConstraint(left, right), origin))
        else:
            working.append(constraint)

    # Collapse all ``E_i ⊆ S`` constraints into ``E_1 ∪ ... ∪ E_n ⊆ S``.
    bounds: List[Expression] = []
    remaining: List[Constraint] = []
    for constraint in working:
        if isinstance(constraint, ContainmentConstraint) and _is_bare_symbol(
            constraint.right, symbol
        ):
            bounds.append(constraint.left)
        else:
            remaining.append(constraint)

    if bounds:
        lower: Expression = bounds[0]
        for bound in bounds[1:]:
            lower = Union(lower, bound)
    else:
        # The symbol never appears on a right-hand side: the empty relation is
        # a vacuous lower bound.
        lower = Empty(context.symbol_arity)

    xi = ContainmentConstraint(lower, Relation(symbol, context.symbol_arity))
    return ConstraintSet(remaining + [xi]), xi
