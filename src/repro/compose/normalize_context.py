"""Shared context object passed to normalization rules.

Both built-in and user-supplied (registry) normalization rules receive a
:class:`NormalizationContext`.  It provides the name of the symbol being
eliminated, its arity, a fresh-Skolem-function factory (so right-normalization
rules for user-defined operators can Skolemize consistently with the built-in
projection rule) and the operator registry itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.algebra.expressions import SkolemFunction

__all__ = ["SkolemNamer", "NormalizationContext"]


class SkolemNamer:
    """Generates fresh, deterministic Skolem function names (``sk1``, ``sk2``, ...)."""

    def __init__(self, prefix: str = "sk"):
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh_name(self) -> str:
        """Return a name never returned before by this namer."""
        return f"{self._prefix}{next(self._counter)}"

    def fresh_function(self, depends_on: Sequence[int]) -> SkolemFunction:
        """Return a fresh Skolem function depending on the given column indices."""
        return SkolemFunction(self.fresh_name(), tuple(depends_on))


@dataclass
class NormalizationContext:
    """Context available to normalization rules while eliminating one symbol."""

    symbol: str
    symbol_arity: int
    skolems: SkolemNamer = field(default_factory=SkolemNamer)
    registry: object = None
