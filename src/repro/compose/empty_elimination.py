"""Eliminate the empty relation ``∅`` (paper Section 3.5.4).

Right compose may introduce ``∅`` (through the vacuous bound ``∅ ⊆ S`` or the
difference identity).  This step applies the ∅-identities::

    E ∪ ∅ = E      E ∩ ∅ = ∅      E − ∅ = E
    ∅ − E = ∅      σ_c(∅) = ∅     π_I(∅) = ∅

plus any user-supplied rules, and deletes constraints of the form ``∅ ⊆ E``,
which every instance satisfies.  As with ``D``, leftover occurrences of ``∅``
are tolerated.
"""

from __future__ import annotations

from repro.algebra.simplify import simplify_constraint_set
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["eliminate_empty"]


def eliminate_empty(constraints: ConstraintSet, registry=None) -> ConstraintSet:
    """Apply the ∅-identities and drop trivially-satisfied constraints."""
    return simplify_constraint_set(constraints, registry, drop_trivial=True)
