"""Configuration of the composition algorithm.

The experimental study of the paper toggles individual features of the
algorithm ('no unfolding', 'no right compose', ...) and bounds the output size
blow-up; :class:`ComposerConfig` exposes exactly those knobs plus the operator
registry used for extensibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.exceptions import CompositionError
from repro.operators.registry import OperatorRegistry, default_registry

__all__ = ["ComposerConfig"]


@dataclass(frozen=True)
class ComposerConfig:
    """Tunable parameters of :func:`repro.compose.composer.compose`.

    Attributes
    ----------
    enable_view_unfolding:
        Run the view-unfolding step of ELIMINATE (paper Section 3.2).  The
        'no unfolding' configuration of Figures 2, 3 and 6 sets this to False.
    enable_left_compose:
        Run the left-compose step (Section 3.4).
    enable_right_compose:
        Run the right-compose step (Section 3.5).  The 'no right compose'
        configuration of Figures 2, 3 and 6 sets this to False.
    max_blowup_factor:
        Abort the elimination of a symbol when the candidate output's size
        (total operator count) exceeds this multiple of the input size.  The
        paper uses a factor of 100.
    symbol_order:
        Optional explicit order in which σ2 symbols are attempted.  When
        ``None``, the order of the intermediate signature is used (the paper
        follows "the user-specified ordering on the relation symbols in σ2").
        Only meaningful with ``elimination_order="fixed"``; the cost-guided
        planner computes its own order, so combining the two is rejected.
    elimination_order:
        ``"fixed"`` (the default) walks the σ2 symbols in one configured
        order over the whole constraint set — the paper's behaviour, byte-
        identical to previous releases.  ``"cost"`` routes the composition
        through :mod:`repro.compose.planner`: the problem is split into
        independent connected components of the symbol co-occurrence graph,
        each component orders its eliminations by a cost model fed from the
        cached constraint summaries, and symbols that fail are re-queued
        after the cheaper ones instead of being given up in one pass.
    max_normalization_steps:
        Safety bound on the number of rewriting iterations inside left/right
        normalization (prevents pathological non-termination).
    simplify_output:
        Apply the light algebraic simplification (D/∅ identities, dropping
        trivially-satisfied constraints) to the final result.
    registry:
        Operator registry supplying monotonicity and normalization rules for
        non-basic operators.  Defaults to the library registry with the
        extended operators (semijoin, anti-semijoin, left outerjoin).
    """

    enable_view_unfolding: bool = True
    enable_left_compose: bool = True
    enable_right_compose: bool = True
    max_blowup_factor: float = 100.0
    symbol_order: Optional[Sequence[str]] = None
    max_normalization_steps: int = 500
    simplify_output: bool = True
    elimination_order: str = "fixed"
    registry: OperatorRegistry = field(default_factory=default_registry)

    def __post_init__(self) -> None:
        if self.elimination_order not in ("fixed", "cost"):
            raise CompositionError(
                f"unknown elimination_order {self.elimination_order!r}; "
                "expected 'fixed' or 'cost'"
            )
        if self.elimination_order == "cost" and self.symbol_order is not None:
            raise CompositionError(
                "symbol_order is only honoured with elimination_order='fixed'; "
                "the cost-guided planner computes its own order"
            )

    # -- convenience constructors matching the paper's configurations -------------

    @classmethod
    def default(cls) -> "ComposerConfig":
        """The 'complete' / 'no keys' configuration: every feature enabled."""
        return cls()

    @classmethod
    def no_view_unfolding(cls) -> "ComposerConfig":
        """The 'no unfolding' configuration of the experiments."""
        return cls(enable_view_unfolding=False)

    @classmethod
    def no_right_compose(cls) -> "ComposerConfig":
        """The 'no right compose' configuration of the experiments."""
        return cls(enable_right_compose=False)

    @classmethod
    def no_left_compose(cls) -> "ComposerConfig":
        """The 'no left compose' configuration (discussed in Section 4.2)."""
        return cls(enable_left_compose=False)

    @classmethod
    def cost_guided(cls) -> "ComposerConfig":
        """The cost-guided planner configuration (see :mod:`repro.compose.planner`)."""
        return cls(elimination_order="cost")

    def fingerprint(self) -> bytes:
        """Deterministic content fingerprint of the configuration.

        Every knob that can change a composition's output is covered — the
        step toggles, the blow-up bound, the symbol order, the normalization
        budget, the simplify switch, the elimination-order mode (fixed vs.
        cost-guided planner), and the operator registry's own
        fingerprint (which includes its mutation ``version``).  Incremental
        recomposition mixes this into every checkpoint token, so changing any
        knob — or registering a rule mid-run — invalidates recorded hops.

        Not cached: the registry is mutable underneath the (frozen) config,
        and recomputing is a handful of repr calls.
        """
        from hashlib import blake2b

        h = blake2b(digest_size=16)
        h.update(
            repr(
                (
                    self.enable_view_unfolding,
                    self.enable_left_compose,
                    self.enable_right_compose,
                    self.max_blowup_factor,
                    tuple(self.symbol_order) if self.symbol_order is not None else None,
                    self.max_normalization_steps,
                    self.simplify_output,
                    self.elimination_order,
                )
            ).encode()
        )
        h.update(self.registry.fingerprint())
        return h.digest()

    def with_registry(self, registry: OperatorRegistry) -> "ComposerConfig":
        """Return a copy using a different operator registry."""
        return replace(self, registry=registry)

    def with_symbol_order(self, order: Sequence[str]) -> "ComposerConfig":
        """Return a copy trying to eliminate symbols in the given order."""
        return replace(self, symbol_order=tuple(order))
