"""Procedure ELIMINATE (paper Section 3.1).

``eliminate`` tries to remove one relation symbol from a constraint set by
running, in order, view unfolding, left compose and right compose, and returns
the first success.  The paper's blow-up guard is applied to each candidate:
if a step's output exceeds the configured multiple of the baseline size, the
candidate is rejected and the step is counted as failed.

Inapplicable steps are skipped up front via the constraint set's mention
index: a symbol absent from the set drops for free, view unfolding requires an
*equality* mentioning the symbol (a defining equality necessarily is one), and
a constraint mentioning the symbol on both sides defeats left and right
compose before any normalization runs — each skip records the same failure
reason the full attempt would have produced, so outcomes are unchanged.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.compose.config import ComposerConfig
from repro.compose.left_compose import left_compose
from repro.compose.phases import timed
from repro.compose.result import EliminationMethod, EliminationOutcome
from repro.compose.right_compose import right_compose
from repro.compose.view_unfolding import unfold_view
from repro.constraints.constraint import EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["eliminate"]


def _within_blowup(
    candidate: ConstraintSet, baseline_operator_count: int, config: ComposerConfig
) -> bool:
    """Check the paper's output-to-input size guard (factor 100 by default)."""
    if config.max_blowup_factor <= 0:
        return True
    baseline = max(baseline_operator_count, 1)
    return candidate.operator_count() <= config.max_blowup_factor * baseline


def eliminate(
    constraints: ConstraintSet,
    symbol: str,
    symbol_arity: int,
    config: Optional[ComposerConfig] = None,
    baseline_operator_count: Optional[int] = None,
) -> Tuple[ConstraintSet, EliminationOutcome]:
    """Try to eliminate ``symbol`` from ``constraints``.

    Returns ``(new_constraints, outcome)``.  On failure the constraints are
    returned unchanged and the outcome explains which steps were attempted.
    """
    config = config or ComposerConfig()
    registry = config.registry
    baseline = (
        baseline_operator_count
        if baseline_operator_count is not None
        else constraints.operator_count()
    )
    started = time.perf_counter()
    reasons = []
    blowup_aborted = False

    def finish(result: ConstraintSet, method: EliminationMethod) -> Tuple[ConstraintSet, EliminationOutcome]:
        duration = time.perf_counter() - started
        outcome = EliminationOutcome(
            symbol=symbol,
            success=True,
            method=method,
            duration_seconds=duration,
            failure_reasons=tuple(reasons),
        )
        return result, outcome

    mentioning = constraints.constraints_mentioning(symbol)
    if not mentioning:
        # Nothing mentions the symbol: dropping it from the signature is free.
        return finish(constraints, EliminationMethod.NOT_MENTIONED)

    # Mention-index pre-checks.  A defining equality is necessarily an
    # equality mentioning the symbol, so without one view unfolding cannot
    # apply; a constraint mentioning the symbol on both sides makes both
    # left and right compose exit in their step 0.  Each skip appends the
    # exact reason the full attempt would have produced, keeping outcomes
    # byte-identical to the unshortened path.
    mentions_in_equality = any(
        isinstance(constraint, EqualityConstraint) for constraint in mentioning
    )
    mentions_both_sides = any(
        constraint.mentions_on_left(symbol) and constraint.mentions_on_right(symbol)
        for constraint in mentioning
    )

    # Step 1: view unfolding.
    if config.enable_view_unfolding:
        if not mentions_in_equality:
            reasons.append("no defining equality for view unfolding")
        else:
            with timed("view_unfolding"):
                candidate = unfold_view(constraints, symbol)
            if candidate is not None:
                if _within_blowup(candidate, baseline, config):
                    return finish(candidate, EliminationMethod.VIEW_UNFOLDING)
                blowup_aborted = True
                reasons.append("view unfolding exceeded the blow-up bound")
            else:
                reasons.append("no defining equality for view unfolding")
    else:
        reasons.append("view unfolding disabled")

    # Step 2: left compose.
    if config.enable_left_compose:
        if mentions_both_sides:
            reasons.append("left compose failed")
        else:
            with timed("left_compose"):
                candidate = left_compose(
                    constraints, symbol, symbol_arity, registry, config.max_normalization_steps
                )
            if candidate is not None:
                if _within_blowup(candidate, baseline, config):
                    return finish(candidate, EliminationMethod.LEFT_COMPOSE)
                blowup_aborted = True
                reasons.append("left compose exceeded the blow-up bound")
            else:
                reasons.append("left compose failed")
    else:
        reasons.append("left compose disabled")

    # Step 3: right compose.
    if config.enable_right_compose:
        if mentions_both_sides:
            reasons.append("right compose failed")
        else:
            with timed("right_compose"):
                candidate = right_compose(
                    constraints, symbol, symbol_arity, registry, config.max_normalization_steps
                )
            if candidate is not None:
                if _within_blowup(candidate, baseline, config):
                    return finish(candidate, EliminationMethod.RIGHT_COMPOSE)
                blowup_aborted = True
                reasons.append("right compose exceeded the blow-up bound")
            else:
                reasons.append("right compose failed")
    else:
        reasons.append("right compose disabled")

    duration = time.perf_counter() - started
    outcome = EliminationOutcome(
        symbol=symbol,
        success=False,
        method=EliminationMethod.FAILED,
        duration_seconds=duration,
        failure_reasons=tuple(reasons),
        blowup_aborted=blowup_aborted,
    )
    return constraints, outcome
