"""Procedure COMPOSE — the public entry point of the composition algorithm.

``compose`` takes a :class:`~repro.mapping.composition_problem.CompositionProblem`
(or two mappings) and tries to eliminate every σ2 symbol from Σ12 ∪ Σ23,
one at a time, in the configured order.  The algorithm is best-effort: symbols
that cannot be eliminated simply survive into the output, which is then a
constraint set over σ1 ∪ σ2' ∪ σ3 for some σ2' ⊆ σ2 (paper Section 3.1).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional

from repro.algebra.interning import ExpressionCache, shared_expression_cache
from repro.algebra.simplify import simplify_constraint_set
from repro.compose.config import ComposerConfig
from repro.compose.eliminate import eliminate
from repro.compose.phases import charge, collect_phases, timed
from repro.compose.result import CompositionResult, EliminationOutcome
from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import CompositionError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping

__all__ = ["compose", "compose_mappings"]


def compose(
    problem: CompositionProblem,
    config: Optional[ComposerConfig] = None,
    cache: Optional[ExpressionCache] = None,
    executor=None,
) -> CompositionResult:
    """Run COMPOSE on a composition problem and return the detailed result.

    ``cache`` activates an :class:`ExpressionCache` for the duration of this
    composition (restoring the previous activation afterwards), so repeated
    standalone calls can share one cache without going through the batch
    engine.  When omitted, whatever cache is already active is used.

    With ``config.elimination_order == "cost"`` the composition is routed
    through the cost-guided planner (:mod:`repro.compose.planner`):
    independent connected components of the symbol co-occurrence graph are
    composed separately, cheapest eliminations first, with failed symbols
    re-queued after the cheaper ones.  ``executor`` (a ``concurrent.futures``
    executor) then runs the components as parallel sub-tasks; it is ignored
    by the fixed-order path.
    """
    if cache is not None:
        with shared_expression_cache(cache):
            return compose(problem, config, executor=executor)
    config = config or ComposerConfig()
    if config.elimination_order == "cost":
        from repro.compose.planner import plan_compose

        return plan_compose(problem, config, executor=executor)
    started = time.perf_counter()

    constraints: ConstraintSet = problem.all_constraints
    input_operator_count = constraints.operator_count()

    symbol_order = list(config.symbol_order) if config.symbol_order else list(
        problem.sigma2.names()
    )
    unknown = [name for name in symbol_order if name not in problem.sigma2]
    if unknown:
        raise CompositionError(
            f"symbol_order mentions relations that are not in σ2: {unknown}"
        )
    # Symbols omitted from an explicit order are appended in signature order,
    # so every σ2 symbol is attempted exactly once.
    for name in problem.sigma2.names():
        if name not in symbol_order:
            symbol_order.append(name)

    outcomes: List[EliminationOutcome] = []
    eliminated: List[str] = []
    with collect_phases() as phase_buckets:
        for symbol in symbol_order:
            symbol_started = time.perf_counter()
            constraints, outcome = eliminate(
                constraints,
                symbol,
                problem.sigma2.arity_of(symbol),
                config,
                baseline_operator_count=input_operator_count,
            )
            # Record the per-symbol elapsed time as COMPOSE observes it, so the
            # outcomes' durations add up to the whole-run elapsed_seconds (minus
            # the final simplification pass); the same measurement feeds the
            # "eliminate" phase bucket.
            symbol_seconds = time.perf_counter() - symbol_started
            charge("eliminate", symbol_seconds)
            outcome = replace(outcome, duration_seconds=symbol_seconds)
            outcomes.append(outcome)
            if outcome.success:
                eliminated.append(symbol)

        if config.simplify_output:
            with timed("simplify"):
                constraints = simplify_constraint_set(constraints, config.registry)

    elapsed = time.perf_counter() - started
    residual = problem.sigma2.removing(*eliminated) if eliminated else problem.sigma2
    return CompositionResult(
        sigma1=problem.sigma1,
        sigma3=problem.sigma3,
        residual_sigma2=residual,
        constraints=constraints,
        outcomes=tuple(outcomes),
        elapsed_seconds=elapsed,
        input_operator_count=input_operator_count,
        output_operator_count=constraints.operator_count(),
        phase_seconds=tuple(sorted(phase_buckets.items())),
    )


def compose_mappings(
    m12: Mapping, m23: Mapping, config: Optional[ComposerConfig] = None
) -> CompositionResult:
    """Compose two mappings ``m12 : σ1→σ2`` and ``m23 : σ2→σ3``.

    Convenience wrapper that builds the :class:`CompositionProblem` and runs
    :func:`compose` on it.
    """
    problem = CompositionProblem.from_mappings(m12, m23)
    return compose(problem, config)
