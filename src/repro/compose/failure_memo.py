"""Shared probe/record helper for the normalization-failure memo.

Whether one constraint can be left-/right-normalized for a symbol — or passes
the per-constraint monotonicity and both-sides gates — is a pure function of
that constraint, the symbol and the registry's rules.  The best-effort
algorithm retries failed symbols after every chain hop and schema edit,
re-deriving the same dead ends; recording them in the active cache's failure
memo (:meth:`repro.algebra.interning.ExpressionCache.failure_memo`) turns
each retry into one set probe per affected constraint.

Both compose directions use the same machinery; only the ``kind`` tag and the
call sites differ, so the bookkeeping lives here once.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.algebra import interning
from repro.constraints.constraint import Constraint, EqualityConstraint

__all__ = ["NormalizationFailureMemo"]


class NormalizationFailureMemo:
    """Per-(constraint, symbol) failure bookkeeping for one compose attempt.

    Inactive (every method a cheap no-op) when no expression cache is active.
    """

    def __init__(self, kind: str, registry: Optional[object], symbol: str):
        cache = interning.active_cache()
        self._failures = (
            cache.failure_memo(kind, registry) if cache is not None else None
        )
        self._symbol = symbol
        self._origins: dict = {}

    def any_known(self, constraints: Iterable[Constraint]) -> bool:
        """True if any of ``constraints`` is already known to fail for the symbol."""
        failures = self._failures
        if failures is None:
            return False
        symbol = self._symbol
        return any((constraint, symbol) in failures for constraint in constraints)

    def map_split_origins(self, mentioning: Iterable[Constraint]) -> None:
        """Trace equality-split containments back to their source equality.

        Failures must be recorded against constraints the entry probe can see
        — members of the original set — not against the transient split
        parts.
        """
        if self._failures is None:
            return
        for constraint in mentioning:
            if isinstance(constraint, EqualityConstraint):
                for part in constraint.as_containments():
                    self._origins[part] = constraint

    def record(self, constraint: Constraint) -> None:
        """Record that ``constraint`` (or its split origin) fails for the symbol."""
        if self._failures is not None:
            origin = self._origins.get(constraint, constraint)
            self._failures.add((origin, self._symbol))

    @property
    def sink(self):
        """``failure_sink`` callback for the normalize drivers (or ``None``)."""
        return self.record if self._failures is not None else None
