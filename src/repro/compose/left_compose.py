"""The left-compose step of ELIMINATE (paper Sections 3.1 and 3.4).

Left compose eliminates a symbol ``S`` by finding an *upper bound* ``S ⊆ E1``
(via left-normalization) and substituting ``E1`` for ``S`` in every constraint
where ``S`` occurs on the right-hand side of a containment in a position
monotone in ``S``:

    ``E2 ⊆ M(S)``  becomes  ``E2 ⊆ M(E1)``,

which is sound because ``E2 ⊆ M(S) ⊆ M(E1)`` and complete because setting
``S := E1`` satisfies the removed bound.  Left compose handles cases where
right compose fails (e.g. a difference with ``S`` in the subtrahend on the
left-hand side — paper Example 10).
"""

from __future__ import annotations

from typing import List, Optional

from repro.algebra.traversal import contains_relation, substitute_relation
from repro.compose.domain_elimination import eliminate_domain
from repro.compose.failure_memo import NormalizationFailureMemo
from repro.compose.left_normalize import left_normalize
from repro.compose.normalize_context import NormalizationContext
from repro.compose.phases import timed
from repro.constraints.constraint import Constraint, ContainmentConstraint
from repro.constraints.constraint_set import ConstraintSet
from repro.operators.monotonicity import Monotonicity, monotonicity

__all__ = ["left_compose"]

_SAFE = (Monotonicity.MONOTONE, Monotonicity.INDEPENDENT)


def left_compose(
    constraints: ConstraintSet,
    symbol: str,
    symbol_arity: int,
    registry=None,
    max_steps: int = 500,
) -> Optional[ConstraintSet]:
    """Try to eliminate ``symbol`` by left composition.

    Returns the rewritten constraint set (free of ``symbol``) on success, or
    ``None`` if any of the sub-steps fails:

    1. the symbol appears on both sides of some constraint;
    2. some right-hand side containing the symbol is not monotone in it;
    3. left-normalization fails;
    4. the post-normalization monotonicity re-check fails.

    Failures of kinds 1-3 are pure per-constraint properties; with an active
    expression cache they are recorded in a failure memo, so the best-effort
    retries COMPOSE performs after every chain hop / schema edit fast-fail as
    soon as a known-dead constraint is still present.
    """
    mentioning = [constraints[i] for i in constraints.indices_mentioning(symbol)]
    memo = NormalizationFailureMemo("left-compose", registry, symbol)
    if memo.any_known(mentioning):
        return None

    # Step 0: the paper exits immediately if S appears on both sides of a
    # constraint.  The symbol index narrows every scan to the constraints
    # that mention S at all.
    for constraint in mentioning:
        if constraint.mentions_on_left(symbol) and constraint.mentions_on_right(symbol):
            memo.record(constraint)
            return None

    # Convert equalities mentioning S into pairs of containments.
    working = constraints.with_equalities_split(symbol)
    memo.map_split_origins(mentioning)

    # Step 1: right-monotonicity check — every RHS that mentions S must be monotone in S.
    for index in working.indices_mentioning(symbol):
        constraint = working[index]
        if constraint.mentions_on_right(symbol):
            if monotonicity(constraint.right, symbol, registry) not in _SAFE:
                memo.record(constraint)
                return None

    # Step 2: left-normalize, producing the single upper bound ξ : S ⊆ E1.
    context = NormalizationContext(symbol=symbol, symbol_arity=symbol_arity, registry=registry)
    with timed("normalize"):
        normalized = left_normalize(
            working, symbol, context, max_steps=max_steps, failure_sink=memo.sink
        )
    if normalized is None:
        return None
    normalized_set, xi = normalized
    upper_bound = xi.right
    if contains_relation(upper_bound, symbol):
        return None

    # Step 3: basic left compose — drop ξ and substitute E1 for S on right-hand sides.
    result: List[Constraint] = []
    for constraint in normalized_set:
        if constraint == xi:
            continue
        if constraint.mentions_on_left(symbol):
            # Left normal form guarantees S appears on the left only in ξ.
            return None
        if constraint.mentions_on_right(symbol):
            if monotonicity(constraint.right, symbol, registry) not in _SAFE:
                return None
            result.append(
                ContainmentConstraint(
                    constraint.left,
                    substitute_relation(constraint.right, symbol, upper_bound),
                )
            )
        else:
            result.append(constraint)

    # Step 4: eliminate the active-domain relation introduced by normalization.
    return eliminate_domain(ConstraintSet(result), registry)
