"""Result objects returned by ELIMINATE and COMPOSE.

The algorithm is best-effort, so results carry detailed per-symbol outcomes
(which step succeeded, why the others failed, how long it took) — exactly the
information the paper's experimental study aggregates into its figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.constraints.constraint_set import ConstraintSet
from repro.exceptions import CompositionError
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature

__all__ = ["EliminationMethod", "EliminationOutcome", "CompositionResult"]


class EliminationMethod(enum.Enum):
    """Which step of ELIMINATE succeeded for a symbol."""

    VIEW_UNFOLDING = "view_unfolding"
    LEFT_COMPOSE = "left_compose"
    RIGHT_COMPOSE = "right_compose"
    NOT_MENTIONED = "not_mentioned"
    FAILED = "failed"


@dataclass(frozen=True)
class EliminationOutcome:
    """The outcome of attempting to eliminate a single σ2 symbol."""

    symbol: str
    success: bool
    method: EliminationMethod
    duration_seconds: float = 0.0
    failure_reasons: Tuple[str, ...] = ()
    blowup_aborted: bool = False

    @property
    def elapsed_seconds(self) -> float:
        """Per-symbol elapsed time (alias of ``duration_seconds``).

        Inside :func:`repro.compose.composer.compose` this is the wall-clock
        time COMPOSE spent on the symbol; standalone ``eliminate`` calls
        record their own internal timing here.
        """
        return self.duration_seconds

    def __repr__(self) -> str:
        status = "eliminated" if self.success else "kept"
        return f"<EliminationOutcome {self.symbol}: {status} via {self.method.value}>"


@dataclass(frozen=True)
class CompositionResult:
    """The output of COMPOSE: the surviving constraints plus bookkeeping.

    Attributes
    ----------
    sigma1, sigma3:
        The outer signatures of the composition problem.
    residual_sigma2:
        The σ2 symbols that could *not* be eliminated (possibly empty).
    constraints:
        The output constraint set over σ1 ∪ residual σ2 ∪ σ3.
    outcomes:
        Per-symbol elimination outcomes, in the order the symbols were tried.
    elapsed_seconds:
        Wall-clock time of the whole composition.
    input_operator_count / output_operator_count:
        The paper's size metric before and after.
    phase_seconds:
        Per-phase wall-clock buckets as sorted ``(name, seconds)`` pairs (see
        :mod:`repro.compose.phases`; ``phase_breakdown()`` returns them as a
        dict).  Buckets nest rather than partition: ``eliminate`` covers each
        whole per-symbol attempt, ``left_compose``/``right_compose``/
        ``view_unfolding`` are inside it, and ``normalize``/``deskolemize``
        are inside the compose steps; ``simplify`` is the final pass.
    plan:
        The cost-guided planner's per-component elimination orders (one tuple
        of σ2 symbols per connected component of the symbol co-occurrence
        graph, in the order the first pass attempted them).  Empty for
        fixed-order compositions.
    components:
        Number of independent components the planner composed (0 for
        fixed-order compositions).
    reorderings:
        Number of retry attempts the planner's bounded backtracking made —
        elimination attempts beyond each symbol's first (0 when every symbol
        settled in one pass, and for fixed-order compositions).
    """

    sigma1: Signature
    sigma3: Signature
    residual_sigma2: Signature
    constraints: ConstraintSet
    outcomes: Tuple[EliminationOutcome, ...]
    elapsed_seconds: float
    input_operator_count: int
    output_operator_count: int
    phase_seconds: Tuple[Tuple[str, float], ...] = ()
    plan: Tuple[Tuple[str, ...], ...] = ()
    components: int = 0
    reorderings: int = 0

    # -- derived statistics --------------------------------------------------------

    @property
    def attempted_symbols(self) -> Tuple[str, ...]:
        """All σ2 symbols the algorithm attempted, in order."""
        return tuple(outcome.symbol for outcome in self.outcomes)

    @property
    def eliminated_symbols(self) -> Tuple[str, ...]:
        """The σ2 symbols successfully eliminated."""
        return tuple(outcome.symbol for outcome in self.outcomes if outcome.success)

    @property
    def remaining_symbols(self) -> Tuple[str, ...]:
        """The σ2 symbols that survive in the output."""
        return tuple(outcome.symbol for outcome in self.outcomes if not outcome.success)

    @property
    def is_complete(self) -> bool:
        """``True`` iff every σ2 symbol was eliminated (a "perfect" composition)."""
        return not self.remaining_symbols

    @property
    def fraction_eliminated(self) -> float:
        """Fraction of σ2 symbols eliminated (1.0 when σ2 is empty)."""
        if not self.outcomes:
            return 1.0
        return len(self.eliminated_symbols) / len(self.outcomes)

    @property
    def elimination_seconds(self) -> float:
        """Total time spent in per-symbol elimination (sum of outcome timings).

        Always at most :attr:`elapsed_seconds`; the difference is the final
        simplification pass and bookkeeping.
        """
        return sum(outcome.duration_seconds for outcome in self.outcomes)

    def phase_breakdown(self) -> Dict[str, float]:
        """The per-phase wall-clock buckets as a ``{name: seconds}`` dict."""
        return dict(self.phase_seconds)

    @property
    def output_signature(self) -> Signature:
        """σ1 ∪ residual σ2 ∪ σ3 — the signature the output constraints range over."""
        return self.sigma1.union(self.residual_sigma2).union(self.sigma3)

    def outcome_for(self, symbol: str) -> EliminationOutcome:
        """Return the outcome recorded for ``symbol``."""
        for outcome in self.outcomes:
            if outcome.symbol == symbol:
                return outcome
        raise CompositionError(f"no elimination was attempted for symbol {symbol!r}")

    def methods_used(self) -> Dict[EliminationMethod, int]:
        """Histogram of which step of ELIMINATE succeeded, over eliminated symbols."""
        histogram: Dict[EliminationMethod, int] = {}
        for outcome in self.outcomes:
            if outcome.success:
                histogram[outcome.method] = histogram.get(outcome.method, 0) + 1
        return histogram

    def blowup_ratio(self) -> float:
        """Output-to-input size ratio (operator counts)."""
        if self.input_operator_count == 0:
            return float(self.output_operator_count > 0)
        return self.output_operator_count / self.input_operator_count

    def to_mapping(self) -> Mapping:
        """Return the composed mapping as a :class:`Mapping` from σ1 to σ3.

        Only available for *complete* compositions; partial results keep σ2
        symbols and therefore do not form a σ1→σ3 mapping.  Use
        :meth:`to_mapping_with_residue` for the general case.
        """
        if not self.is_complete:
            raise CompositionError(
                "composition is partial; the result still mentions σ2 symbols "
                f"{self.remaining_symbols} (use to_mapping_with_residue instead)"
            )
        return Mapping(self.sigma1, self.sigma3, self.constraints)

    def to_mapping_with_residue(self) -> Mapping:
        """Return the result as a mapping from σ1 ∪ residual σ2 to σ3.

        The surviving σ2 symbols are treated as part of the input signature —
        the paper's suggestion that non-eliminated symbols "may need to be
        populated as intermediate relations that will be discarded at the end".
        """
        return Mapping(self.sigma1.union(self.residual_sigma2), self.sigma3, self.constraints)

    def summary(self) -> str:
        """A short human-readable summary (used by the examples and benchmarks)."""
        lines = [
            f"eliminated {len(self.eliminated_symbols)}/{len(self.outcomes)} intermediate symbols "
            f"({self.fraction_eliminated:.0%}) in {self.elapsed_seconds * 1000:.1f} ms",
            f"constraints: {len(self.constraints)}, operators: {self.output_operator_count} "
            f"(input {self.input_operator_count})",
        ]
        if self.remaining_symbols:
            lines.append("kept symbols: " + ", ".join(self.remaining_symbols))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<CompositionResult: {len(self.eliminated_symbols)}/{len(self.outcomes)} eliminated, "
            f"{len(self.constraints)} constraints>"
        )
