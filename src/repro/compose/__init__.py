"""The mapping-composition algorithm: ELIMINATE, COMPOSE and their sub-steps."""

from repro.compose.config import ComposerConfig
from repro.compose.composer import compose, compose_mappings
from repro.compose.eliminate import eliminate
from repro.compose.planner import (
    ComponentResult,
    CompositionPlan,
    PlannedComponent,
    build_plan,
    compose_component,
    order_symbols,
    plan_compose,
    symbol_cost,
)
from repro.compose.result import CompositionResult, EliminationMethod, EliminationOutcome
from repro.compose.view_unfolding import unfold_view
from repro.compose.left_compose import left_compose
from repro.compose.right_compose import right_compose
from repro.compose.left_normalize import left_normalize
from repro.compose.right_normalize import right_normalize
from repro.compose.deskolemize import deskolemize
from repro.compose.domain_elimination import eliminate_domain
from repro.compose.empty_elimination import eliminate_empty
from repro.compose.normalize_context import NormalizationContext, SkolemNamer

__all__ = [
    "ComposerConfig",
    "compose",
    "compose_mappings",
    "eliminate",
    "ComponentResult",
    "CompositionPlan",
    "PlannedComponent",
    "build_plan",
    "compose_component",
    "order_symbols",
    "plan_compose",
    "symbol_cost",
    "CompositionResult",
    "EliminationMethod",
    "EliminationOutcome",
    "unfold_view",
    "left_compose",
    "right_compose",
    "left_normalize",
    "right_normalize",
    "deskolemize",
    "eliminate_domain",
    "eliminate_empty",
    "NormalizationContext",
    "SkolemNamer",
]
