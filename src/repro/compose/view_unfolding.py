"""Step 1 of ELIMINATE: view unfolding (paper Section 3.2).

If the constraint set contains an equality ``S = E`` where ``E`` does not
mention ``S``, then ``S`` is a defined view: remove the defining constraint and
substitute ``E`` for ``S`` everywhere else.  Because the definition is an
*equality*, the substitution is correct regardless of monotonicity or of
unknown operators — this is what gives view unfolding "extra power" compared
to left and right compose (paper Example 5).
"""

from __future__ import annotations

from typing import Optional

from repro.constraints.constraint import EqualityConstraint
from repro.constraints.constraint_set import ConstraintSet

__all__ = ["unfold_view"]


def unfold_view(constraints: ConstraintSet, symbol: str) -> Optional[ConstraintSet]:
    """Try to eliminate ``symbol`` by view unfolding.

    Returns the rewritten constraint set on success, or ``None`` if no
    constraint of the form ``symbol = E`` (with ``E`` free of ``symbol``)
    exists.
    """
    # The symbol index narrows the scan to the constraints that mention the
    # symbol at all — a defining equality necessarily does.
    positions = constraints.indices_mentioning(symbol)
    for position in positions:
        constraint = constraints[position]
        if not isinstance(constraint, EqualityConstraint):
            continue
        definition = constraint.definition_of(symbol)
        if definition is None:
            continue
        # Patch in place: rewrite the indexed constraints, drop the defining
        # equality; everything else is reused as-is.
        result = list(constraints)
        for index in positions:
            if index != position:
                result[index] = result[index].substituting(symbol, definition)
        del result[position]
        return ConstraintSet(result)
    return None
