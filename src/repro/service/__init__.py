"""The composition service: a concurrent serving front-end over the engine.

* :mod:`repro.service.server` — :class:`CompositionService`: a request queue
  with admission control, in-flight deduplication (identical fingerprints
  coalesce to one computation), micro-batching into
  :class:`~repro.engine.batch.BatchComposer` calls, per-request
  :class:`~repro.compose.config.ComposerConfig` overrides, and durable hop
  checkpoints when backed by a :class:`~repro.catalog.MappingCatalog`;
* :mod:`repro.service.metrics` — the metrics the service aggregates
  (hit rates, per-phase timings, queue/batch statistics, degradation
  counters);
* :mod:`repro.service.breaker` — :class:`CircuitBreaker`, the storage
  circuit breaker behind graceful degradation: a sick disk flips the service
  to memory-only serving instead of wedging it, and a background probe
  closes the breaker when storage recovers;
* :mod:`repro.service.http` — a stdlib HTTP front-end exposing ``/compose``,
  ``/catalog``, ``/metrics`` and a truthful ``/healthz`` (the CLI's
  ``repro serve``).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.http import ServiceHTTPServer, serve
from repro.service.metrics import ServiceMetrics
from repro.service.server import CompositionService, ServiceConfig, Ticket

__all__ = [
    "CircuitBreaker",
    "CompositionService",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "Ticket",
    "serve",
]
