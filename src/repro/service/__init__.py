"""The composition service: a concurrent serving front-end over the engine.

* :mod:`repro.service.server` — :class:`CompositionService`: a request queue
  with admission control, in-flight deduplication (identical fingerprints
  coalesce to one computation), micro-batching into
  :class:`~repro.engine.batch.BatchComposer` calls, per-request
  :class:`~repro.compose.config.ComposerConfig` overrides, and durable hop
  checkpoints when backed by a :class:`~repro.catalog.MappingCatalog`;
* :mod:`repro.service.metrics` — the metrics the service aggregates
  (hit rates, per-phase timings, queue/batch statistics, degradation
  counters, labeled latency histograms with a Prometheus text exposition);
  request-scoped tracing lives in :mod:`repro.obs` and is threaded through
  every layer here — HTTP ingress spans, queue/execution spans, journal and
  shard-lock spans, follower applies joining the originating write's trace;
* :mod:`repro.service.breaker` — :class:`CircuitBreaker`, the storage
  circuit breaker behind graceful degradation: a sick disk flips the service
  to memory-only serving instead of wedging it, and a background probe
  closes the breaker when storage recovers;
* :mod:`repro.service.http` — a stdlib HTTP front-end exposing ``/compose``,
  ``/catalog``, ``/metrics``, ``/journal/<shard>`` and a truthful
  ``/healthz`` (the CLI's ``repro serve``);
* :mod:`repro.service.replica` — :class:`ReplicationFollower`, the follower
  mode behind ``repro serve --follow``: tail a primary's catalog journal
  (local root or HTTP), mirror it with post-apply fingerprint verification,
  report replication lag, promote on demand;
* :mod:`repro.service.router` — :class:`RouterHTTPServer`, the
  health-routing front tier behind ``repro route``: reads to healthy
  followers, writes to the highest-epoch primary, retries of idempotent
  requests on dead backends, automatic failover to a promoted replica;
* :mod:`repro.service.election` — :class:`LeaderElector`, unattended
  failover behind ``repro serve --election``: candidates watch primary
  health, race for the ``leader`` lease when it goes silent, and the winner
  self-promotes with a fresh fencing epoch (no ``/admin/promote`` needed).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.election import LeaderElector
from repro.service.http import ServiceHTTPServer, serve
from repro.service.metrics import ServiceMetrics
from repro.service.replica import (
    HTTPJournalSource,
    LocalJournalSource,
    ReplicationFollower,
    open_source,
)
from repro.service.router import RouterHTTPServer, route
from repro.service.server import CompositionService, ServiceConfig, Ticket

__all__ = [
    "CircuitBreaker",
    "CompositionService",
    "HTTPJournalSource",
    "LeaderElector",
    "LocalJournalSource",
    "ReplicationFollower",
    "RouterHTTPServer",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "Ticket",
    "open_source",
    "route",
    "serve",
]
