"""Lease-based leader election: unattended failover for the replicated tier.

:class:`LeaderElector` closes the gap PR 8 left open: when the primary dies,
a follower used to park behind 503s until an operator POSTed
``/admin/promote``.  The elector runs that promotion automatically, built on
the cross-process :class:`~repro.catalog.leases.LeaseTable`:

* **Candidate mode** (constructed with a ``follower``): a background loop
  watches primary liveness — an HTTP ``/healthz`` probe when ``primary_url``
  is given, the follower's own poll reachability otherwise, and any
  unexpired ``leader`` lease on disk.  When the primary stays silent for
  ``election_timeout_seconds``, every candidate races to
  :meth:`~repro.catalog.leases.LeaseTable.wait_acquire` the well-known
  ``leader`` key in a shared election directory; exactly one wins.
* **The winner self-promotes** through the existing
  :meth:`~repro.service.replica.ReplicationFollower.promote` path, then
  mints a new **fencing epoch** via
  :meth:`~repro.catalog.catalog.MappingCatalog.bump_epoch` and — best
  effort — drops a ``FENCED`` tombstone into the dead primary's root
  (``source_root``), so a zombie ex-primary that wakes up later gets
  :class:`~repro.exceptions.StaleEpochError` instead of split-braining the
  store.
* **Leader mode** (no ``follower``): the current primary simply holds and
  renews the ``leader`` lease so candidates do not duel a live leader.  A
  leader whose renew comes back ``False`` (its lease was taken over while it
  was stalled) marks itself *deposed* and stops claiming leadership — the
  HTTP layer degrades its health accordingly.

Losing an election is not an error: the loser observes the winner's lease
(and soon its higher epoch through replication) and goes back to tailing.

Fault points: ``election.acquire`` fires before each lease race and
``election.renew`` before each leader renewal — chaos tests use them to
delay or crash electors mid-transition.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional, Union
from urllib.error import HTTPError, URLError
from urllib.request import urlopen

from repro import faults, obs
from repro.catalog.catalog import MappingCatalog
from repro.catalog.journal import CatalogJournal
from repro.catalog.leases import LeaseTable
from repro.exceptions import (
    CatalogLockTimeoutError,
    JournalError,
    LeaseUnavailableError,
    ReplicationError,
    ServiceError,
)

__all__ = ["LeaderElector", "LEADER_LEASE_KEY", "DEFAULT_ELECTION_TIMEOUT_SECONDS"]

#: The well-known lease key every candidate races for.
LEADER_LEASE_KEY = "leader"

#: How long the primary must stay silent before candidates start an election.
DEFAULT_ELECTION_TIMEOUT_SECONDS = 5.0


class LeaderElector:
    """Watches primary health and self-promotes one follower when it dies.

    Parameters
    ----------
    catalog:
        The local catalog this process serves (the one that gets the new
        epoch on promotion).
    follower:
        The :class:`~repro.service.replica.ReplicationFollower` to promote
        on a won election.  ``None`` means this process *is* the primary:
        the elector only holds the ``leader`` lease.
    election_dir:
        Directory holding the shared lease table.  Every process in one
        failover group must point at the same directory (a shared
        filesystem path).  Defaults to ``<catalog.root>/election`` — fine
        for a single candidate, but a fleet needs an explicitly shared dir.
    source_root:
        The (dead) primary's catalog root, when reachable on this
        filesystem.  A won election fences it with the new epoch so a
        resurrected ex-primary cannot accept writes.
    primary_url:
        The primary's base URL; when given, liveness is probed via
        ``GET /healthz`` (any HTTP answer counts as alive, even a 500 —
        a degraded primary is still the primary).
    election_timeout_seconds:
        Silence threshold before racing, and the ``wait_acquire`` budget.
    poll_interval_seconds:
        Candidate/leader loop cadence; defaults to a quarter of the
        election timeout.
    lease_ttl_seconds:
        TTL of the ``leader`` lease; defaults to the election timeout, so
        a crashed leader's lease expires on the same clock candidates use.
    health_timeout_seconds:
        Per-probe HTTP timeout for the ``/healthz`` liveness check.
    """

    def __init__(
        self,
        catalog: MappingCatalog,
        follower=None,
        election_dir: Optional[Union[str, Path]] = None,
        source_root: Optional[Union[str, Path]] = None,
        primary_url: Optional[str] = None,
        election_timeout_seconds: float = DEFAULT_ELECTION_TIMEOUT_SECONDS,
        poll_interval_seconds: Optional[float] = None,
        lease_ttl_seconds: Optional[float] = None,
        health_timeout_seconds: float = 1.0,
    ):
        if election_timeout_seconds <= 0:
            raise ServiceError("election_timeout_seconds must be positive")
        if poll_interval_seconds is None:
            poll_interval_seconds = election_timeout_seconds / 4.0
        if poll_interval_seconds <= 0:
            raise ServiceError("poll_interval_seconds must be positive")
        if lease_ttl_seconds is None:
            lease_ttl_seconds = election_timeout_seconds
        self.catalog = catalog
        self.follower = follower
        self.source_root = Path(source_root) if source_root is not None else None
        self.primary_url = primary_url.rstrip("/") if primary_url else None
        self.election_timeout_seconds = election_timeout_seconds
        self.poll_interval_seconds = poll_interval_seconds
        self.health_timeout_seconds = health_timeout_seconds
        if election_dir is None:
            election_dir = Path(catalog.root) / "election"
        self.leases = LeaseTable(election_dir, ttl_seconds=lease_ttl_seconds)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._is_leader = follower is None
        self._deposed = False
        self._last_alive_monotonic = time.monotonic()
        self._last_probe_alive: Optional[bool] = None
        self.elections_started = 0
        self.elections_won = 0
        self.elections_lost = 0
        self.renewals = 0
        self.renew_failures = 0
        self.promotion_report: Optional[dict] = None
        self.fenced_source_epoch: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "LeaderElector":
        """Start the candidate/leader loop (idempotent); returns ``self``."""
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name="repro-elector", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
        with self._lock:
            self._thread = None
        try:
            self.leases.release_all()
        except OSError:
            pass

    def __enter__(self) -> "LeaderElector":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def is_leader(self) -> bool:
        return self._is_leader and not self._deposed

    @property
    def deposed(self) -> bool:
        return self._deposed

    # -- liveness ------------------------------------------------------------------

    def _probe_healthz(self) -> bool:
        url = f"{self.primary_url}/healthz"
        try:
            with urlopen(url, timeout=self.health_timeout_seconds) as response:
                response.read()
            return True
        except HTTPError:
            # The primary answered, however unhappily: it is alive.
            return True
        except (URLError, OSError):
            return False

    def _primary_alive(self) -> bool:
        """Best current evidence that a live leader exists somewhere."""
        alive = False
        if self.primary_url is not None:
            alive = self._probe_healthz()
        elif self.follower is not None:
            # No URL to probe: trust the follower's last poll outcome.
            alive = getattr(self.follower, "_source_reachable", None) is True
        lease = self.leases.peek(LEADER_LEASE_KEY)
        if (
            lease is not None
            and lease.owner != self.leases.owner
            and not lease.expired(time.time())
        ):
            # An elected peer is actively renewing: do not duel it.
            alive = True
        self._last_probe_alive = alive
        return alive

    # -- the loop ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                if self._is_leader:
                    self._leader_tick()
                else:
                    self._candidate_tick()
            except Exception:  # noqa: BLE001 - the loop must survive chaos faults
                pass
            self._stop.wait(self.poll_interval_seconds)

    def _leader_tick(self) -> None:
        if self._deposed:
            return
        if LEADER_LEASE_KEY not in self.leases.held():
            faults.fire("election.acquire", key=LEADER_LEASE_KEY, role="leader")
            self.leases.acquire(LEADER_LEASE_KEY)
            return
        faults.fire("election.renew", key=LEADER_LEASE_KEY)
        self.renewals += 1
        if not self.leases.renew(LEADER_LEASE_KEY):
            # Our lease was taken over while we stalled: a newer leader
            # exists.  Stop claiming leadership — fencing epochs protect
            # the store; this flag protects the routing layer.
            self.renew_failures += 1
            self._deposed = True

    def _candidate_tick(self) -> None:
        if self.follower is not None and self.follower.promoted:
            # Manual /admin/promote override: assume leader duties.
            with obs.span(
                "election.transition", new_trace=True, trigger="manual-promote"
            ):
                self._assume_leadership(promote=False)
            return
        now = time.monotonic()
        if self._primary_alive():
            self._last_alive_monotonic = now
            return
        if now - self._last_alive_monotonic < self.election_timeout_seconds:
            return
        self._run_election()

    def _run_election(self) -> None:
        self.elections_started += 1
        # The span is the election's wall clock — lease race through
        # promotion and fencing — and starts its own trace: elections are
        # triggered by silence, not by a traced request.
        with obs.span("election.transition", new_trace=True, trigger="timeout") as handle:
            faults.fire("election.acquire", key=LEADER_LEASE_KEY, role="candidate")
            try:
                self.leases.wait_acquire(
                    LEADER_LEASE_KEY, timeout=self.election_timeout_seconds
                )
            except (LeaseUnavailableError, CatalogLockTimeoutError, OSError):
                # Someone else won (or the lease dir hiccuped): back to
                # watching.  The winner now counts as the live primary.
                self.elections_lost += 1
                self._last_alive_monotonic = time.monotonic()
                handle.set("won", False)
                return
            self.elections_won += 1
            handle.set("won", True)
            self._assume_leadership(promote=True)

    def _assume_leadership(self, promote: bool) -> None:
        if promote and self.follower is not None and not self.follower.promoted:
            try:
                self.promotion_report = self.follower.promote()
            except ReplicationError:
                # A half-promoted follower is still the winner: it holds
                # the lease and its catalog is as caught up as the dead
                # primary allows.
                self.promotion_report = {"promoted": True, "final_catch_up_error": "crashed"}
        epoch = self.catalog.bump_epoch()
        self._fence_source(epoch)
        self._is_leader = True
        self._deposed = False

    def _fence_source(self, epoch: int) -> None:
        """Tombstone the old primary's root so its zombie cannot write."""
        if self.source_root is None:
            return
        try:
            journal = CatalogJournal(self.source_root / "journal")
            self.fenced_source_epoch = journal.fence(epoch)
        except (OSError, JournalError, ValueError):
            # The old root may be gone with its machine; the epoch stamped
            # into our own journal still outranks any zombie's entries.
            self.fenced_source_epoch = None

    # -- introspection -------------------------------------------------------------

    def status(self) -> dict:
        """A JSON-serializable snapshot of the elector's state."""
        if self._deposed:
            role = "deposed"
        elif self._is_leader:
            role = "leader"
        else:
            role = "candidate"
        silence: Optional[float] = None
        if not self._is_leader:
            silence = time.monotonic() - self._last_alive_monotonic
        return {
            "role": role,
            "running": self.is_running,
            "election_dir": str(self.leases.directory),
            "election_timeout_seconds": self.election_timeout_seconds,
            "primary_alive": self._last_probe_alive,
            "primary_silence_seconds": silence,
            "elections_started": self.elections_started,
            "elections_won": self.elections_won,
            "elections_lost": self.elections_lost,
            "renewals": self.renewals,
            "renew_failures": self.renew_failures,
            "deposed": self._deposed,
            "fenced_source_epoch": self.fenced_source_epoch,
        }

    def __repr__(self) -> str:
        role = "deposed" if self._deposed else ("leader" if self._is_leader else "candidate")
        return f"<LeaderElector {role} @ {self.leases.directory}>"
