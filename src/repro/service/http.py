"""A minimal HTTP front-end for the composition service (stdlib only).

``repro serve`` binds this to a port.  The surface is intentionally small and
text-first — everything speaks the plain-text record formats of
:mod:`repro.textio`, so ``curl`` is a complete client:

* ``GET /healthz`` — the service's *real* health as JSON: ``200`` with
  ``"status": "ok"`` when healthy, ``503`` with ``"status": "degraded"`` plus
  the reasons (storage circuit breaker open, serving loop down, GC sweep
  overdue), the breaker snapshot, the last GC sweep age, and the storage
  error counters.  Load balancers key on the status code; operators read the
  body.
* ``GET /metrics`` — the service's metrics snapshot as JSON;
  ``?format=prometheus`` answers the Prometheus text exposition instead
  (labeled counters plus ``repro_*_seconds`` histogram bucket/sum/count
  triples).
* ``GET /trace`` — the in-memory span ring as JSON (``?trace_id=...``
  filters to one trace) — the live window into :mod:`repro.obs`; the JSONL
  sinks (``REPRO_TRACE_LOG``) are the durable one.
* ``GET /catalog`` — JSON listing of the latest catalog entries
  (``?kind=mapping`` filters).
* ``GET /catalog/<kind>/<name>`` — the stored record text
  (``?version=N`` selects an old version).
* ``GET /journal/<shard>?since=<seq>`` — the catalog's replication journal
  entries of one index shard with sequence numbers past ``since``
  (``&limit=N`` bounds the page; ``limit=0`` asks only for ``last_seq``) —
  the endpoint a :class:`~repro.service.replica.ReplicationFollower` tails
  over HTTP.  Pollers piggyback ``&follower=<id>&applied=<seq>``; the
  server feeds that into the service's replica-ack table, which is how
  ``ack_level="replica"`` writes learn they are mirrored.
* ``POST /compose`` — body is a record text: a composition problem (the
  paper's task format) is composed and answered with a ``result`` record; a
  ``chain`` record is chain-composed and answered with a ``mapping`` record
  of the composed output (residual symbols folded into the input signature),
  plus ``X-Repro-*`` headers with hop-reuse counts.  ``?order=cost`` serves
  the request through the cost-guided planner; ``?store=<name>`` also
  registers the result in the catalog.  Stored writes carry an
  ``x-repro-epoch`` header (the writer's fencing epoch); a write rejected
  because this node's epoch is stale (a fenced zombie ex-primary) answers
  ``409``.  With ``ServiceConfig(ack_level="replica")`` the ack is held
  until a follower confirms the entry applied — a confirmation that misses
  its deadline degrades to ``202`` with ``x-repro-ack-pending: 1`` (the
  write is journal-durable, its mirroring just unconfirmed).
* ``POST /admin/promote`` — on a follower (``repro serve --follow``), stop
  tailing and become the primary, minting the next fencing epoch; answers
  the promotion report.  ``409`` on a server that is not a follower.  With
  ``repro serve --election`` this endpoint remains as a manual override —
  the elector notices the promotion and assumes leader duties.

A server given a follower reports its role (``primary`` or ``follower``) and
replication status in ``/healthz`` and ``/metrics`` — the router keys its
read/write routing on the role — and rejects ``?store=`` writes with ``409``
while still following (a follower's catalog mirrors its primary; writing to
it locally would fork the replicated sequence space).

Requests funnel through the shared :class:`CompositionService`, so HTTP
clients get the same admission control, deduplication, micro-batching and
metrics as in-process callers.  Overload answers ``429``, malformed records
``400``, unknown entries ``404``; ``429`` and degraded ``503`` responses
carry a ``Retry-After`` header derived from the breaker probe interval so
clients and routers back off instead of hammering a recovering node.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.compose.config import ComposerConfig
from repro.exceptions import (
    CatalogError,
    ParseError,
    ReproError,
    ServiceOverloadedError,
    StaleEpochError,
)
from repro.service.server import CompositionService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (replica imports catalog)
    from repro.service.election import LeaderElector
    from repro.service.replica import ReplicationFollower
from repro.textio.format import problem_from_text
from repro.textio.records import chain_from_text, detect_kind, mapping_to_text, result_to_text

__all__ = ["ServiceHTTPServer", "serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    # ``self.server`` is the ThreadingHTTPServer; ServiceHTTPServer pins the
    # ``service`` and ``verbose`` attributes onto it before serving starts.

    # -- plumbing ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str, headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers:
            self.send_header(key, value)
        context = obs.current()
        if context is not None:
            # Echo the request's trace identity so clients (and the router's
            # relay loop) can correlate the response with the span tree.
            self.send_header(obs.TRACE_ID_HEADER, context.trace_id)
            self.send_header(obs.SPAN_ID_HEADER, context.span_id)
        self.end_headers()
        self.wfile.write(body)

    def _traced(self, method: str, inner: Callable[[], None]) -> None:
        """Run one request inside an ingress span.

        A POST with no incoming context starts a fresh trace (it is the
        write path — the thing worth explaining after the fact); a GET only
        joins a trace that rode in on the headers, so router health polls
        and follower journal tails stay out of the sinks entirely.
        """
        self._last_status = 0
        incoming = obs.extract_context(self.headers)
        started = time.perf_counter()
        with obs.span(
            "http.request",
            parent=incoming,
            new_trace=(method == "POST"),
            record_start=True,
            method=method,
            path=self.path,
        ) as handle:
            context = handle.context
            try:
                inner()
            finally:
                handle.set("status", self._last_status)
        duration = time.perf_counter() - started
        self._access_record(method, duration, context)
        self._slow_trace(duration, context)

    def _access_record(self, method: str, duration: float, context) -> None:
        sink = self.server.access_sink
        if sink is None:
            return
        sink.write(
            {
                "ts": time.time(),
                "method": method,
                "path": self.path,
                "status": self._last_status,
                "duration": duration,
                "trace_id": context.trace_id if context is not None else None,
                "client": self.client_address[0],
            }
        )

    def _slow_trace(self, duration: float, context) -> None:
        """Dump the full span tree of an over-threshold request to stderr."""
        threshold = self.server.service.config.slow_trace_seconds
        if threshold is None or duration < threshold or context is None:
            return
        self.server.service.metrics_store.record_slow_request()
        records = obs.recorder().spans(context.trace_id)
        traces = obs.merge_spans(records)
        try:
            sys.stderr.write(
                f"slow request ({duration:.3f}s >= {threshold:.3f}s):\n"
                + obs.format_trace(
                    context.trace_id, traces.get(context.trace_id, records)
                )
                + "\n"
            )
        except OSError:  # pragma: no cover - stderr gone; telemetry stays silent
            pass

    def _send_text(self, status: int, text: str, headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._send(status, text.encode("utf-8"), "text/plain; charset=utf-8", headers)

    def _send_json(self, status: int, payload: object, headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self._send(status, body.encode("utf-8"), "application/json", headers)

    def _retry_after(self) -> Tuple[Tuple[str, str], ...]:
        """A ``Retry-After`` of one breaker probe interval (never below 1s).

        Attached to degraded ``503``s and overload/breaker rejections: the
        probe interval is exactly how often the node re-checks whether it
        recovered, so it is the soonest a retry could see a different answer.
        """
        seconds = self.server.service.config.breaker_recovery_seconds
        return (("Retry-After", str(max(1, math.ceil(seconds)))),)

    # -- routes --------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._traced("GET", self._do_get)

    def _do_get(self) -> None:
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                health = self._health()
                if health["status"] == "ok":
                    self._send_json(200, health)
                else:
                    self._send_json(503, health, headers=self._retry_after())
            elif parts == ["metrics"]:
                query = parse_qs(url.query)
                if query.get("format", [None])[0] == "prometheus":
                    self._send(
                        200,
                        self.server.service.metrics_prometheus().encode("utf-8"),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                    return
                metrics = self.server.service.metrics()
                follower = self.server.follower
                metrics["role"] = self.server.role
                metrics["epoch"] = self._epoch()
                if follower is not None:
                    replication = dict(metrics.get("replication", {}))
                    replication.update(follower.status())
                    metrics["replication"] = replication
                if self.server.elector is not None:
                    metrics["election"] = self.server.elector.status()
                self._send_json(200, metrics)
            elif parts == ["trace"]:
                query = parse_qs(url.query)
                trace_id = query.get("trace_id", [None])[0]
                spans = obs.recorder().spans(trace_id)
                self._send_json(200, {"spans": spans, "count": len(spans)})
            elif parts == ["catalog"]:
                self._get_catalog_listing(parse_qs(url.query))
            elif len(parts) == 3 and parts[0] == "catalog":
                self._get_catalog_record(parts[1], parts[2], parse_qs(url.query))
            elif len(parts) == 2 and parts[0] == "journal":
                self._get_journal(parts[1], parse_qs(url.query))
            else:
                self._send_text(404, f"unknown path {url.path!r}\n")
        except CatalogError as exc:
            self._send_text(404, f"{exc}\n")
        except ReproError as exc:
            self._send_text(400, f"{exc}\n")

    def _epoch(self) -> int:
        """The catalog's fencing epoch (0 without a catalog or before any)."""
        catalog = self.server.service.catalog
        if catalog is None:
            return 0
        try:
            return catalog.epoch
        except (CatalogError, OSError):  # pragma: no cover - unreadable marker
            return 0

    def _health(self) -> dict:
        """The service health, extended with this server's replication view."""
        health = self.server.service.health()
        health["role"] = self.server.role
        health["epoch"] = self._epoch()
        follower = self.server.follower
        if follower is not None:
            status = follower.status()
            health["replication"] = status
            # A follower with an unreachable source stays *healthy* — it is
            # the failover target and must keep serving reads — but one whose
            # applied entries failed verification is lying about its data.
            if status["verify_failures"]:
                health["reasons"] = list(health["reasons"]) + [
                    f"replication verify failures: {status['verify_failures']}"
                ]
                health["status"] = "degraded"
        elector = self.server.elector
        if elector is not None:
            status = elector.status()
            health["election"] = status
            if status["deposed"]:
                # A deposed leader's lease was taken over: a newer leader
                # exists and writes here would be fenced — degrade so the
                # router routes writes away.
                health["reasons"] = list(health["reasons"]) + [
                    "leader lease lost (deposed by a newer leader)"
                ]
                health["status"] = "degraded"
        return health

    def _get_journal(self, shard_text: str, query) -> None:
        catalog = self.server.service.catalog
        if catalog is None:
            self._send_text(404, "this service has no catalog attached\n")
            return
        try:
            shard = int(shard_text)
        except ValueError:
            self._send_text(400, "journal shard must be an integer\n")
            return
        since = 0
        limit: Optional[int] = None
        try:
            if "since" in query:
                since = int(query["since"][0])
            if "limit" in query:
                limit = int(query["limit"][0])
        except ValueError:
            self._send_text(400, "since and limit must be integers\n")
            return
        follower_id = query.get("follower", [None])[0]
        if follower_id:
            # The poller's applied-seq piggyback: its replay cursor *is* its
            # ack.  Feeds ack_level="replica" write waits and the GC floor.
            try:
                applied = int(query.get("applied", [str(since)])[0])
            except ValueError:
                applied = since
            self.server.service.record_follower_applied(follower_id, shard, applied)
        journal = catalog.journal
        entries = [] if limit == 0 else journal.read_since(shard, since, limit=limit)
        self._send_json(
            200,
            {
                "shard": shard,
                "since": since,
                "entries": entries,
                "last_seq": journal.last_seq(shard),
            },
        )

    def _get_catalog_listing(self, query) -> None:
        catalog = self.server.service.catalog
        if catalog is None:
            self._send_text(404, "this service has no catalog attached\n")
            return
        kind = query.get("kind", [None])[0]
        entries = [
            {
                "kind": entry.kind,
                "name": entry.name,
                "version": entry.version,
                "fingerprint": entry.fingerprint,
                "created_at": entry.created_at,
            }
            for entry in catalog.entries(kind)
        ]
        self._send_json(200, {"entries": entries, "stats": catalog.stats()})

    def _get_catalog_record(self, kind: str, name: str, query) -> None:
        catalog = self.server.service.catalog
        if catalog is None:
            self._send_text(404, "this service has no catalog attached\n")
            return
        version: Optional[int] = None
        if "version" in query:
            try:
                version = int(query["version"][0])
            except ValueError:
                self._send_text(400, "version must be an integer\n")
                return
        self._send_text(200, catalog.text(kind, name, version))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._traced("POST", self._do_post)

    def _do_post(self) -> None:
        url = urlsplit(self.path)
        if url.path.rstrip("/") == "/admin/promote":
            self._promote()
            return
        if url.path.rstrip("/") != "/compose":
            self._send_text(404, f"unknown path {url.path!r}\n")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_text(400, "malformed Content-Length header\n")
            return
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send_text(400, "request body required (a record text)\n")
            return
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        query = parse_qs(url.query)
        config: Optional[ComposerConfig] = None
        if query.get("order", [None])[0] == "cost":
            config = ComposerConfig.cost_guided()
        store_as = query.get("store", [None])[0]
        if store_as and self.server.role == "follower":
            # A follower's catalog mirrors its primary; a local write would
            # fork the replicated sequence space.  Composing without storing
            # is fine — that is what followers are for.
            self._send_text(
                409,
                "this server is a replication follower; "
                "write through the primary (or promote this follower first)\n",
            )
            return
        try:
            self._compose(text, config, store_as)
        except ServiceOverloadedError as exc:
            self._send_text(429, f"{exc}\n", headers=self._retry_after())
        except StaleEpochError as exc:
            # Fencing: this node's epoch has been outranked by a promoted
            # replica — it must not accept writes anymore.
            self._send_text(409, f"{exc}\n")
        except (ParseError, ReproError) as exc:
            self._send_text(400, f"{exc}\n")

    def _promote(self) -> None:
        follower = self.server.follower
        if follower is None:
            self._send_text(409, "this server is not a replication follower\n")
            return
        if follower.promoted:
            self._send_json(200, {"promoted": True, "already": True})
            return
        report = dict(follower.promote())
        catalog = self.server.service.catalog
        if catalog is not None:
            # Promotion mints the next fencing epoch: from here on this
            # node's journal entries and write acks outrank the old
            # primary's, and its zombie (if it ever wakes) is rejected.
            try:
                report["epoch"] = catalog.bump_epoch()
            except (CatalogError, OSError) as exc:
                report["epoch_error"] = str(exc)
        self._send_json(200, report)

    def _store(self, catalog_kind: str, store_as: str, store_op, headers: list) -> int:
        """Run one breaker-gated catalog store; returns the response status.

        A stored write stamps ``x-repro-epoch``; a dropped one (breaker
        open) flags ``X-Repro-Store-Dropped``.  With ``ack_level="replica"``
        the call then blocks for a follower's applied confirmation and
        degrades to ``202 + x-repro-ack-pending`` when none arrives in time.
        :class:`StaleEpochError` propagates to ``do_POST``'s 409 handler.
        """
        service = self.server.service
        entry = store_op()
        if entry is None:
            headers.append(("X-Repro-Store-Dropped", "1"))
            headers.extend(self._retry_after())
            return 200
        headers.append(("x-repro-epoch", str(self._epoch())))
        if service.config.ack_level == "replica":
            if not service.await_replica_ack(catalog_kind, store_as, entry):
                headers.append(("x-repro-ack-pending", "1"))
                return 202
        return 200

    def _compose(self, text: str, config: Optional[ComposerConfig], store_as: Optional[str]) -> None:
        service = self.server.service
        kind = detect_kind(text)
        if kind == "problem":
            result = service.compose(problem_from_text(text), config)
            headers = [
                ("X-Repro-Eliminated", str(len(result.eliminated_symbols))),
                ("X-Repro-Residual", str(len(result.remaining_symbols))),
            ]
            status = 200
            if store_as and service.catalog is not None:
                # Routed through the breaker-gated write: a degraded service
                # still answers the composition, it just could not store it.
                status = self._store(
                    "result",
                    store_as,
                    lambda: service.store_result_entry(store_as, result),
                    headers,
                )
            self._send_text(
                status, result_to_text(result, name=store_as or ""), headers=tuple(headers)
            )
        elif kind == "chain":
            chain_result = service.compose_chain(chain_from_text(text), config)
            composed = chain_result.to_mapping_with_residue()
            headers = [
                ("X-Repro-Hops", str(len(chain_result.hops))),
                ("X-Repro-Reused-Hops", str(chain_result.reused_hops)),
                ("X-Repro-Residual", str(len(chain_result.residual_signature))),
            ]
            status = 200
            if store_as and service.catalog is not None:
                status = self._store(
                    "mapping",
                    store_as,
                    lambda: service.store_mapping_entry(store_as, composed),
                    headers,
                )
            self._send_text(
                status, mapping_to_text(composed, name=store_as or ""), headers=tuple(headers)
            )
        else:
            self._send_text(
                400, f"cannot compose a {kind!r} record (expected problem or chain)\n"
            )


class _AccessSink:
    """Append-only JSONL access log with the fault-audit fail-silent contract.

    One record per finished request.  Any OSError silences the sink for
    the rest of the process — the access log is an audit convenience and
    must never turn request serving into an I/O casualty.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = None
        self._failed = False

    def write(self, record: dict) -> None:
        with self._lock:
            if self._failed:
                return
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
            except OSError:
                self._failed = True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


class _ServiceHTTPD(ThreadingHTTPServer):
    """The stdlib server plus the attributes handlers reach through ``self.server``."""

    service: CompositionService
    verbose: bool
    follower: "Optional[ReplicationFollower]" = None
    elector: "Optional[LeaderElector]" = None
    access_sink: Optional[_AccessSink] = None

    @property
    def role(self) -> str:
        """``follower`` while tailing a primary, ``primary`` otherwise.

        A promoted follower flips to ``primary`` — the router's health loop
        observes the flip on its next ``/healthz`` poll and routes writes
        here.
        """
        if self.follower is not None and not self.follower.promoted:
            return "follower"
        return "primary"


class ServiceHTTPServer:
    """Owns a :class:`ThreadingHTTPServer` bound to one composition service.

    With a ``follower``, the server reports the ``follower`` role (until
    promotion), exposes its replication status, and rejects local catalog
    writes — the HTTP face of ``repro serve --follow``.
    """

    def __init__(
        self,
        service: CompositionService,
        host: str = "127.0.0.1",
        port: int = 8075,
        verbose: bool = False,
        follower: "Optional[ReplicationFollower]" = None,
        elector: "Optional[LeaderElector]" = None,
        access_log: Optional[str] = None,
    ):
        self.service = service
        self.follower = follower
        self.elector = elector
        self._closed = False
        self._access_sink = _AccessSink(access_log) if access_log else None
        self._httpd = _ServiceHTTPD((host, port), _Handler)
        self._httpd.daemon_threads = True
        # Handlers reach the service through their ``server`` attribute.
        self._httpd.service = service
        self._httpd.verbose = verbose
        self._httpd.follower = follower
        self._httpd.elector = elector
        self._httpd.access_sink = self._access_sink
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0`` (ephemeral)."""
        return self._httpd.server_address[:2]

    def start(self) -> "ServiceHTTPServer":
        """Serve in a background thread (the service must be started too)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.close()

    def close(self) -> None:
        """Release the listening socket (idempotent; safe after any exit path).

        Without this the port stays held until process exit — an interrupted
        foreground ``serve_forever`` (Ctrl-C) must close the socket before
        the CLI goes on to drain the service.
        """
        if not self._closed:
            self._closed = True
            self._httpd.server_close()
            if self._access_sink is not None:
                self._access_sink.close()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI's ``serve``)."""
        try:
            self._httpd.serve_forever()
        finally:
            self.close()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    service: CompositionService,
    host: str = "127.0.0.1",
    port: int = 8075,
    verbose: bool = False,
    follower: "Optional[ReplicationFollower]" = None,
    elector: "Optional[LeaderElector]" = None,
    access_log: Optional[str] = None,
) -> ServiceHTTPServer:
    """Convenience: build and start a :class:`ServiceHTTPServer`."""
    return ServiceHTTPServer(
        service,
        host=host,
        port=port,
        verbose=verbose,
        follower=follower,
        elector=elector,
        access_log=access_log,
    ).start()
