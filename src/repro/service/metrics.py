"""Thread-safe metrics for the composition service.

One :class:`ServiceMetrics` instance rides on each
:class:`~repro.service.server.CompositionService`; the serving loop feeds it
and :meth:`ServiceMetrics.snapshot` renders everything as one plain dict —
the payload of the HTTP ``/metrics`` endpoint and the CLI's ``metrics``
output.  Collected:

* request counters — submitted, completed, failed, timed out, coalesced into
  an in-flight duplicate, rejected by admission control, blocked waiting for
  queue space, expired past their admission deadline;
* batching — number of micro-batches executed, mean batch size, per-backend
  batch counts;
* latency — cumulative queue-wait and execution seconds (with means);
* composition phases — the per-phase wall-clock buckets of every served
  result (:mod:`repro.compose.phases`), summed; and
* engine stores — expression-cache hits/misses accumulated over batch
  reports, plus a live view of the (possibly persistent) checkpoint store;
* garbage collection — background-sweep counts and what they removed; and
* degradation — batch-execution failures *by exception type* (a blanket
  ``except`` that only bumped one opaque counter hid which failure mode was
  firing), catalog writes dropped by the open circuit breaker or failed
  against the disk, storage health probes, and lease-claim failures; and
* replication — replica acks satisfied vs timed out (``ack_level="replica"``
  writes) and local writes rejected with a stale fencing epoch (a fenced
  zombie ex-primary trying to write past a newer leader).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ServiceMetrics", "DEFAULT_BUCKETS"]

# Prometheus-style cumulative latency buckets (seconds).  Spanning 1ms to
# 30s covers everything from an expression-cache hit to an election under
# a fault schedule; +Inf is implicit in the rendering.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class LatencyHistogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``counts[i]`` tallies observations ``<= bounds[i]``; observations
    past the last bound only land in the implicit +Inf bucket (``count``
    minus the last cumulative count).  Not internally locked — callers
    observe under the owning :class:`ServiceMetrics` lock.
    """

    __slots__ = ("bounds", "_bucket_counts", "count", "total")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self._bucket_counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = max(0.0, value)
        self.count += 1
        self.total += value
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self._bucket_counts):
            self._bucket_counts[index] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per bucket, +Inf excluded."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._bucket_counts):
            running += count
            out.append((bound, running))
        return out

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
            "buckets": {f"{bound:g}": c for bound, c in self.cumulative()},
        }


class ServiceMetrics:
    """Aggregated counters of one service instance (all methods thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.deduplicated = 0
        self.rejected = 0
        self.blocked = 0
        self.deadline_expired = 0
        self.gc_sweeps = 0
        self.gc_checkpoints_removed = 0
        self.gc_results_removed = 0
        self.gc_chains_removed = 0
        self.gc_sweep_failures = 0
        self._gc_sweep_failure_types: Dict[str, int] = {}
        self.batches = 0
        self.batched_items = 0
        self.queue_seconds = 0.0
        self.execution_seconds = 0.0
        self._batch_backends: Dict[str, int] = {}
        self._phase_seconds: Dict[str, float] = {}
        self._cache_hits = 0.0
        self._cache_misses = 0.0
        self.batch_failures = 0
        self.batch_failed_items = 0
        self._batch_failure_types: Dict[str, int] = {}
        self.catalog_writes = 0
        self.catalog_writes_dropped = 0
        self.catalog_write_failures = 0
        self._catalog_write_failure_types: Dict[str, int] = {}
        self.probes = 0
        self.probe_failures = 0
        self.lease_claim_failures = 0
        self.replica_acks_satisfied = 0
        self.replica_acks_timed_out = 0
        self.stale_epoch_rejected = 0
        self.slow_requests = 0
        # Labeled latency histograms; keys double as the Prometheus metric
        # stems (``repro_<key>`` with _bucket/_sum/_count samples).
        self.histograms: Dict[str, LatencyHistogram] = {
            "queue_seconds": LatencyHistogram(),
            "execution_seconds": LatencyHistogram(),
            "journal_fsync_seconds": LatencyHistogram(),
            "shard_lock_seconds": LatencyHistogram(),
            "replication_lag_seconds": LatencyHistogram(),
            "election_seconds": LatencyHistogram(),
        }

    # -- recording -----------------------------------------------------------------

    def record_submitted(self, coalesced: bool = False) -> None:
        with self._lock:
            self.submitted += 1
            if coalesced:
                self.deduplicated += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_blocked(self) -> None:
        """One request entered the blocking-admission wait (counted once)."""
        with self._lock:
            self.blocked += 1

    def record_deadline_expired(self) -> None:
        with self._lock:
            self.deadline_expired += 1

    def record_gc(self, report: dict) -> None:
        """Accumulate one :meth:`MappingCatalog.gc` report (sweep or manual)."""
        with self._lock:
            self.gc_sweeps += 1
            self.gc_checkpoints_removed += report.get("checkpoints", {}).get("removed", 0)
            self.gc_results_removed += report.get("results", {}).get("removed", 0)
            self.gc_chains_removed += report.get("chains", {}).get("removed", 0)

    def record_gc_sweep_failure(self, error_type: str) -> None:
        """One background GC sweep raised (the loop survives; this counts it)."""
        with self._lock:
            self.gc_sweep_failures += 1
            self._gc_sweep_failure_types[error_type] = (
                self._gc_sweep_failure_types.get(error_type, 0) + 1
            )

    def record_batch(self, size: int, backend: str, cache_stats: Optional[dict]) -> None:
        with self._lock:
            self.batches += 1
            self.batched_items += size
            self._batch_backends[backend] = self._batch_backends.get(backend, 0) + 1
            if cache_stats:
                self._cache_hits += cache_stats.get("hits", 0)
                self._cache_misses += cache_stats.get("misses", 0)

    def record_batch_failure(self, error_type: str, items: int) -> None:
        """One whole micro-batch group died in execution, failing ``items`` tickets.

        ``error_type`` is the exception class name — the point of this
        counter is that "batch execution failed" stops being one opaque
        number and becomes a per-failure-mode tally.
        """
        with self._lock:
            self.batch_failures += 1
            self.batch_failed_items += items
            self._batch_failure_types[error_type] = (
                self._batch_failure_types.get(error_type, 0) + 1
            )

    def record_catalog_write(self) -> None:
        with self._lock:
            self.catalog_writes += 1

    def record_catalog_write_dropped(self) -> None:
        """A catalog write was skipped because the circuit breaker is open."""
        with self._lock:
            self.catalog_writes_dropped += 1

    def record_catalog_write_failure(self, error_type: str) -> None:
        with self._lock:
            self.catalog_write_failures += 1
            self._catalog_write_failure_types[error_type] = (
                self._catalog_write_failure_types.get(error_type, 0) + 1
            )

    def record_probe(self, ok: bool) -> None:
        """One storage health probe (breaker recovery) completed."""
        with self._lock:
            self.probes += 1
            if not ok:
                self.probe_failures += 1

    def record_lease_claim_failure(self) -> None:
        """A cross-process lease claim failed; work proceeded unclaimed."""
        with self._lock:
            self.lease_claim_failures += 1

    def record_replica_ack(self, satisfied: bool) -> None:
        """One ``ack_level="replica"`` wait resolved (confirmed or timed out)."""
        with self._lock:
            if satisfied:
                self.replica_acks_satisfied += 1
            else:
                self.replica_acks_timed_out += 1

    def record_stale_epoch_rejected(self) -> None:
        """A local write was refused because this writer's epoch is stale."""
        with self._lock:
            self.stale_epoch_rejected += 1

    def record_slow_request(self) -> None:
        """One request crossed ``slow_trace_seconds`` and had its trace dumped."""
        with self._lock:
            self.slow_requests += 1

    def observe(self, histogram: str, value: float) -> None:
        """Feed one observation into a labeled histogram (unknown names ignored).

        Unknown names are dropped rather than raised: observations arrive
        from span listeners bridging other layers, and a misnamed span
        must not take down the serving loop.
        """
        with self._lock:
            hist = self.histograms.get(histogram)
            if hist is not None:
                hist.observe(value)

    def record_completed(
        self,
        status: str,
        queue_seconds: float,
        execution_seconds: float,
        phase_seconds=(),
    ) -> None:
        """Record one finished request (``status`` is a ``ProblemStatus`` value)."""
        with self._lock:
            if status == "succeeded":
                self.completed += 1
            elif status == "timed_out":
                self.timed_out += 1
            else:
                self.failed += 1
            self.queue_seconds += queue_seconds
            self.execution_seconds += execution_seconds
            self.histograms["queue_seconds"].observe(queue_seconds)
            self.histograms["execution_seconds"].observe(execution_seconds)
            for phase, seconds in phase_seconds:
                self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) + seconds

    # -- reading -------------------------------------------------------------------

    def snapshot(
        self,
        pending: int = 0,
        in_flight: int = 0,
        checkpoint_stats: Optional[dict] = None,
        breaker: Optional[dict] = None,
        leases: Optional[dict] = None,
    ) -> dict:
        """Everything as one JSON-serializable dict."""
        with self._lock:
            finished = self.completed + self.failed + self.timed_out
            cache_total = self._cache_hits + self._cache_misses
            return {
                "requests": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "timed_out": self.timed_out,
                    "deduplicated": self.deduplicated,
                    "rejected": self.rejected,
                    "blocked": self.blocked,
                    "deadline_expired": self.deadline_expired,
                    "pending": pending,
                    "in_flight": in_flight,
                },
                "batching": {
                    "batches": self.batches,
                    "batched_items": self.batched_items,
                    "mean_batch_size": (
                        self.batched_items / self.batches if self.batches else 0.0
                    ),
                    "backends": dict(self._batch_backends),
                },
                "latency": {
                    "queue_seconds_total": self.queue_seconds,
                    "execution_seconds_total": self.execution_seconds,
                    "mean_queue_seconds": (
                        self.queue_seconds / finished if finished else 0.0
                    ),
                    "mean_execution_seconds": (
                        self.execution_seconds / finished if finished else 0.0
                    ),
                },
                "phases": dict(sorted(self._phase_seconds.items())),
                "expression_cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (self._cache_hits / cache_total if cache_total else 0.0),
                },
                "checkpoints": dict(checkpoint_stats) if checkpoint_stats else {},
                "gc": {
                    "sweeps": self.gc_sweeps,
                    "checkpoints_removed": self.gc_checkpoints_removed,
                    "results_removed": self.gc_results_removed,
                    "chains_removed": self.gc_chains_removed,
                    "gc_sweep_failures": self.gc_sweep_failures,
                    "gc_sweep_failure_types": dict(
                        sorted(self._gc_sweep_failure_types.items())
                    ),
                },
                "degradation": {
                    "batch_failures": self.batch_failures,
                    "batch_failed_items": self.batch_failed_items,
                    "batch_failure_types": dict(sorted(self._batch_failure_types.items())),
                    "catalog_writes": self.catalog_writes,
                    "catalog_writes_dropped": self.catalog_writes_dropped,
                    "catalog_write_failures": self.catalog_write_failures,
                    "catalog_write_failure_types": dict(
                        sorted(self._catalog_write_failure_types.items())
                    ),
                    "probes": self.probes,
                    "probe_failures": self.probe_failures,
                    "lease_claim_failures": self.lease_claim_failures,
                },
                "replication": {
                    "replica_acks_satisfied": self.replica_acks_satisfied,
                    "replica_acks_timed_out": self.replica_acks_timed_out,
                    "stale_epoch_rejected": self.stale_epoch_rejected,
                },
                "breaker": dict(breaker) if breaker else {},
                "leases": dict(leases) if leases else {},
                "tracing": {
                    "slow_requests": self.slow_requests,
                },
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self.histograms.items())
                },
            }

    def render_prometheus(
        self,
        pending: int = 0,
        in_flight: int = 0,
        checkpoint_stats: Optional[dict] = None,
        breaker: Optional[dict] = None,
        leases: Optional[dict] = None,
    ) -> str:
        """The Prometheus text exposition format (``/metrics?format=prometheus``).

        Flat counters become ``repro_<section>_<name>``; dict-valued
        tallies become one labeled sample per key; each histogram renders
        the conventional ``_bucket``/``_sum``/``_count`` triple with an
        explicit ``+Inf`` bucket.
        """
        snap = self.snapshot(
            pending=pending,
            in_flight=in_flight,
            checkpoint_stats=checkpoint_stats,
            breaker=breaker,
            leases=leases,
        )
        with self._lock:
            histograms = {
                name: (hist.cumulative(), hist.count, hist.total)
                for name, hist in sorted(self.histograms.items())
            }
        lines: List[str] = []

        def escape(value: str) -> str:
            return value.replace("\\", "\\\\").replace('"', '\\"')

        def emit(section: str, name: str, value) -> None:
            metric = f"repro_{section}_{name}"
            if isinstance(value, bool):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {int(value)}")
            elif isinstance(value, (int, float)):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {value}")
            elif isinstance(value, dict):
                if not value:
                    return
                samples = [
                    (k, v) for k, v in sorted(value.items())
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                ]
                if not samples:
                    return
                lines.append(f"# TYPE {metric} gauge")
                for key, v in samples:
                    lines.append(f'{metric}{{key="{escape(str(key))}"}} {v}')

        for section, content in snap.items():
            if section == "histograms":
                continue
            if isinstance(content, dict):
                for name, value in content.items():
                    emit(section, name, value)
            else:
                emit("service", section, content)

        for name, (cumulative, count, total) in histograms.items():
            metric = f"repro_{name}"
            lines.append(f"# TYPE {metric} histogram")
            for bound, bucket_count in cumulative:
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {bucket_count}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {total}")
            lines.append(f"{metric}_count {count}")

        return "\n".join(lines) + "\n"
