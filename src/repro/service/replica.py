"""Catalog replication: followers that tail a primary's journal and mirror it.

:class:`ReplicationFollower` is the consumer half of the replication protocol
whose producer is :class:`~repro.catalog.journal.CatalogJournal`: it polls a
*source* — the primary's catalog root on a shared/local filesystem
(:class:`LocalJournalSource`) or a running primary's HTTP endpoint
``GET /journal/<shard>?since=<seq>`` (:class:`HTTPJournalSource`) — applies
every new entry into its own catalog through
:meth:`~repro.catalog.MappingCatalog.apply_journal_entry`, and verifies each
applied version's content fingerprint afterwards, so mirrored bytes are
checked to reproduce the content the primary acknowledged.

The follower's replay cursor is its *own* journal: applied entries are
re-journaled with their original per-shard sequence numbers, so a restarted
follower resumes from ``catalog.journal.last_seq(shard)`` without any extra
cursor file, and a *promoted* follower's journal continues the primary's
sequence space seamlessly — the next follower can tail it in turn.

Promotion (:meth:`ReplicationFollower.promote`) runs one final catch-up pass
against the source (best-effort: a dead primary is the normal case), stops
the tailing thread, and leaves the catalog writable as the new primary.

Transient source unavailability is not an error: the follower keeps polling,
counts the failures, and reports reachability through :meth:`status` — a
follower whose primary just died must stay *healthy* (it is the failover
target), merely lagged.

Fault point: ``replica.apply`` fires before each entry is applied.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union
from urllib.error import HTTPError, URLError
from urllib.parse import quote, urlsplit
from urllib.request import urlopen

from repro import faults, obs
from repro.catalog.catalog import MappingCatalog
from repro.catalog.journal import CatalogJournal
from repro.catalog.leases import default_owner_id
from repro.exceptions import CatalogError, JournalError, ReplicationError

__all__ = [
    "JournalSource",
    "LocalJournalSource",
    "HTTPJournalSource",
    "ReplicationFollower",
    "open_source",
]

#: How long the tailing thread sleeps between polls by default.
DEFAULT_POLL_INTERVAL_SECONDS = 0.2


class JournalSource:
    """Where a follower reads a primary's journal entries from."""

    #: Human-readable origin (a path or URL), for status reporting.
    origin: str = ""

    def read_since(self, shard: int, since: int, limit: Optional[int] = None) -> List[dict]:
        raise NotImplementedError

    def last_seqs(self) -> Dict[int, int]:
        raise NotImplementedError


class LocalJournalSource(JournalSource):
    """Tail the journal of a catalog root on the local (or shared) filesystem.

    Strictly read-only: the primary may be alive and appending, so this
    source never heals torn tails — it stops at them and sees the completed
    entry on the next poll.
    """

    def __init__(self, root: Union[str, Path], num_shards: int = 16):
        self.root = Path(root)
        self.origin = str(self.root)
        self._journal = CatalogJournal(self.root / "journal", num_shards=num_shards)
        self.num_shards = num_shards

    def read_since(self, shard: int, since: int, limit: Optional[int] = None) -> List[dict]:
        return self._journal.read_since(shard, since, limit=limit)

    def last_seqs(self) -> Dict[int, int]:
        return self._journal.last_seqs()


class HTTPJournalSource(JournalSource):
    """Tail a running primary over its ``GET /journal/<shard>`` endpoint.

    Each poll piggybacks this follower's identity and applied seq for the
    shard (``&follower=<id>&applied=<seq>``), which is how the primary's
    ``ack_level="replica"`` mode learns that an entry is durably mirrored —
    no extra ack round-trip, the replication pull *is* the ack.
    """

    def __init__(
        self,
        base_url: str,
        num_shards: int = 16,
        timeout_seconds: float = 5.0,
        follower_id: Optional[str] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.origin = self.base_url
        self.num_shards = num_shards
        self.timeout_seconds = timeout_seconds
        self.follower_id = follower_id or default_owner_id()

    def _fetch(
        self, shard: int, since: int, limit: Optional[int], report_applied: bool = False
    ) -> dict:
        url = f"{self.base_url}/journal/{quote(str(shard))}?since={since}"
        if limit is not None:
            url += f"&limit={limit}"
        if report_applied:
            url += f"&follower={quote(self.follower_id)}&applied={since}"
        with urlopen(url, timeout=self.timeout_seconds) as response:
            payload = json.loads(response.read().decode("utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ReplicationError(
                f"journal endpoint {url} answered a malformed payload"
            )
        return payload

    def read_since(self, shard: int, since: int, limit: Optional[int] = None) -> List[dict]:
        return list(self._fetch(shard, since, limit, report_applied=True)["entries"])

    def last_seqs(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for shard in range(self.num_shards):
            payload = self._fetch(shard, since=0, limit=0)
            out[shard] = int(payload.get("last_seq", 0))
        return out


def open_source(target: Union[str, Path], num_shards: int = 16) -> JournalSource:
    """A :class:`JournalSource` for a primary's root directory or base URL."""
    text = str(target)
    scheme = urlsplit(text).scheme
    if scheme in ("http", "https"):
        return HTTPJournalSource(text, num_shards=num_shards)
    if scheme and scheme not in ("file", ""):
        raise ReplicationError(
            f"cannot follow {text!r}: expected a catalog root path or an http(s) URL"
        )
    if scheme == "file":
        text = urlsplit(text).path
    path = Path(text)
    if not path.exists():
        raise ReplicationError(
            f"cannot follow {text!r}: the catalog root does not exist"
        )
    return LocalJournalSource(path, num_shards=num_shards)


class ReplicationFollower:
    """Continuously mirror a primary's journal into one local catalog.

    The follower applies entries shard by shard, oldest first, verifying
    each applied ``put``'s content fingerprint; counters and per-shard lag
    are surfaced through :meth:`status` (wired into the serving process's
    ``/metrics`` and ``/healthz``).
    """

    def __init__(
        self,
        catalog: MappingCatalog,
        source: JournalSource,
        poll_interval_seconds: float = DEFAULT_POLL_INTERVAL_SECONDS,
        batch_limit: int = 256,
        verify: bool = True,
    ):
        if poll_interval_seconds <= 0:
            raise ReplicationError("poll_interval_seconds must be positive")
        if batch_limit < 1:
            raise ReplicationError("batch_limit must be positive")
        self.catalog = catalog
        self.source = source
        self.poll_interval_seconds = poll_interval_seconds
        self.batch_limit = batch_limit
        self.verify = verify
        self.num_shards = getattr(source, "num_shards", 16)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._promoted = False
        # The restart-safe replay cursor: this catalog's own journal already
        # holds every entry applied before (re-journaled with preserved seq).
        self._applied: Dict[int, int] = {
            shard: catalog.journal.last_seq(shard) for shard in range(self.num_shards)
        }
        self.entries_applied = 0
        self.entries_skipped = 0
        self.apply_failures = 0
        self.verify_failures = 0
        self.polls = 0
        self.poll_failures = 0
        self._source_reachable: Optional[bool] = None
        self._last_caught_up_monotonic: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "ReplicationFollower":
        """Start the tailing thread (idempotent); returns ``self``."""
        with self._lock:
            if self._promoted:
                raise ReplicationError("this follower was promoted; it no longer tails")
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._tail_loop, name="repro-replica", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
        with self._lock:
            self._thread = None

    def __enter__(self) -> "ReplicationFollower":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def promoted(self) -> bool:
        return self._promoted

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.catch_up()
            except Exception:  # noqa: BLE001 - a bad poll must not kill the tail
                self.poll_failures += 1
                self._source_reachable = False
            # Full jitter: uniform in (0, interval], so a fleet of followers
            # restarted together spreads out instead of thundering-herding
            # the primary's /journal endpoint on every beat.
            self._stop.wait(self.poll_interval_seconds * (1.0 - random.random()))

    # -- catching up ---------------------------------------------------------------

    def catch_up(self) -> int:
        """One synchronous pass over every shard; returns entries applied.

        Raises nothing on per-entry verification failures (counted instead);
        source-level I/O errors propagate to the caller — the tail loop
        counts them, a promotion treats them as "the primary is gone".
        """
        applied = 0
        self.polls += 1
        for shard in range(self.num_shards):
            while True:
                try:
                    entries = self.source.read_since(
                        shard, self._applied.get(shard, 0), limit=self.batch_limit
                    )
                except (OSError, URLError, HTTPError, JournalError) as exc:
                    self._source_reachable = False
                    raise ReplicationError(
                        f"cannot read journal shard {shard} from "
                        f"{self.source.origin}: {exc}"
                    ) from exc
                self._source_reachable = True
                if not entries:
                    break
                for entry in entries:
                    applied += self._apply(shard, entry)
                if len(entries) < self.batch_limit:
                    break
        self._last_caught_up_monotonic = time.monotonic()
        return applied

    def _apply(self, shard: int, entry: dict) -> int:
        seq = int(entry.get("seq", 0))
        faults.fire("replica.apply", shard=shard, seq=seq, op=entry.get("op"))
        started_wall = time.time()
        started = time.perf_counter()
        status = "ok"
        try:
            outcome = self.catalog.apply_journal_entry(entry)
        except (CatalogError, OSError) as exc:
            self.apply_failures += 1
            status = "error"
            self._record_apply_span(entry, shard, seq, started_wall, started, status)
            raise ReplicationError(
                f"cannot apply journal entry seq {seq} (shard {shard}): {exc}"
            ) from exc
        self._record_apply_span(entry, shard, seq, started_wall, started, status)
        # Whatever the outcome, the entry is now in our journal: advance.
        self._applied[shard] = max(self._applied.get(shard, 0), seq)
        if outcome == "skipped":
            self.entries_skipped += 1
            return 0
        self.entries_applied += 1
        if self.verify and entry.get("op") == "put":
            record = entry.get("record", {})
            if not self.catalog.verify(
                entry["kind"], entry["name"], record.get("version")
            ):
                self.verify_failures += 1
                raise ReplicationError(
                    f"applied {entry['kind']}/{entry['name']} "
                    f"v{record.get('version')} failed fingerprint verification"
                )
        return 1

    @staticmethod
    def _record_apply_span(
        entry: dict,
        shard: int,
        seq: int,
        started_wall: float,
        started: float,
        status: str,
    ) -> None:
        """Join the originating write's trace, if the entry carries one.

        The primary stamped ``entry["trace"]`` at journal-append time; the
        mirrored entry arrives verbatim, so this span is the cross-process
        hop that completes the write's tree — recorded retroactively because
        the apply runs far from the traced request's thread.
        """
        stamp = entry.get("trace")
        if not isinstance(stamp, dict) or not stamp.get("trace_id"):
            return
        parent = obs.SpanContext(
            trace_id=str(stamp["trace_id"]), span_id=str(stamp.get("span_id") or "")
        )
        obs.record_span(
            "replica.apply",
            parent=parent,
            started_at=started_wall,
            duration=time.perf_counter() - started,
            status=status,
            shard=shard,
            seq=seq,
        )

    # -- promotion -----------------------------------------------------------------

    def promote(self) -> dict:
        """Stop following and become the primary; returns a promotion report.

        Runs one last best-effort catch-up pass (a dead source — the normal
        failover trigger — is tolerated), then stops the tail.  The catalog's
        journal already continues the primary's sequence space, so writes
        after promotion journal seamlessly and the next follower can tail
        this root.
        """
        final_error: Optional[str] = None
        try:
            self.catch_up()
        except ReplicationError as exc:
            final_error = str(exc)
        self.stop()
        with self._lock:
            self._promoted = True
        return {
            "promoted": True,
            "final_catch_up_error": final_error,
            "applied_seqs": {
                str(shard): seq for shard, seq in sorted(self._applied.items()) if seq
            },
            "entries_applied": self.entries_applied,
        }

    # -- introspection -------------------------------------------------------------

    def lag(self) -> Optional[int]:
        """Total entries the source holds that we have not applied (``None``
        when the source cannot be reached to ask)."""
        try:
            source_seqs = self.source.last_seqs()
        except (OSError, URLError, HTTPError, JournalError):
            return None
        return sum(
            max(0, int(last) - self._applied.get(shard, 0))
            for shard, last in source_seqs.items()
        )

    def status(self) -> dict:
        """A JSON-serializable snapshot of the follower's replication state."""
        age: Optional[float] = None
        if self._last_caught_up_monotonic is not None:
            age = time.monotonic() - self._last_caught_up_monotonic
        return {
            "role": "primary" if self._promoted else "follower",
            "source": self.source.origin,
            "source_reachable": self._source_reachable,
            "running": self.is_running,
            "promoted": self._promoted,
            "lag_entries": self.lag(),
            "last_catch_up_age_seconds": age,
            "entries_applied": self.entries_applied,
            "entries_skipped": self.entries_skipped,
            "apply_failures": self.apply_failures,
            "verify_failures": self.verify_failures,
            "polls": self.polls,
            "poll_failures": self.poll_failures,
            "applied_seqs": {
                str(shard): seq for shard, seq in sorted(self._applied.items()) if seq
            },
        }

    def __repr__(self) -> str:
        state = "promoted" if self._promoted else ("running" if self.is_running else "stopped")
        return f"<ReplicationFollower of {self.source.origin!r} ({state})>"
