"""A health-routing HTTP front tier over replicated composition services.

``repro route --backend <url> ...`` binds this router in front of one primary
and any number of followers.  It is deliberately small and stdlib-only — the
same "curl is a complete client" contract as the service itself:

* every backend is health-checked on its ``/healthz`` every
  ``health_interval_seconds``; the JSON body's ``role`` field (``primary`` or
  ``follower``; absent means ``primary``, so pre-replication services route
  unchanged) decides what traffic it may receive;
* **reads** (every ``GET``) prefer healthy followers (rotating among them to
  spread load), then the healthy primary, then — rather than failing — any
  backend that still answers, even degraded;
* **writes** (every ``POST``) go only to backends reporting the ``primary``
  role, so a follower never forks the replicated sequence space; among
  several primaries the *highest fencing epoch* wins — after an election a
  resurrected zombie ex-primary may still call itself ``primary``, but the
  freshly promoted backend's higher epoch (learned from the same health
  polls) routes writes away from it;
* **flap damping**: a backend that dropped off the network must answer
  ``min_consecutive_ok`` consecutive healthy polls (default 2) before it
  re-enters rotation, so a flapping backend does not oscillate traffic;
  ``/router/status`` exposes each backend's ``consecutive_ok`` streak and
  last-poll timestamp;
* **retries**: idempotent requests — ``GET``, and ``POST /compose`` (the
  composition is deterministic in its inputs) — are transparently retried on
  the next candidate when a backend drops the connection, so clients of a
  dying primary observe a retry, not an error.  A backend that *answers* is
  authoritative: HTTP error responses (4xx/5xx) are relayed, not retried;
* **failover**: when the primary dies and an operator (or the drill in the
  chaos suite) promotes a follower — ``POST /admin/promote`` directly on the
  follower — the next health check observes the new ``role: primary`` and
  writes flow again.  No router restart, no configuration change.

``GET /router/status`` reports the live backend table.  When no backend can
take a request the router answers ``503`` with a ``Retry-After`` of one
health interval.  Fault point: ``router.backend`` fires before each proxied
attempt (the chaos suite uses it to kill specific attempts).
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro import faults, obs
from repro.exceptions import ServiceError

__all__ = ["BackendState", "RouterHTTPServer", "route"]

_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Headers that must not be forwarded verbatim from a proxied response.
_HOP_HEADERS = {"connection", "keep-alive", "transfer-encoding", "server", "date"}


class BackendState:
    """What the router knows about one backend (mutated by the health loop)."""

    __slots__ = (
        "url",
        "healthy",
        "reachable",
        "role",
        "status",
        "epoch",
        "consecutive_failures",
        "consecutive_ok",
        "last_checked_monotonic",
        "last_poll_at",
        "last_error",
    )

    def __init__(self, url: str):
        self.url = url.rstrip("/")
        self.healthy = False
        self.reachable = False
        self.role = "primary"
        self.status = "unknown"
        self.epoch = 0
        self.consecutive_failures = 0
        self.consecutive_ok = 0
        self.last_checked_monotonic: Optional[float] = None
        self.last_poll_at: Optional[float] = None
        self.last_error: Optional[str] = None

    def snapshot(self) -> dict:
        age = None
        if self.last_checked_monotonic is not None:
            age = time.monotonic() - self.last_checked_monotonic
        return {
            "url": self.url,
            "healthy": self.healthy,
            "reachable": self.reachable,
            "role": self.role,
            "status": self.status,
            "epoch": self.epoch,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_ok": self.consecutive_ok,
            "last_checked_age_seconds": age,
            "last_poll_at": self.last_poll_at,
            "last_error": self.last_error,
        }


class _RouterHandler(BaseHTTPRequestHandler):
    # ``self.server`` is the ThreadingHTTPServer; RouterHTTPServer pins the
    # ``router`` and ``verbose`` attributes onto it before serving starts.

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers:
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._send(status, text.encode("utf-8"), "text/plain; charset=utf-8", headers)

    def _send_json(self, status: int, payload: object,
                   headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self._send(status, body.encode("utf-8"), "application/json", headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") == "/router/status":
            self._send_json(200, self.server.router.status())
            return
        self._proxy("GET", body=None)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_text(400, "malformed Content-Length header\n")
            return
        if length < 0 or length > _MAX_BODY_BYTES:
            self._send_text(400, "request body too large\n")
            return
        body = self.rfile.read(length) if length else b""
        self._proxy("POST", body=body)

    def _proxy(self, method: str, body: Optional[bytes]) -> None:
        router: "RouterHTTPServer" = self.server.router
        # Trace ingress for the tier: a POST arriving without a context is a
        # fresh write — the router starts the trace, and every relay attempt
        # (including retries onto other backends) becomes a child span whose
        # identity rides the outbound x-repro-trace-id/span-id headers.
        incoming = obs.extract_context(self.headers)
        with obs.span(
            "router.request",
            parent=incoming,
            new_trace=(method == "POST"),
            record_start=True,
            method=method,
            path=self.path,
        ):
            try:
                status, payload, headers = router.forward(
                    method,
                    self.path,
                    body,
                    content_type=self.headers.get("Content-Type"),
                )
            except ServiceError as exc:
                self._send_text(
                    503,
                    f"{exc}\n",
                    headers=(("Retry-After", router.retry_after_value()),),
                )
                return
            context = obs.current()
            if context is not None:
                # Overwrite any backend echo: the client correlates with the
                # router's ingress span, the root of the merged tree.
                headers[obs.TRACE_ID_HEADER] = context.trace_id
                headers[obs.SPAN_ID_HEADER] = context.span_id
            self._send(
                status,
                payload,
                headers.pop("content-type", "text/plain; charset=utf-8"),
                tuple(headers.items()),
            )


class RouterHTTPServer:
    """The stdlib front tier: health-checked routing over service backends."""

    def __init__(
        self,
        backends: List[str],
        host: str = "127.0.0.1",
        port: int = 8076,
        health_interval_seconds: float = 0.5,
        health_timeout_seconds: float = 2.0,
        request_timeout_seconds: float = 60.0,
        min_consecutive_ok: int = 2,
        verbose: bool = False,
    ):
        if not backends:
            raise ServiceError("the router needs at least one --backend URL")
        if health_interval_seconds <= 0:
            raise ServiceError("health_interval_seconds must be positive")
        if min_consecutive_ok < 1:
            raise ServiceError("min_consecutive_ok must be positive")
        self.backends = [BackendState(url) for url in backends]
        self.health_interval_seconds = health_interval_seconds
        self.health_timeout_seconds = health_timeout_seconds
        self.request_timeout_seconds = request_timeout_seconds
        self.min_consecutive_ok = min_consecutive_ok
        self._lock = threading.Lock()
        self._rotation = 0
        self._closed = False
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._thread: Optional[threading.Thread] = None
        self.requests_routed = 0
        self.request_retries = 0
        self.requests_failed = 0
        self.failovers = 0
        self.poll_failures = 0
        self._last_write_backend: Optional[str] = None
        self._httpd = ThreadingHTTPServer((host, port), _RouterHandler)
        self._httpd.daemon_threads = True
        self._httpd.router = self  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0`` (ephemeral)."""
        return self._httpd.server_address[:2]

    def retry_after_value(self) -> str:
        return str(max(1, math.ceil(self.health_interval_seconds)))

    # -- health checking -----------------------------------------------------------

    def check_backend(self, backend: BackendState) -> None:
        """One health probe of one backend; updates its state in place."""
        backend.last_checked_monotonic = time.monotonic()
        backend.last_poll_at = time.time()
        try:
            with urlopen(
                f"{backend.url}/healthz", timeout=self.health_timeout_seconds
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
                status_code = response.status
        except HTTPError as exc:
            # A 503 from /healthz is still an *answering* backend: degraded,
            # reachable, last-resort routable for reads.
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {}
            status_code = exc.code
        except (URLError, OSError, ValueError) as exc:
            backend.reachable = False
            backend.healthy = False
            backend.status = "unreachable"
            backend.consecutive_failures += 1
            backend.consecutive_ok = 0
            backend.last_error = str(exc)
            return
        backend.reachable = True
        ok = status_code == 200
        backend.consecutive_ok = backend.consecutive_ok + 1 if ok else 0
        backend.status = str(payload.get("status", "unknown"))
        try:
            backend.epoch = int(payload.get("epoch", backend.epoch) or 0)
        except (TypeError, ValueError):
            pass
        new_role = str(payload.get("role", "primary"))
        if new_role != backend.role and new_role == "primary":
            # A follower reported itself primary: a promotion happened.
            with self._lock:
                self.failovers += 1
        backend.role = new_role
        if ok and backend.consecutive_failures and backend.consecutive_ok < self.min_consecutive_ok:
            # Flap damping: a backend coming back from unreachable must
            # string together min_consecutive_ok healthy polls before it
            # re-enters rotation, so a flapping process does not oscillate
            # traffic.  It stays reachable (last-resort read routable).
            backend.healthy = False
            return
        backend.healthy = ok
        backend.consecutive_failures = 0
        backend.last_error = None

    def check_all(self) -> None:
        for backend in self.backends:
            self.check_backend(backend)

    def _health_loop(self) -> None:
        while not self._health_stop.is_set():
            try:
                self.check_all()
            except Exception:  # noqa: BLE001 - a bad probe must not kill the loop
                # Counted, not just swallowed: a poll loop that keeps blowing
                # up would otherwise leave the backend table silently stale.
                with self._lock:
                    self.poll_failures += 1
            self._health_stop.wait(self.health_interval_seconds)

    # -- candidate selection -------------------------------------------------------

    def _read_candidates(self) -> List[BackendState]:
        healthy_followers = [
            b for b in self.backends if b.healthy and b.role == "follower"
        ]
        healthy_primaries = [
            b for b in self.backends if b.healthy and b.role == "primary"
        ]
        degraded = [b for b in self.backends if b.reachable and not b.healthy]
        with self._lock:
            self._rotation += 1
            rotation = self._rotation
        if healthy_followers:
            # Rotate among followers so reads spread across the fleet.
            offset = rotation % len(healthy_followers)
            healthy_followers = healthy_followers[offset:] + healthy_followers[:offset]
        return healthy_followers + healthy_primaries + degraded

    def _write_candidates(self) -> List[BackendState]:
        primaries = [b for b in self.backends if b.role == "primary"]
        healthy = [b for b in primaries if b.healthy]
        degraded = [b for b in primaries if b.reachable and not b.healthy]
        # The highest fencing epoch is authoritative: after an election the
        # promoted backend outranks a zombie ex-primary that still answers
        # and still calls itself primary.  Stable sort: all-zero epochs (no
        # election ever) keep the configured order.
        healthy.sort(key=lambda b: -b.epoch)
        degraded.sort(key=lambda b: -b.epoch)
        return healthy + degraded

    # -- forwarding ----------------------------------------------------------------

    @staticmethod
    def _idempotent(method: str, path: str) -> bool:
        # GET never mutates; POST /compose is deterministic in its inputs
        # (re-running it on another backend yields the identical answer, and
        # a ?store= re-store dedupes by content fingerprint), so a dropped
        # connection is safely retried.  Other POSTs (e.g. /admin/promote)
        # are not replayed.
        return method == "GET" or path.split("?")[0].rstrip("/") == "/compose"

    def forward(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        content_type: Optional[str] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """Route one request; returns ``(status, body, headers)``.

        Raises :class:`~repro.exceptions.ServiceError` when no backend can
        take it (the handler answers 503 + Retry-After).
        """
        candidates = (
            self._read_candidates() if method == "GET" else self._write_candidates()
        )
        retriable = self._idempotent(method, path)
        last_error: Optional[str] = None
        for attempt, backend in enumerate(candidates):
            # One span per relay attempt: retries share the trace id but get
            # fresh span ids, and each attempt's identity is what rides the
            # outbound headers — so the backend that finally answers parents
            # its ingress span on the exact attempt that reached it.
            with obs.span(
                "router.attempt", backend=backend.url, attempt=attempt
            ) as handle:
                try:
                    faults.fire("router.backend", url=backend.url, path=path)
                    request = Request(backend.url + path, data=body, method=method)
                    if content_type:
                        request.add_header("Content-Type", content_type)
                    if handle.context is not None:
                        for key, value in handle.context.headers().items():
                            request.add_header(key, value)
                    with urlopen(request, timeout=self.request_timeout_seconds) as response:
                        payload = response.read()
                        headers = {
                            key.lower(): value
                            for key, value in response.headers.items()
                            if key.lower() not in _HOP_HEADERS
                        }
                        status = response.status
                except HTTPError as exc:
                    # The backend answered: relay its error verbatim — it is the
                    # authoritative response (a 400 is the client's problem, a
                    # 429/503 carries the backend's own Retry-After).
                    payload = exc.read()
                    headers = {
                        key.lower(): value
                        for key, value in exc.headers.items()
                        if key.lower() not in _HOP_HEADERS
                    }
                    status = exc.code
                except (URLError, OSError) as exc:
                    # The backend is gone mid-request.  Mark it down immediately
                    # (no waiting for the next health tick) and move on.
                    backend.reachable = False
                    backend.healthy = False
                    backend.status = "unreachable"
                    backend.consecutive_failures += 1
                    backend.last_error = last_error = str(exc)
                    handle.set("unreachable", True)
                    if retriable:
                        with self._lock:
                            self.request_retries += 1
                        continue
                    break
            with self._lock:
                self.requests_routed += 1
                if method == "POST":
                    self._last_write_backend = backend.url
            headers["x-repro-backend"] = backend.url
            if attempt:
                headers["x-repro-retries"] = str(attempt)
            return status, payload, headers
        with self._lock:
            self.requests_failed += 1
        detail = f" (last error: {last_error})" if last_error else ""
        raise ServiceError(
            f"no backend can take {method} {path.split('?')[0]} right now{detail}"
        )

    # -- introspection -------------------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            counters = {
                "requests_routed": self.requests_routed,
                "request_retries": self.request_retries,
                "requests_failed": self.requests_failed,
                "failovers_observed": self.failovers,
                "poll_failures": self.poll_failures,
                "last_write_backend": self._last_write_backend,
            }
        return {
            "backends": [backend.snapshot() for backend in self.backends],
            "health_interval_seconds": self.health_interval_seconds,
            **counters,
        }

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "RouterHTTPServer":
        """Serve and health-check in background threads (idempotent)."""
        self.check_all()  # synchronous first pass: routable the moment start() returns
        if self._health_thread is None or not self._health_thread.is_alive():
            self._health_stop.clear()
            self._health_thread = threading.Thread(
                target=self._health_loop, name="repro-router-health", daemon=True
            )
            self._health_thread.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-router", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._health_stop.set()
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._health_thread is not None:
            self._health_thread.join()
            self._health_thread = None
        self.close()

    def close(self) -> None:
        """Release the listening socket (idempotent; safe after any exit path)."""
        if not self._closed:
            self._closed = True
            self._httpd.server_close()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI's ``route``)."""
        self.check_all()
        if self._health_thread is None or not self._health_thread.is_alive():
            self._health_stop.clear()
            self._health_thread = threading.Thread(
                target=self._health_loop, name="repro-router-health", daemon=True
            )
            self._health_thread.start()
        try:
            self._httpd.serve_forever()
        finally:
            self._health_stop.set()
            self.close()

    def __enter__(self) -> "RouterHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def route(
    backends: List[str],
    host: str = "127.0.0.1",
    port: int = 8076,
    health_interval_seconds: float = 0.5,
    verbose: bool = False,
) -> RouterHTTPServer:
    """Convenience: build and start a :class:`RouterHTTPServer`."""
    return RouterHTTPServer(
        backends,
        host=host,
        port=port,
        health_interval_seconds=health_interval_seconds,
        verbose=verbose,
    ).start()
