"""The composition service: a concurrent serving front-end over the engine.

The ROADMAP's north star is a *system*, not a library: many clients submit
composition work concurrently, and the engine's accelerators — the shared
expression cache, hop checkpoints, the cost-guided planner — should work for
all of them at once.  :class:`CompositionService` is that front-end:

* **request queue with admission control** — submissions return a
  :class:`Ticket` immediately; when the queue is at ``max_pending`` work
  items, new requests are rejected with
  :class:`~repro.exceptions.ServiceOverloadedError`
  (``admission="reject"``, the default) or *block until space frees*
  (``admission="block"``), optionally bounded by a per-request deadline
  after which :class:`~repro.exceptions.ServiceDeadlineError` is raised —
  bursty clients wait instead of erroring, with bounded patience;
* **deduplication** — every request is keyed by the content fingerprint of
  its inputs plus its effective :class:`ComposerConfig`; a request whose key
  matches one that is queued *or currently executing* coalesces onto that
  computation and receives the same payload (sound because composition is
  deterministic in exactly those inputs);
* **micro-batching** — the serving loop drains up to ``micro_batch_size``
  requests (waiting ``micro_batch_wait_seconds`` for stragglers), groups them
  by kind and configuration, and executes each group through one
  :class:`~repro.engine.batch.BatchComposer` call (``run`` / ``run_chains`` /
  ``run_partitioned``), so batched requests share one expression cache and
  one checkpoint store per batch;
* **per-request configuration** — a submission may carry its own
  ``ComposerConfig``; configs are part of the dedup key and the grouping, so
  requests only share work when their results would be identical;
* **durability** — given a :class:`~repro.catalog.MappingCatalog`, chain
  requests record hop checkpoints in the catalog's *persistent* store, so a
  restarted service answers warm.  Write-through happens on the ``serial``
  and ``thread`` backends (the default); ``process``-backend workers are
  *seeded* from the disk store at pool startup (so restarts still reuse
  previously persisted prefixes) but hops they record stay worker-local —
  the engine's usual process-isolation trade
  (:attr:`~repro.engine.batch.BatchConfig.share_checkpoints`);
* **tunable write acknowledgements** — ``ServiceConfig(ack_level)`` picks
  what a write ack promises: ``"journal"`` (fsynced into the local WAL) or
  ``"replica"`` (additionally confirmed applied by at least one follower,
  learned from the applied-seq followers piggyback on their journal polls,
  with a bounded wait degrading to an explicit pending ack);
* **bounded disk growth** — with a catalog attached and
  ``gc_interval_seconds`` set, a background sweep runs
  :meth:`~repro.catalog.MappingCatalog.gc` periodically (checkpoint age/LRU
  eviction, old result versions), so a long-lived service does not grow its
  catalog without bound; and
* **metrics** — :meth:`CompositionService.metrics` surfaces queue depths,
  dedup/rejection counters, batch sizes, cache/checkpoint hit rates and the
  summed per-phase timings of everything served
  (:mod:`repro.service.metrics`).

Results are byte-identical to calling :func:`repro.compose.compose` /
:func:`repro.engine.compose_chain` directly — the service only adds
scheduling, never semantics (``tests/service/test_service.py`` asserts this
under concurrent overlapping load).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.algebra.digest import DIGEST_SIZE
from repro.catalog.catalog import MappingCatalog
from repro.catalog.checkpoints import PersistentCheckpointStore
from repro.catalog.leases import Lease, LeaseTable
from repro.catalog.storage import atomic_write_bytes, atomic_write_text
from repro.compose.config import ComposerConfig
from repro.engine.batch import BatchComposer, BatchConfig, BatchItemResult, ProblemStatus
from repro.engine.checkpoint import CheckpointStore
from repro.engine.fingerprint import chain_fingerprint
from repro.exceptions import (
    CatalogError,
    EngineError,
    LeaseUnavailableError,
    ServiceDeadlineError,
    ServiceError,
    ServiceOverloadedError,
    StaleEpochError,
)
from repro import obs
from repro.compose import phases
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.service.breaker import CircuitBreaker
from repro.service.metrics import ServiceMetrics

# Span names whose durations the service mirrors into its labeled latency
# histograms.  The catalog and election layers record the spans without
# knowing about ServiceMetrics; the recorder listener registered in
# ``CompositionService.start()`` is the only coupling point.
_SPAN_HISTOGRAMS = {
    "journal.append": "journal_fsync_seconds",
    "catalog.shard_lock": "shard_lock_seconds",
    "election.transition": "election_seconds",
}

__all__ = ["ServiceConfig", "Ticket", "CompositionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable parameters of a :class:`CompositionService`.

    Attributes
    ----------
    max_pending:
        Admission bound: maximum number of *distinct* work items queued (not
        yet executing).  Coalesced duplicates ride along for free.
    admission:
        What happens to a submission past the bound: ``"reject"`` (the
        default) raises :class:`ServiceOverloadedError` immediately;
        ``"block"`` waits for the queue to drain below ``max_pending``.
    deadline_seconds:
        With ``admission="block"``, how long a submission may wait for queue
        space before :class:`~repro.exceptions.ServiceDeadlineError` is
        raised; ``None`` waits indefinitely.  Each ``submit_*`` call may
        override it per request.
    micro_batch_size:
        Maximum requests drained into one serving batch.
    micro_batch_wait_seconds:
        How long the serving loop waits for stragglers once it holds at least
        one request; ``0`` serves immediately (lowest latency, least
        batching).
    backend / max_workers / timeout_seconds:
        Forwarded to the underlying :class:`~repro.engine.batch.BatchConfig`
        (execution backend of each micro-batch, pool width, soft per-request
        budget).
    composer_config:
        The default :class:`ComposerConfig` for requests that do not carry
        their own override.
    share_expression_cache / cache_max_entries:
        Expression-cache settings of each micro-batch, as in
        :class:`~repro.engine.batch.BatchConfig`.
    gc_interval_seconds:
        With a catalog attached, run :meth:`~repro.catalog.MappingCatalog.gc`
        in a background sweep every this many seconds (``None``, the default,
        disables the sweep).  The remaining ``gc_*`` fields are the sweep's
        policy and mirror the ``gc`` parameters.
    gc_grace_seconds:
        Age floor for every sweep: checkpoints used and result versions
        written within the last ``gc_grace_seconds`` are never evicted.  The
        default (5 seconds) makes the cross-process "sweep races a peer's
        fresh write" window impossible at serving time; pass ``0.0`` to
        restore unconditional eviction (tests, offline compaction).
    breaker_failure_threshold / breaker_recovery_seconds:
        Circuit-breaker policy over catalog disk writes: after this many
        *consecutive* write failures the service stops touching the disk and
        serves memory-only (``/healthz`` reports ``degraded``); a background
        probe re-checks storage every ``breaker_recovery_seconds`` and closes
        the breaker on success.
    lease_ttl_seconds:
        When set (and a catalog is attached), the service claims each
        request-group key in a cross-process
        :class:`~repro.catalog.leases.LeaseTable` under
        ``<catalog root>/leases`` before executing it, so two service
        processes fed the same request do the work once while the claim is
        live.  A lease outlives crashes by at most ``lease_ttl_seconds`` —
        dead owners stop renewing and peers take over.  ``None`` (default)
        disables cross-process claims.
    lease_wait_seconds:
        How long a submission waits for a peer's live claim before doing the
        work itself anyway (the result is deterministic, so a duplicated
        composition is wasted CPU, never a wrong answer).  Defaults to
        ``4 * lease_ttl_seconds``.
    ack_level:
        Durability level of write acknowledgements: ``"journal"`` (the
        default) acks once the entry is fsynced into the local WAL;
        ``"replica"`` additionally holds the ack until at least one follower
        reports the entry's seq applied (followers piggyback their applied
        seq on journal poll requests).  A write whose replica ack does not
        arrive within ``replica_ack_timeout_seconds`` is *degraded*, not
        failed: the HTTP layer answers ``202`` with ``x-repro-ack-pending``.
    replica_ack_timeout_seconds:
        How long an ``ack_level="replica"`` write waits for a follower to
        confirm before falling back to the degraded journal-only ack.
    slow_trace_seconds:
        When set, any HTTP request whose wall-clock crosses this threshold
        has its full span tree dumped to stderr (and counted in
        ``tracing.slow_requests``) — the always-on flight recorder for tail
        latency.  ``None`` (default) disables the hook.
    """

    max_pending: int = 1024
    admission: str = "reject"
    deadline_seconds: Optional[float] = None
    micro_batch_size: int = 16
    micro_batch_wait_seconds: float = 0.002
    backend: str = "auto"
    max_workers: Optional[int] = None
    timeout_seconds: Optional[float] = None
    composer_config: ComposerConfig = field(default_factory=ComposerConfig)
    share_expression_cache: bool = True
    cache_max_entries: int = 200_000
    gc_interval_seconds: Optional[float] = None
    gc_checkpoint_max_files: Optional[int] = None
    gc_checkpoint_max_age_seconds: Optional[float] = None
    gc_result_max_age_seconds: Optional[float] = None
    gc_result_keep_versions: Optional[int] = None
    gc_chain_max_age_seconds: Optional[float] = None
    gc_chain_keep_versions: Optional[int] = None
    gc_journal_max_segments: Optional[int] = None
    gc_journal_max_age_seconds: Optional[float] = None
    gc_grace_seconds: float = 5.0
    breaker_failure_threshold: int = 3
    breaker_recovery_seconds: float = 1.0
    lease_ttl_seconds: Optional[float] = None
    lease_wait_seconds: Optional[float] = None
    ack_level: str = "journal"
    replica_ack_timeout_seconds: float = 2.0
    slow_trace_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise EngineError("max_pending must be positive")
        if self.admission not in ("reject", "block"):
            raise EngineError(
                f"admission must be 'reject' or 'block', not {self.admission!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise EngineError("deadline_seconds must be positive")
        if self.micro_batch_size < 1:
            raise EngineError("micro_batch_size must be positive")
        if self.micro_batch_wait_seconds < 0:
            raise EngineError("micro_batch_wait_seconds must be non-negative")
        if self.gc_interval_seconds is not None and self.gc_interval_seconds <= 0:
            raise EngineError("gc_interval_seconds must be positive")
        if self.gc_checkpoint_max_files is not None and self.gc_checkpoint_max_files < 0:
            raise EngineError("gc_checkpoint_max_files must be non-negative")
        if self.gc_result_keep_versions is not None and self.gc_result_keep_versions < 1:
            raise EngineError("gc_result_keep_versions must be positive")
        if self.gc_chain_keep_versions is not None and self.gc_chain_keep_versions < 1:
            raise EngineError("gc_chain_keep_versions must be positive")
        if self.gc_journal_max_segments is not None and self.gc_journal_max_segments < 1:
            raise EngineError("gc_journal_max_segments must be positive")
        if self.gc_grace_seconds < 0:
            raise EngineError("gc_grace_seconds must be non-negative")
        if self.breaker_failure_threshold < 1:
            raise EngineError("breaker_failure_threshold must be positive")
        if self.breaker_recovery_seconds < 0:
            raise EngineError("breaker_recovery_seconds must be non-negative")
        if self.lease_ttl_seconds is not None and self.lease_ttl_seconds <= 0:
            raise EngineError("lease_ttl_seconds must be positive")
        if self.lease_wait_seconds is not None and self.lease_wait_seconds < 0:
            raise EngineError("lease_wait_seconds must be non-negative")
        if self.ack_level not in ("journal", "replica"):
            raise EngineError(
                f"ack_level must be 'journal' or 'replica', not {self.ack_level!r}"
            )
        if self.replica_ack_timeout_seconds <= 0:
            raise EngineError("replica_ack_timeout_seconds must be positive")
        if self.slow_trace_seconds is not None and self.slow_trace_seconds < 0:
            raise EngineError("slow_trace_seconds must be non-negative")


class Ticket:
    """A claim on one submitted request (a minimal, thread-safe future).

    ``coalesced`` is ``True`` when this submission deduplicated onto an
    already in-flight identical request.  :meth:`result` blocks until the
    serving loop delivers, then returns the payload
    (:class:`~repro.compose.result.CompositionResult` or
    :class:`~repro.engine.chain.ChainResult`) or raises
    :class:`~repro.exceptions.ServiceError`.
    """

    def __init__(self, coalesced: bool = False):
        self._event = threading.Event()
        self._payload: object = None
        self._error: Optional[ServiceError] = None
        self.coalesced = coalesced

    def done(self) -> bool:
        """``True`` once a payload or an error has been delivered."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Block for the payload (raises ``ServiceError`` on failure/timeout)."""
        if not self._event.wait(timeout):
            raise ServiceError(f"no result within {timeout} seconds")
        if self._error is not None:
            raise self._error
        return self._payload

    def _deliver(self, payload: object) -> None:
        self._payload = payload
        self._event.set()

    def _fail(self, error: ServiceError) -> None:
        self._error = error
        self._event.set()


class _WorkItem:
    """One distinct queued computation and every ticket coalesced onto it."""

    __slots__ = ("key", "kind", "payload", "config", "tickets", "enqueued_at", "enqueued_wall", "trace")

    def __init__(self, key: bytes, kind: str, payload: object, config: ComposerConfig):
        self.key = key
        self.kind = kind
        self.payload = payload
        self.config = config
        self.tickets: List[Ticket] = []
        self.enqueued_at = time.perf_counter()
        # The submitting thread's span context (if the request rode in under
        # a trace): the serving loop runs in another thread, so queue-wait
        # and execution spans are recorded retroactively against this parent.
        self.enqueued_wall = time.time()
        self.trace = obs.current()


class CompositionService:
    """A concurrent composition server over one (optional) catalog.

    Parameters
    ----------
    catalog:
        When given, chain requests use the catalog's persistent checkpoint
        store (hop reuse survives restarts) and :meth:`compose_catalog` can
        serve stored problems and chains by name.  Without a catalog the
        service keeps a process-local in-memory checkpoint store.
    config:
        Service tuning; see :class:`ServiceConfig`.
    """

    def __init__(
        self,
        catalog: Optional[MappingCatalog] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self.metrics_store = ServiceMetrics()
        self.checkpoints: CheckpointStore = (
            catalog.checkpoints if catalog is not None else CheckpointStore()
        )
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._space_available = threading.Condition(self._lock)
        self._queue: Deque[_WorkItem] = deque()
        self._in_flight: Dict[bytes, _WorkItem] = {}
        self._composers: Dict[bytes, BatchComposer] = {}
        self._thread: Optional[threading.Thread] = None
        self._gc_thread: Optional[threading.Thread] = None
        self._gc_stop = threading.Event()
        self._stopping = False
        self._last_gc_monotonic: Optional[float] = None
        self._started_monotonic: Optional[float] = None
        self._gc_consecutive_failures = 0
        # Graceful degradation: the breaker gates every catalog disk write;
        # while open the service serves memory-only and /healthz says so.
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_seconds=self.config.breaker_recovery_seconds,
        )
        if isinstance(self.checkpoints, PersistentCheckpointStore):
            self.checkpoints.set_degradation_hooks(
                gate=self.breaker.allow,
                on_failure=self.breaker.record_failure,
                on_success=self.breaker.record_success,
            )
        self._probe_thread: Optional[threading.Thread] = None
        self._probe_stop = threading.Event()
        # Cross-process claims (optional): one lease per request key.
        self.leases: Optional[LeaseTable] = None
        if catalog is not None and self.config.lease_ttl_seconds is not None:
            self.leases = LeaseTable(
                catalog.root / "leases", ttl_seconds=self.config.lease_ttl_seconds
            )
        # Replica acknowledgements: follower-id -> {"applied": {shard: seq}}.
        # Fed by followers piggybacking applied-seq on journal polls; waited
        # on by ack_level="replica" writes, persisted (throttled) next to the
        # journal so GC keeps unmirrored segments.
        self._ack_cond = threading.Condition()
        self._replica_acks: Dict[str, dict] = {}
        self._acks_persisted_monotonic: Optional[float] = None

    # -- telemetry bridge ----------------------------------------------------------

    def _span_listener(self, record: dict) -> None:
        """Mirror catalog/election span durations into labeled histograms.

        Those layers record spans without importing ServiceMetrics; this
        listener (registered on the process recorder while the service
        runs) is the only coupling point.
        """
        histogram = _SPAN_HISTOGRAMS.get(record.get("name"))
        duration = record.get("duration")
        if histogram is not None and duration is not None:
            self.metrics_store.observe(histogram, duration)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "CompositionService":
        """Start the serving loop (idempotent); returns ``self``."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stopping = False
            self._started_monotonic = time.monotonic()
            self._thread = threading.Thread(
                target=self._serve_loop, name="repro-composition-service", daemon=True
            )
            self._thread.start()
            if (
                self.catalog is not None
                and self.config.gc_interval_seconds is not None
                and (self._gc_thread is None or not self._gc_thread.is_alive())
            ):
                self._gc_stop.clear()
                self._gc_thread = threading.Thread(
                    target=self._gc_loop, name="repro-service-gc", daemon=True
                )
                self._gc_thread.start()
            if self.catalog is not None and (
                self._probe_thread is None or not self._probe_thread.is_alive()
            ):
                self._probe_stop.clear()
                self._probe_thread = threading.Thread(
                    target=self._probe_loop, name="repro-service-probe", daemon=True
                )
                self._probe_thread.start()
        if self.leases is not None:
            self.leases.start_heartbeat()
        obs.recorder().add_listener(self._span_listener)
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the serving loop.

        With ``drain`` (the default) everything already queued is served
        first; otherwise queued requests fail with :class:`ServiceError`.
        Submissions blocked in admission are woken and fail with
        :class:`ServiceError` (the service is stopping, space will never
        free for them).
        """
        obs.recorder().remove_listener(self._span_listener)
        self._gc_stop.set()
        self._probe_stop.set()
        with self._lock:
            if not drain:
                while self._queue:
                    item = self._queue.popleft()
                    self._in_flight.pop(item.key, None)
                    for ticket in item.tickets:
                        ticket._fail(ServiceError("service stopped before serving"))
            self._stopping = True
            self._work_available.notify_all()
            self._space_available.notify_all()
            thread = self._thread
            gc_thread = self._gc_thread
            probe_thread = self._probe_thread
        if thread is not None:
            thread.join()
        if gc_thread is not None:
            gc_thread.join()
        if probe_thread is not None:
            probe_thread.join()
        if self.leases is not None:
            self.leases.stop_heartbeat()
            self.leases.release_all()
        with self._lock:
            self._thread = None
            self._gc_thread = None
            self._probe_thread = None

    def __enter__(self) -> "CompositionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def is_running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- submission ----------------------------------------------------------------

    def submit_problem(
        self,
        problem: CompositionProblem,
        config: Optional[ComposerConfig] = None,
        partitioned: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> Ticket:
        """Queue one composition problem; returns with a ticket once admitted.

        ``partitioned`` routes the problem through
        :meth:`~repro.engine.batch.BatchComposer.run_partitioned` (the
        cost-guided planner with intra-problem parallel sub-tasks).
        ``deadline_seconds`` overrides the service-wide admission deadline
        for this request (meaningful with ``admission="block"``).

        Submissions are accepted before :meth:`start` (they queue and are
        served once the loop runs) but refused after :meth:`stop`.
        """
        kind = "partitioned" if partitioned else "problem"
        effective = config or self.config.composer_config
        key = self._request_key(kind, problem.fingerprint(), effective)
        return self._enqueue(key, kind, problem, effective, deadline_seconds)

    def submit_chain(
        self,
        mappings: Sequence[Mapping],
        config: Optional[ComposerConfig] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Ticket:
        """Queue one chained composition; returns with a ticket once admitted."""
        chain = tuple(mappings)
        if not chain:
            raise ServiceError("cannot submit an empty chain")
        effective = config or self.config.composer_config
        key = self._request_key("chain", chain_fingerprint(chain), effective)
        return self._enqueue(key, "chain", chain, effective, deadline_seconds)

    def compose(
        self,
        problem: CompositionProblem,
        config: Optional[ComposerConfig] = None,
        partitioned: bool = False,
        timeout: Optional[float] = None,
    ):
        """Submit one problem and block for its result."""
        return self.submit_problem(problem, config, partitioned).result(timeout)

    def compose_chain(
        self,
        mappings: Sequence[Mapping],
        config: Optional[ComposerConfig] = None,
        timeout: Optional[float] = None,
    ):
        """Submit one chain and block for its result."""
        return self.submit_chain(mappings, config).result(timeout)

    def compose_catalog(
        self,
        kind: str,
        name: str,
        version: Optional[int] = None,
        config: Optional[ComposerConfig] = None,
        timeout: Optional[float] = None,
    ):
        """Serve a stored catalog ``problem`` or ``chain`` by name."""
        if self.catalog is None:
            raise ServiceError("this service has no catalog attached")
        if kind == "problem":
            return self.compose(self.catalog.get_problem(name, version), config, timeout=timeout)
        if kind == "chain":
            return self.compose_chain(self.catalog.get_chain(name, version), config, timeout=timeout)
        raise ServiceError(f"cannot compose catalog kind {kind!r} (expected problem or chain)")

    def _request_key(self, kind: str, content: bytes, config: ComposerConfig) -> bytes:
        h = blake2b(digest_size=DIGEST_SIZE)
        h.update(kind.encode())
        h.update(content)
        h.update(config.fingerprint())
        return h.digest()

    def _enqueue(
        self,
        key: bytes,
        kind: str,
        payload: object,
        config: ComposerConfig,
        deadline_seconds: Optional[float] = None,
    ) -> Ticket:
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.deadline_seconds
        )
        deadline = time.monotonic() + budget if budget is not None else None
        blocked = False
        with self._lock:
            while True:
                # A waiter whose deadline has expired gets ServiceDeadlineError
                # *whatever* woke it — space freeing, a shutdown broadcast, a
                # spurious wakeup.  Checking the deadline before the stop flag
                # makes the deadline-expiry-races-stop() outcome deterministic:
                # once the budget is spent, the answer is "deadline", never
                # sometimes-"stopped".
                remaining = None if deadline is None else deadline - time.monotonic()
                if blocked and remaining is not None and remaining <= 0:
                    self.metrics_store.record_deadline_expired()
                    raise ServiceDeadlineError(
                        f"queue stayed at capacity ({self.config.max_pending} pending) "
                        f"for the whole {budget}-second admission deadline"
                    )
                # Before the first start() submissions simply accumulate in
                # the queue; only a *stopped* service refuses work.
                if self._stopping:
                    raise ServiceError("the service is stopped; call start() first")
                existing = self._in_flight.get(key)
                if existing is not None:
                    # Identical in-flight request (queued or executing): coalesce.
                    ticket = Ticket(coalesced=True)
                    existing.tickets.append(ticket)
                    self.metrics_store.record_submitted(coalesced=True)
                    return ticket
                if len(self._queue) < self.config.max_pending:
                    break
                if self.config.admission == "reject":
                    self.metrics_store.record_rejected()
                    raise ServiceOverloadedError(
                        f"request queue is at capacity ({self.config.max_pending} pending)"
                    )
                if remaining is not None and remaining <= 0:
                    self.metrics_store.record_deadline_expired()
                    raise ServiceDeadlineError(
                        f"queue stayed at capacity ({self.config.max_pending} pending) "
                        f"for the whole {budget}-second admission deadline"
                    )
                if not blocked:
                    blocked = True
                    self.metrics_store.record_blocked()
                self._space_available.wait(remaining)
            item = _WorkItem(key, kind, payload, config)
            ticket = Ticket()
            item.tickets.append(ticket)
            self._in_flight[key] = item
            self._queue.append(item)
            self.metrics_store.record_submitted()
            self._work_available.notify()
            return ticket

    # -- serving loop --------------------------------------------------------------

    def _serve_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if not batch:
                return
            for (kind, _), group in _grouped(batch).items():
                self._execute_group(kind, group)

    def _next_batch(self) -> List[_WorkItem]:
        """Block for work, then drain up to one micro-batch of items."""
        with self._lock:
            while not self._queue and not self._stopping:
                self._work_available.wait()
            if not self._queue:
                return []  # stopping and drained
            batch = [self._queue.popleft()]
            self._space_available.notify()
        # Hold the door briefly for stragglers so bursts batch together.
        deadline = time.perf_counter() + self.config.micro_batch_wait_seconds
        while len(batch) < self.config.micro_batch_size:
            with self._lock:
                if self._queue:
                    batch.append(self._queue.popleft())
                    self._space_available.notify()
                    continue
                if self._stopping:
                    break
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._work_available.wait(remaining)
        return batch

    def _composer_for(self, config: ComposerConfig) -> BatchComposer:
        """One cached :class:`BatchComposer` per composer-config fingerprint.

        Caching keeps the composer's state — above all the shared checkpoint
        store — warm across micro-batches.
        """
        fingerprint = config.fingerprint()
        composer = self._composers.get(fingerprint)
        if composer is None:
            composer = BatchComposer(
                BatchConfig(
                    backend=self.config.backend,
                    max_workers=self.config.max_workers,
                    timeout_seconds=self.config.timeout_seconds,
                    composer_config=config,
                    share_expression_cache=self.config.share_expression_cache,
                    cache_max_entries=self.config.cache_max_entries,
                ),
                checkpoints=self.checkpoints,
            )
            self._composers[fingerprint] = composer
        return composer

    def _execute_group(self, kind: str, group: List[_WorkItem]) -> None:
        claimed = self._claim_leases(group)
        try:
            self._execute_group_claimed(kind, group)
        finally:
            self._release_leases(claimed)

    def _execute_group_claimed(self, kind: str, group: List[_WorkItem]) -> None:
        composer = self._composer_for(group[0].config)
        started = time.perf_counter()
        try:
            if kind == "chain":
                report = composer.run_chains([item.payload for item in group])
            elif kind == "partitioned":
                report = composer.run_partitioned([item.payload for item in group])
            else:
                report = composer.run([item.payload for item in group])
        except Exception as exc:  # noqa: BLE001 - a broken batch must not kill the loop
            elapsed = time.perf_counter() - started
            # The blanket catch used to erase *what* failed; record the
            # exception type so /metrics distinguishes a sick disk from a
            # code bug, and surface it in the error each ticket receives.
            self.metrics_store.record_batch_failure(type(exc).__name__, len(group))
            error = ServiceError(
                f"batch execution failed with {type(exc).__name__}: {exc!r}"
            )
            for item in group:
                self._finish(item, None, error, elapsed / max(len(group), 1))
            return
        self.metrics_store.record_batch(
            size=len(group), backend=report.backend, cache_stats=report.cache_stats
        )
        for item, outcome in zip(group, report.items):
            if outcome.status is ProblemStatus.SUCCEEDED:
                self._finish(item, outcome, None, outcome.elapsed_seconds)
            else:
                self._finish(item, outcome, _item_error(outcome), outcome.elapsed_seconds)

    # -- cross-process claims --------------------------------------------------------

    def _claim_leases(self, group: List[_WorkItem]) -> List[Lease]:
        """Claim every item's request key before executing the group.

        While a claim is live, a peer service process serving the identical
        request waits instead of recomputing — cross-process deduplication
        with crash tolerance (a dead claimant's leases expire and are taken
        over).  Claim failures *degrade*, never block: an unclaimable key
        (live peer past the wait bound, lease-table I/O error) is executed
        unclaimed — composition is deterministic, so the worst case is
        duplicated CPU, and refusing to serve would turn a dedup optimization
        into an availability bug.
        """
        if self.leases is None:
            return []
        wait = (
            self.config.lease_wait_seconds
            if self.config.lease_wait_seconds is not None
            else 4.0 * (self.config.lease_ttl_seconds or 0.0)
        )
        claimed: List[Lease] = []
        for item in group:
            key = item.key.hex()
            try:
                claimed.append(self.leases.wait_acquire(key, timeout=wait))
            except (LeaseUnavailableError, CatalogError, OSError):
                self.metrics_store.record_lease_claim_failure()
        return claimed

    def _release_leases(self, claimed: List[Lease]) -> None:
        if self.leases is None:
            return
        for lease in claimed:
            try:
                self.leases.release(lease.key)
            except (CatalogError, OSError):  # pragma: no cover - best-effort
                pass

    def _finish(
        self,
        item: _WorkItem,
        outcome: Optional[BatchItemResult],
        error: Optional[ServiceError],
        execution_seconds: float,
    ) -> None:
        # Pop from the in-flight table *before* delivering: once tickets are
        # woken, an identical new request must start a fresh computation
        # rather than coalesce onto this finished one.
        with self._lock:
            self._in_flight.pop(item.key, None)
            tickets = list(item.tickets)
        payload = outcome.result if outcome is not None and error is None else None
        status = (
            outcome.status.value
            if outcome is not None
            else ProblemStatus.FAILED.value
        )
        for ticket in tickets:
            if error is None:
                ticket._deliver(payload)
            else:
                ticket._fail(error)
        queue_seconds = max(0.0, time.perf_counter() - item.enqueued_at - execution_seconds)
        self.metrics_store.record_completed(
            status=status,
            queue_seconds=queue_seconds,
            execution_seconds=execution_seconds,
            phase_seconds=_phase_seconds(payload),
        )
        if item.trace is not None:
            # The serving loop is not the submitting thread, so these spans
            # are recorded retroactively against the submitter's context:
            # queue wait, then execution, with the composition's per-phase
            # buckets bridged as children of the execution span.
            obs.record_span(
                "service.queue",
                parent=item.trace,
                started_at=item.enqueued_wall,
                duration=queue_seconds,
                kind=item.kind,
            )
            execute = obs.record_span(
                "service.execute",
                parent=item.trace,
                started_at=item.enqueued_wall + queue_seconds,
                duration=execution_seconds,
                kind=item.kind,
                status_value=status,
            )
            phase_start = item.enqueued_wall + queue_seconds
            for phase, seconds in _phase_seconds(payload):
                obs.record_span(
                    phases.span_name(phase),
                    parent=execute,
                    started_at=phase_start,
                    duration=seconds,
                )

    # -- garbage collection --------------------------------------------------------

    def run_gc(self) -> Optional[dict]:
        """Run one catalog GC pass with the configured policy; returns the report.

        No-op (returns ``None``) without a catalog.  The background sweep
        calls this every ``gc_interval_seconds``; it is also safe to call
        manually at any time — GC only removes rebuildable checkpoints and
        old result versions, never current state.
        """
        if self.catalog is None:
            return None
        report = self.catalog.gc(
            checkpoint_max_files=self.config.gc_checkpoint_max_files,
            checkpoint_max_age_seconds=self.config.gc_checkpoint_max_age_seconds,
            result_max_age_seconds=self.config.gc_result_max_age_seconds,
            result_keep_versions=self.config.gc_result_keep_versions,
            chain_max_age_seconds=self.config.gc_chain_max_age_seconds,
            chain_keep_versions=self.config.gc_chain_keep_versions,
            journal_max_segments=self.config.gc_journal_max_segments,
            journal_max_age_seconds=self.config.gc_journal_max_age_seconds,
            grace_seconds=self.config.gc_grace_seconds,
        )
        self._last_gc_monotonic = time.monotonic()
        self.metrics_store.record_gc(report)
        return report

    def _gc_loop(self) -> None:
        interval = self.config.gc_interval_seconds
        while not self._gc_stop.wait(interval):
            try:
                self.run_gc()
            except Exception as exc:  # noqa: BLE001 - a failed sweep must not kill the loop
                # Counted, not swallowed: /metrics tallies the failures by
                # type and /healthz flags a sweep that keeps failing.
                self.metrics_store.record_gc_sweep_failure(type(exc).__name__)
                self._gc_consecutive_failures += 1
                continue
            self._gc_consecutive_failures = 0

    # -- graceful degradation --------------------------------------------------------

    def store_result(self, name: str, result) -> bool:
        """Store a composition result, gated by the breaker; ``True`` if stored.

        A degraded service (breaker open) *drops* the write — counted in
        ``catalog_writes_dropped`` — and keeps serving; a failed write feeds
        the breaker and is counted by exception type.  The composition result
        the caller holds is unaffected either way.
        """
        if self.catalog is None:
            return False
        return self._catalog_write(lambda: self.catalog.put_result(name, result))

    def store_mapping(self, name: str, mapping) -> bool:
        """Store a composed mapping, gated by the breaker; ``True`` if stored."""
        if self.catalog is None:
            return False
        return self._catalog_write(lambda: self.catalog.put_mapping(name, mapping))

    def store_result_entry(self, name: str, result):
        """Like :meth:`store_result` but returns the :class:`CatalogEntry`.

        ``None`` means the write was dropped (breaker open) or failed; the
        entry's ``journal_seq`` is what an ``ack_level="replica"`` caller
        waits on.  :class:`~repro.exceptions.StaleEpochError` propagates.
        """
        if self.catalog is None:
            return None
        box: list = []
        ok = self._catalog_write(lambda: box.append(self.catalog.put_result(name, result)))
        return box[0] if ok and box else None

    def store_mapping_entry(self, name: str, mapping):
        """Like :meth:`store_mapping` but returns the :class:`CatalogEntry`."""
        if self.catalog is None:
            return None
        box: list = []
        ok = self._catalog_write(lambda: box.append(self.catalog.put_mapping(name, mapping)))
        return box[0] if ok and box else None

    def _catalog_write(self, op) -> bool:
        if not self.breaker.allow():
            self.metrics_store.record_catalog_write_dropped()
            return False
        try:
            op()
        except StaleEpochError:
            # A fencing rejection, not storage sickness: the disk is fine,
            # this *writer* has been outranked.  Propagate (the HTTP layer
            # answers 409) without tripping the breaker into memory-only
            # mode.
            self.metrics_store.record_stale_epoch_rejected()
            raise
        except (CatalogError, OSError) as exc:
            self.breaker.record_failure(exc)
            self.metrics_store.record_catalog_write_failure(type(exc).__name__)
            return False
        self.breaker.record_success()
        self.metrics_store.record_catalog_write()
        return True

    # -- replica acknowledgements ----------------------------------------------------

    def journal_shard(self, kind: str, name: str) -> int:
        """The journal shard a ``kind/name`` write lands in."""
        return MappingCatalog._shard_id(kind, name)

    def record_follower_applied(self, follower_id: str, shard: int, applied: int) -> None:
        """A follower reported it has applied ``shard`` up to seq ``applied``.

        Called by the HTTP layer for every journal poll carrying the
        ``follower``/``applied`` piggyback.  Wakes every write waiting on a
        replica ack and (throttled) persists the floor next to the journal
        for GC's retention rule.
        """
        with self._ack_cond:
            follower = self._replica_acks.setdefault(follower_id, {"applied": {}})
            previous = int(follower["applied"].get(shard, 0))
            if applied > previous:
                follower["applied"][shard] = int(applied)
            follower["updated_at"] = time.time()
            self._ack_cond.notify_all()
        self._persist_replica_acks()

    def replica_applied_seq(self, shard: int) -> int:
        """The highest seq *any* follower has confirmed applied for ``shard``."""
        with self._ack_cond:
            return self._replica_applied_locked(shard)

    def _replica_applied_locked(self, shard: int) -> int:
        best = 0
        for follower in self._replica_acks.values():
            best = max(best, int(follower.get("applied", {}).get(shard, 0)))
        return best

    def await_replica_ack(
        self, kind: str, name: str, entry, timeout: Optional[float] = None
    ) -> bool:
        """Block until a follower confirms ``entry``'s journal seq; ``True`` if acked.

        ``False`` means the ack did not arrive within the budget — the write
        is journal-durable but not yet known mirrored (the HTTP layer's
        ``202 + x-repro-ack-pending`` degraded ack).  Entries that never
        journaled (deduped writes, no catalog) are trivially acked.
        """
        seq = getattr(entry, "journal_seq", None)
        if seq is None:
            return True
        shard = self.journal_shard(kind, name)
        budget = (
            timeout if timeout is not None else self.config.replica_ack_timeout_seconds
        )
        started = time.monotonic()
        deadline = started + budget
        with self._ack_cond:
            while self._replica_applied_locked(shard) < seq:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.metrics_store.record_replica_ack(satisfied=False)
                    self.metrics_store.observe(
                        "replication_lag_seconds", time.monotonic() - started
                    )
                    return False
                self._ack_cond.wait(remaining)
        self.metrics_store.record_replica_ack(satisfied=True)
        self.metrics_store.observe("replication_lag_seconds", time.monotonic() - started)
        return True

    def _persist_replica_acks(self, min_interval_seconds: float = 0.25) -> None:
        """Throttled write of ``replica-acks.json`` next to the journal.

        Only an ``ack_level="replica"`` primary persists: the file's presence
        is what activates :meth:`CatalogJournal.replica_ack_floor`'s GC
        retention rule, and a journal-ack deployment must not pay that floor.
        """
        if self.catalog is None or self.config.ack_level != "replica":
            return
        now = time.monotonic()
        with self._ack_cond:
            last = self._acks_persisted_monotonic
            if last is not None and now - last < min_interval_seconds:
                return
            self._acks_persisted_monotonic = now
            payload = {
                "followers": {
                    follower_id: {
                        "applied": {
                            str(shard): seq
                            for shard, seq in sorted(state.get("applied", {}).items())
                        },
                        "updated_at": state.get("updated_at"),
                    }
                    for follower_id, state in self._replica_acks.items()
                }
            }
        try:
            directory = self.catalog.journal.directory
            directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                directory / "replica-acks.json",
                json.dumps(payload, sort_keys=True) + "\n",
            )
        except (CatalogError, OSError):  # pragma: no cover - best-effort metadata
            pass

    def probe_storage(self) -> bool:
        """Write-and-read a probe file under the catalog root; feeds the breaker.

        This is how an *open* breaker discovers the disk came back: the
        background probe loop calls it every ``breaker_recovery_seconds``
        while the breaker is not closed.  Safe to call manually.
        """
        if self.catalog is None:
            return True
        path = self.catalog.root / ".health-probe"
        try:
            atomic_write_bytes(path, b"ok")
            ok = path.read_bytes() == b"ok"
        except OSError as exc:
            self.breaker.record_failure(exc)
            self.metrics_store.record_probe(ok=False)
            return False
        if ok:
            self.breaker.record_success()
        else:  # pragma: no cover - a torn probe read
            self.breaker.record_failure()
        self.metrics_store.record_probe(ok=ok)
        return ok

    def _probe_loop(self) -> None:
        interval = max(self.config.breaker_recovery_seconds, 0.05)
        while not self._probe_stop.wait(interval):
            if self.breaker.state == "closed":
                continue  # healthy: no need to touch the disk
            try:
                self.probe_storage()
            except Exception:  # noqa: BLE001 - a failed probe must not kill the loop
                continue

    # -- introspection -------------------------------------------------------------

    def health(self) -> dict:
        """The service's real health: ``ok`` or ``degraded``, with reasons.

        Degraded means the service still answers compositions but some
        durability promise is suspended: the storage breaker is open (disk
        writes are being dropped), the serving loop is not running, or the
        configured GC sweep has not completed within two intervals.
        """
        breaker = self.breaker.snapshot()
        reasons = []
        if breaker["state"] != "closed":
            reasons.append(
                f"storage breaker {breaker['state']} "
                f"(last failure: {breaker['last_failure']})"
            )
        if not self.is_running:
            reasons.append("serving loop is not running")
        last_gc_age: Optional[float] = None
        if self._last_gc_monotonic is not None:
            last_gc_age = time.monotonic() - self._last_gc_monotonic
        interval = self.config.gc_interval_seconds
        if interval is not None and self.catalog is not None:
            if last_gc_age is None:
                # No sweep yet: a freshly started service is not overdue —
                # only one that has been running past two intervals is.
                started = self._started_monotonic
                if started is not None and time.monotonic() - started > 2 * interval:
                    reasons.append("gc sweep overdue")
            elif last_gc_age > 2 * interval:
                reasons.append("gc sweep overdue")
        if self._gc_consecutive_failures:
            reasons.append(
                f"gc sweep failing ({self._gc_consecutive_failures} consecutive)"
            )
        lease_stats = self.leases.stats() if self.leases is not None else None
        if lease_stats and lease_stats.get("heartbeat_consecutive_failures"):
            reasons.append(
                "lease heartbeat failing "
                f"({lease_stats['heartbeat_consecutive_failures']} consecutive)"
            )
        snapshot = self.metrics_store
        health: dict = {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "breaker": breaker,
            "gc": {
                "last_sweep_age_seconds": last_gc_age,
                "interval_seconds": interval,
                "sweeps": snapshot.gc_sweeps,
                "sweep_failures": snapshot.gc_sweep_failures,
                "consecutive_failures": self._gc_consecutive_failures,
            },
            "storage": {
                "catalog_writes": snapshot.catalog_writes,
                "catalog_writes_dropped": snapshot.catalog_writes_dropped,
                "catalog_write_failures": snapshot.catalog_write_failures,
                "probes": snapshot.probes,
                "probe_failures": snapshot.probe_failures,
            },
        }
        if lease_stats is not None:
            health["leases"] = lease_stats
        return health

    def metrics(self) -> dict:
        """A JSON-serializable snapshot of everything the service measures."""
        with self._lock:
            pending = len(self._queue)
            in_flight = len(self._in_flight)
        return self.metrics_store.snapshot(
            pending=pending,
            in_flight=in_flight,
            checkpoint_stats=self.checkpoints.stats(),
            breaker=self.breaker.snapshot(),
            leases=self.leases.stats() if self.leases is not None else None,
        )

    def metrics_prometheus(self) -> str:
        """The metrics snapshot in the Prometheus text exposition format."""
        with self._lock:
            pending = len(self._queue)
            in_flight = len(self._in_flight)
        return self.metrics_store.render_prometheus(
            pending=pending,
            in_flight=in_flight,
            checkpoint_stats=self.checkpoints.stats(),
            breaker=self.breaker.snapshot(),
            leases=self.leases.stats() if self.leases is not None else None,
        )

    def __repr__(self) -> str:
        state = "running" if self.is_running else "stopped"
        return f"<CompositionService ({state}): {len(self._queue)} queued>"


def _grouped(batch: Sequence[_WorkItem]) -> Dict[Tuple[str, bytes], List[_WorkItem]]:
    """Group a micro-batch by (kind, composer-config fingerprint), in order."""
    groups: Dict[Tuple[str, bytes], List[_WorkItem]] = {}
    for item in batch:
        groups.setdefault((item.kind, item.config.fingerprint()), []).append(item)
    return groups


def _item_error(outcome: BatchItemResult) -> ServiceError:
    if outcome.status is ProblemStatus.TIMED_OUT:
        return ServiceError(f"request timed out: {outcome.error}")
    return ServiceError(outcome.error or "composition failed")


def _phase_seconds(payload: object):
    """The per-phase buckets of a served payload (chains sum over their hops)."""
    if payload is None:
        return ()
    if hasattr(payload, "phase_seconds") and not hasattr(payload, "hops"):
        return payload.phase_seconds
    if hasattr(payload, "hops"):
        totals: Dict[str, float] = {}
        for hop in payload.hops:
            for phase, seconds in hop.result.phase_seconds:
                totals[phase] = totals.get(phase, 0.0) + seconds
        return tuple(sorted(totals.items()))
    return ()
