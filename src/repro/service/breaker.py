"""A circuit breaker over the catalog's disk: fail fast, probe, recover.

When the storage under the catalog goes bad — a full disk, a dying device, a
hung NFS mount — every composition request would otherwise pay the storage
failure's full latency (retries included) before the service notices the
next one fails identically.  :class:`CircuitBreaker` is the standard cure,
specialized to this service's write paths:

* **closed** (healthy): writes proceed; consecutive failures are counted,
  and ``failure_threshold`` of them in a row open the breaker;
* **open** (storage presumed down): :meth:`allow` answers ``False`` — the
  service skips disk writes and serves memory-only (*degraded* in
  ``/healthz``) instead of queueing requests behind a dead disk;
* **half-open** (probing): after ``recovery_seconds``, exactly one caller is
  let through as a probe; its success closes the breaker, its failure
  re-opens it for another interval.

Only *writes* are gated.  Reads keep their own fallback semantics (a missing
checkpoint is a miss, a failed shard read raises after retries), and gating
them would turn a sick disk into a wrongly-empty catalog.

Thread-safe; transitions use a monotonic clock.  The breaker never throws —
it only answers :meth:`allow` and records outcomes — so wiring it into a
write path cannot introduce a new failure mode.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (successes reset the count) that open the
        breaker.
    recovery_seconds:
        How long the breaker stays open before letting one probe through.
    clock:
        Injectable monotonic time source for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._open_count = 0
        self._last_failure: Optional[str] = None
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a write proceed right now?

        Closed: always.  Open: ``False`` until ``recovery_seconds`` have
        passed, then ``True`` exactly once (the probe) while the breaker
        moves to half-open.  Half-open: ``False`` while the probe is in
        flight — its outcome decides the next state.
        """
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.recovery_seconds:
                    self._state = BREAKER_HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # Half-open: one probe at a time.
            if not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A gated operation succeeded: close the breaker, whatever its state."""
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self, exc: Optional[BaseException] = None) -> None:
        """A gated operation failed: count it, maybe open, re-arm the timer."""
        with self._lock:
            if exc is not None:
                self._last_failure = f"{type(exc).__name__}: {exc}"
            if self._state == BREAKER_CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._trip()
            else:
                # A failed probe (half-open) or a straggler failure while
                # open: (re)start the recovery interval from now.
                self._consecutive_failures += 1
                self._trip()

    def _trip(self) -> None:
        # Caller holds the lock.
        if self._state != BREAKER_OPEN:
            self._open_count += 1
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False

    def force_open(self, reason: str = "forced") -> None:
        """Open the breaker administratively (used by tests and ops tooling)."""
        with self._lock:
            self._last_failure = reason
            self._trip()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            opened_age = (
                self._clock() - self._opened_at if self._opened_at is not None else None
            )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "recovery_seconds": self.recovery_seconds,
                "opened_age_seconds": opened_age,
                "open_count": self._open_count,
                "last_failure": self._last_failure,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<CircuitBreaker {self._state} "
                f"({self._consecutive_failures}/{self.failure_threshold} failures)>"
            )
