"""A disk-backed hop-checkpoint store: chain-prefix reuse that survives restarts.

:class:`~repro.engine.checkpoint.CheckpointStore` makes recomposition after a
schema edit near-linear — but its entries die with the Python process, so a
restarted service pays the full from-scratch cost for chains it has composed
hundreds of times.  :class:`PersistentCheckpointStore` mirrors every recorded
checkpoint to a file named by its content token:

* :meth:`put` writes through — the in-memory table is updated as before, and
  the pickled checkpoint is written atomically to ``<token.hex>.ckpt`` (first
  write wins; tokens are content digests, so a file that exists is already
  correct);
* :meth:`get` reads through — an in-memory miss falls back to disk and, when
  the file exists and validates, installs the loaded checkpoint in memory.

Tokens are deterministic content digests (:mod:`repro.engine.fingerprint`),
so checkpoints written by one process are recognized verbatim by the next —
the same property that lets the batch engine ship checkpoints to process-pool
workers makes them durable here.  The store remains a pure accelerator:
deleting any file (or the whole directory) is always safe, and composition
outputs are byte-identical with the store hot, cold, warm-from-disk or
absent.

The store is a *pure accelerator*, and its failure behaviour follows from
that: a disk write that keeps failing (after the
:class:`~repro.retry.RetryPolicy` gives up on transient errors) is counted
in ``disk_errors`` and **swallowed** — the composition that produced the
checkpoint already succeeded, and failing it over a cache write would invert
the dependency.  :meth:`set_degradation_hooks` lets the service tier wire a
circuit breaker in: a ``gate`` that returns ``False`` skips disk writes
entirely (counted in ``disk_skipped``), and ``on_failure`` / ``on_success``
listeners observe every persist outcome so the breaker can open and close.

Files are pickles and are trusted exactly as far as the catalog directory
is: load checkpoints only from directories you write yourself.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro import faults
from repro.catalog.storage import atomic_write_bytes
from repro.engine.checkpoint import (
    DEFAULT_MAX_CHECKPOINTS,
    ChainCheckpoint,
    CheckpointStore,
)
from repro.retry import RetryPolicy, RetryStats

__all__ = ["PersistentCheckpointStore"]

#: Leading element of every pickled checkpoint file; files whose magic or
#: format version disagree are treated as absent (never an error).
_MAGIC = "repro-checkpoint"
_FORMAT_VERSION = 1

_SUFFIX = ".ckpt"


class PersistentCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` mirrored to a directory of checkpoint files.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).  The catalog places
        this under its root as ``checkpoints/``.
    max_entries:
        Bound on the *in-memory* table, exactly as in the base class; the
        wholesale in-memory eviction never touches the files, so an evicted
        entry is transparently reloaded on its next probe.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: int = DEFAULT_MAX_CHECKPOINTS,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        super().__init__(max_entries=max_entries)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_invalid = 0
        self.disk_errors = 0
        self.disk_skipped = 0
        self._retry = retry_policy or RetryPolicy()
        self.retry_stats = RetryStats()
        self._write_gate: Optional[Callable[[], bool]] = None
        self._on_persist_failure: Optional[Callable[[BaseException], None]] = None
        self._on_persist_success: Optional[Callable[[], None]] = None

    def set_degradation_hooks(
        self,
        gate: Optional[Callable[[], bool]] = None,
        on_failure: Optional[Callable[[BaseException], None]] = None,
        on_success: Optional[Callable[[], None]] = None,
    ) -> None:
        """Wire a circuit breaker (or any health tracker) into disk persists.

        ``gate`` is consulted before every disk write; ``False`` skips the
        write (the in-memory entry is unaffected) and bumps ``disk_skipped``.
        ``on_failure(exc)`` / ``on_success()`` fire after each attempted
        persist, *including* the no-op touch of an already-present file.
        """
        self._write_gate = gate
        self._on_persist_failure = on_failure
        self._on_persist_success = on_success

    # -- persistence hooks ---------------------------------------------------------

    def _path(self, token: bytes) -> Path:
        return self.directory / (token.hex() + _SUFFIX)

    def _load_fallback(self, token: bytes) -> Optional[ChainCheckpoint]:
        path = self._path(token)
        try:
            faults.fire("checkpoint.load", path=str(path))
            data = path.read_bytes()
        except OSError:
            return None
        try:
            magic, version, checkpoint = pickle.loads(data)
        except Exception:  # noqa: BLE001 - a corrupt file is a miss, not a crash
            self._discard_invalid(path)
            return None
        if magic != _MAGIC or version != _FORMAT_VERSION:
            self._discard_invalid(path)
            return None
        if not isinstance(checkpoint, ChainCheckpoint) or checkpoint.token != token:
            self._discard_invalid(path)
            return None
        self.disk_hits += 1
        self._touch(path)
        return checkpoint

    def _discard_invalid(self, path: Path) -> None:
        # A file that exists but does not load would otherwise be permanent:
        # _persist skips existing paths (content-keyed, first write wins), so
        # without this unlink the corrupt file could never be rewritten and
        # its checkpoint would be lost forever.  Removing it turns the next
        # put() into a fresh write.
        self.disk_invalid += 1
        try:
            path.unlink()
        except OSError:
            pass

    @staticmethod
    def _touch(path: Path) -> None:
        # Freshen the mtime so gc()'s LRU ordering sees recently *used*
        # checkpoints as recent, not just recently written ones.
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _persist(self, checkpoint: ChainCheckpoint) -> None:
        if self._write_gate is not None and not self._write_gate():
            self.disk_skipped += 1
            return
        path = self._path(checkpoint.token)
        if path.exists():
            # Content-keyed: an existing file already holds this state (a
            # corrupt file cannot linger here — _load_fallback unlinks it).
            self._touch(path)
            if self._on_persist_success is not None:
                self._on_persist_success()
            return
        payload = pickle.dumps(
            (_MAGIC, _FORMAT_VERSION, checkpoint), protocol=pickle.HIGHEST_PROTOCOL
        )

        def write() -> None:
            faults.fire("checkpoint.persist", path=str(path))
            atomic_write_bytes(path, payload)

        try:
            self._retry.run(
                write,
                stats=self.retry_stats,
                description=f"persist checkpoint {path.name}",
            )
        except (OSError, pickle.PicklingError) as exc:
            # The store is a pure accelerator: the composition this checkpoint
            # came from already succeeded, so a cache write must never fail
            # it.  Count the error, tell the breaker, keep going memory-only.
            self.disk_errors += 1
            if self._on_persist_failure is not None:
                self._on_persist_failure(exc)
            return
        self.disk_writes += 1
        if self._on_persist_success is not None:
            self._on_persist_success()

    # -- disk management -----------------------------------------------------------

    def disk_entries(self) -> int:
        """Number of checkpoint files currently on disk."""
        return sum(1 for _ in self.directory.glob("*" + _SUFFIX))

    def warm(self, limit: Optional[int] = None) -> int:
        """Load up to ``limit`` checkpoints from disk into memory.

        Useful before a batch whose process-pool workers are pre-seeded from
        :meth:`snapshot` (the snapshot only sees in-memory entries).  Stops at
        the in-memory bound; returns the number of checkpoints loaded.
        """
        loaded = 0
        for path in sorted(self.directory.glob("*" + _SUFFIX)):
            if len(self._entries) >= self.max_entries:
                break
            if limit is not None and loaded >= limit:
                break
            try:
                token = bytes.fromhex(path.name[: -len(_SUFFIX)])
            except ValueError:
                continue
            if token in self._entries:
                continue
            checkpoint = self._load_fallback(token)
            if checkpoint is not None:
                self._entries.setdefault(token, checkpoint)
                loaded += 1
        return loaded

    def gc(
        self,
        max_files: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        grace_seconds: float = 0.0,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Bound the on-disk checkpoint footprint by age and/or LRU count.

        ``max_age_seconds`` removes every file whose mtime is older than that
        (mtimes are freshened on every hit, so this is time-since-last-use,
        not time-since-creation); ``max_files`` then keeps only the most
        recently used files up to the bound.  ``grace_seconds`` is an age
        floor over both rules: a file used within the last ``grace_seconds``
        is never deleted, even if that leaves more than ``max_files`` behind —
        it closes the cross-process race where one process sweeps a
        checkpoint another process wrote (and is about to read back)
        milliseconds ago.  Removed tokens are dropped from the in-memory
        table too, so :meth:`stats` stays honest.

        Deleting checkpoints is always safe — the store is a pure
        accelerator, and every *retained* file keeps working: checkpoints are
        independent, content-keyed states, so prefix reuse needs only the
        deepest matching file, not an unbroken set.  With ``dry_run`` nothing
        is deleted; the report counts what would be.

        Returns ``{"examined": ..., "removed": ..., "retained": ...}``.
        """
        if max_files is not None and max_files < 0:
            raise ValueError("max_files must be non-negative")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError("max_age_seconds must be non-negative")
        if grace_seconds < 0:
            raise ValueError("grace_seconds must be non-negative")
        aged = []
        protected = 0
        now = time.time()
        for path in self.directory.glob("*" + _SUFFIX):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # deleted concurrently
            if grace_seconds > 0 and now - mtime < grace_seconds:
                protected += 1
                continue  # inside the grace window: exempt from every rule
            aged.append((mtime, path))
        aged.sort()  # least recently used first
        doomed = []
        if max_age_seconds is not None:
            while aged and now - aged[0][0] > max_age_seconds:
                doomed.append(aged.pop(0)[1])
        if max_files is not None and len(aged) + protected > max_files:
            excess = min(len(aged) + protected - max_files, len(aged))
            doomed.extend(path for _, path in aged[:excess])
            del aged[:excess]
        removed = 0
        if not dry_run:
            for path in doomed:
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
                try:
                    token = bytes.fromhex(path.name[: -len(_SUFFIX)])
                except ValueError:
                    continue
                self._entries.pop(token, None)
        else:
            removed = len(doomed)
        return {
            "examined": len(aged) + len(doomed) + protected,
            "removed": removed,
            "retained": len(aged) + protected,
        }

    def purge(self) -> int:
        """Delete every checkpoint file (and the in-memory table); returns count.

        Always safe — the store is a pure accelerator — but unlike
        :meth:`clear` this removes the durable state too.
        """
        removed = 0
        for path in self.directory.glob("*" + _SUFFIX):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.clear()
        return removed

    def clear(self) -> None:
        """Drop the in-memory table and reset all counters (files are kept)."""
        super().clear()
        self.disk_hits = self.disk_writes = self.disk_invalid = 0
        self.disk_errors = self.disk_skipped = 0

    def stats(self) -> Dict[str, float]:
        stats = super().stats()
        stats.update(
            {
                "disk_hits": self.disk_hits,
                "disk_writes": self.disk_writes,
                "disk_invalid": self.disk_invalid,
                "disk_errors": self.disk_errors,
                "disk_skipped": self.disk_skipped,
                "disk_entries": self.disk_entries(),
                "retries": self.retry_stats.snapshot(),
            }
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"<PersistentCheckpointStore at {str(self.directory)!r}: "
            f"{len(self._entries)} in memory, {self.disk_entries()} on disk>"
        )
