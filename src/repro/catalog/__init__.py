"""The mapping catalog: persistent, versioned storage for the composition engine.

Two pieces form the durability layer under :mod:`repro.service`:

* :mod:`repro.catalog.catalog` — :class:`MappingCatalog`, a disk-backed,
  versioned store of named schemas, mappings, chains, problems and composed
  results, content-addressed by the library's deterministic fingerprints and
  serialized in the extended plain-text format of :mod:`repro.textio.records`;
* :mod:`repro.catalog.checkpoints` — :class:`PersistentCheckpointStore`, the
  on-disk mirror of the hop-checkpoint store, so ``compose_chain`` prefix
  reuse survives process restarts;
* :mod:`repro.catalog.leases` — :class:`LeaseTable`, cross-process work
  claims with heartbeat renewal and stale-lease takeover, so two service
  processes fed the identical request do the work once;
* :mod:`repro.catalog.journal` — :class:`CatalogJournal`, the append-only,
  checksummed per-shard change log every index mutation is written to
  (fsynced, write-ahead) so replicas on other hosts can tail and mirror a
  catalog root.

All writes are atomic and rename-durable, and multi-process writers are
serialized with per-shard file locks (:mod:`repro.catalog.storage` —
:class:`FileLock`, with optional timeouts), so several service processes can
share one catalog root.  Disk reads and writes retry transient errors under
:class:`~repro.retry.RetryPolicy`, and every durability-critical code path
carries :mod:`repro.faults` injection points exercised by the chaos suite.
"""

from repro.catalog.catalog import KINDS, CatalogEntry, MappingCatalog
from repro.catalog.checkpoints import PersistentCheckpointStore
from repro.catalog.journal import CatalogJournal, decode_entry, encode_entry, scan_entries
from repro.catalog.leases import Lease, LeaseTable
from repro.catalog.storage import FileLock, atomic_write_bytes, atomic_write_text

__all__ = [
    "KINDS",
    "CatalogEntry",
    "CatalogJournal",
    "MappingCatalog",
    "FileLock",
    "Lease",
    "LeaseTable",
    "PersistentCheckpointStore",
    "atomic_write_bytes",
    "atomic_write_text",
    "decode_entry",
    "encode_entry",
    "scan_entries",
]
