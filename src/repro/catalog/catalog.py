"""The mapping catalog: a disk-backed, versioned store of named objects.

The paper frames COMPOSE as one operator inside a model-management system
that keeps *many* named schemas and mappings alive over time.  This module
is that memory: a :class:`MappingCatalog` persists schemas, mappings, whole
mapping chains, composition problems and composed results under stable names,
serialized in the extended plain-text format of :mod:`repro.textio.records`
(the paper's own distribution syntax), with

* **content addressing** — every stored version is keyed by its deterministic
  content fingerprint (:mod:`repro.algebra.digest`), so re-registering
  identical content is a no-op that returns the existing version;
* **version history** — registering changed content under an existing name
  appends a new version instead of overwriting (a schema-evolution edit is a
  new catalog version, never a lost one);
* **delta-encoded chains** — a chain version that shares a prefix with the
  previous version is stored as a ``chain-delta`` record (base version +
  replacement suffix), so an n-edit evolution history costs O(n) hops of
  text on disk instead of O(n²); readers always see materialized full
  chains;
* **atomic, durable writes** — record files and the index shards are
  replaced atomically and the rename is made durable with a directory fsync
  (:mod:`repro.catalog.storage`), so a crash never leaves a torn file or
  silently rolls back a committed version;
* **multi-process sharing** — the index is sharded by a hash of
  ``kind/name`` into per-shard JSON files, and every read-modify-write cycle
  holds an ``flock`` on that shard's lock file, so several service
  *processes* appending versions to one catalog root never lose updates;
  readers pick up other processes' writes by re-reading shards whose files
  changed;
* **bounded growth** — :meth:`MappingCatalog.gc` evicts hop checkpoints by
  age/LRU and prunes old result versions (the CLI's ``repro catalog gc``;
  the service can run it as a background sweep); and
* **durable hop checkpoints** — the catalog owns a
  :class:`~repro.catalog.checkpoints.PersistentCheckpointStore` under its
  root, so ``compose_chain`` prefix reuse survives process restarts.

On-disk layout::

    <root>/index/shard-<NN>.json            one index shard (version history per name)
    <root>/index/shard-<NN>.lock            the shard's inter-process lock file
    <root>/objects/<kind>/<name>/v<N>.txt   one record file per stored version
    <root>/checkpoints/<token>.ckpt         pickled hop checkpoints

A legacy single-file ``catalog.json`` index (schema version 1) is migrated
into shards the first time a catalog of this version opens the root.
"""

from __future__ import annotations

import calendar
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults, obs
from repro.algebra.digest import DIGEST_SIZE
from repro.catalog.checkpoints import PersistentCheckpointStore
from repro.catalog.journal import CatalogJournal
from repro.catalog.storage import FileLock, atomic_write_text
from repro.compose.result import CompositionResult
from repro.retry import RetryPolicy, RetryStats
from repro.engine.checkpoint import DEFAULT_MAX_CHECKPOINTS
from repro.engine.fingerprint import chain_fingerprint
from repro.exceptions import CatalogError, JournalError, ParseError, StaleEpochError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature
from repro.textio.format import problem_from_text, problem_to_text
from repro.textio.records import (
    chain_delta_from_text,
    chain_delta_to_text,
    chain_from_text,
    chain_to_text,
    detect_kind,
    mapping_from_text,
    mapping_to_text,
    parse_record,
    result_from_text,
    result_to_text,
    signature_from_text,
    signature_to_text,
)

__all__ = ["CatalogEntry", "MappingCatalog", "KINDS"]

#: The kinds of objects the catalog stores, in display order.
KINDS = ("schema", "mapping", "chain", "problem", "result")

#: Entry names become path components, so they are restricted to a safe set.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

_INDEX_DIR = "index"
_LEGACY_INDEX_FILE = "catalog.json"
_INDEX_SCHEMA_VERSION = 2
_NUM_SHARDS = 16

#: Default bound on waiting for a shard lock held by a live peer; a crashed
#: peer releases instantly (fd-held flock), so only a stalled process can
#: consume this.
DEFAULT_LOCK_TIMEOUT_SECONDS = 30.0

#: A chain version stored as a delta is reconstructed by walking its base
#: references back to a full record; storing a full record every so often
#: bounds that walk (and the blast radius of a damaged base file).
_MAX_DELTA_DEPTH = 64

#: One shard's entries: kind -> name -> [version records].
_ShardEntries = Dict[str, Dict[str, List[dict]]]


@dataclass(frozen=True)
class CatalogEntry:
    """One stored version of one named object."""

    kind: str
    name: str
    version: int
    fingerprint: str
    created_at: str
    path: str  # record file, relative to the catalog root
    #: The journal sequence this put appended (``None`` for deduped puts —
    #: identical content was already journaled — and for plain reads).  The
    #: service's ack-on-replica path waits on exactly this number.  Excluded
    #: from equality: the same stored version compares equal however it was
    #: obtained.
    journal_seq: Optional[int] = field(default=None, compare=False)

    def __repr__(self) -> str:
        return (
            f"<CatalogEntry {self.kind}/{self.name} v{self.version} "
            f"{self.fingerprint[:8]}>"
        )


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _created_at_epoch(record: dict) -> Optional[float]:
    try:
        parsed = time.strptime(record["created_at"], "%Y-%m-%dT%H:%M:%SZ")
    except (KeyError, TypeError, ValueError):
        return None
    return float(calendar.timegm(parsed))


def _result_fingerprint(result: CompositionResult) -> bytes:
    """Structural fingerprint of a composed result.

    Covers the output content — signatures, residual, constraints, per-symbol
    outcome structure and the planner's orders — but *not* the wall-clock
    timings, so recomposing the same inputs dedupes to one stored version
    even though its timings differ run to run.
    """
    h = blake2b(digest_size=DIGEST_SIZE)
    h.update(result.sigma1.fingerprint())
    h.update(result.residual_sigma2.fingerprint())
    h.update(result.sigma3.fingerprint())
    h.update(result.constraints.fingerprint())
    for outcome in result.outcomes:
        h.update(
            repr(
                (outcome.symbol, outcome.success, outcome.method.value, outcome.blowup_aborted)
            ).encode()
        )
    h.update(repr(result.plan).encode())
    return h.digest()


class MappingCatalog:
    """A persistent, versioned store rooted at one directory.

    Safe for concurrent readers and writers both *within* one process
    (threads share an internal lock) and *across* processes sharing the same
    root (writers hold a per-shard file lock around every read-modify-write
    of the index, and version numbers are assigned from the freshly re-read
    shard, so concurrent ``put_*`` calls from separate processes append
    distinct versions instead of overwriting each other).
    """

    def __init__(
        self,
        root: Union[str, Path],
        checkpoint_max_entries: int = DEFAULT_MAX_CHECKPOINTS,
        lock_timeout_seconds: Optional[float] = DEFAULT_LOCK_TIMEOUT_SECONDS,
        retry_policy: Optional[RetryPolicy] = None,
        journal: bool = True,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._lock_timeout = lock_timeout_seconds
        self._retry = retry_policy or RetryPolicy()
        #: Classified retry counters of every disk operation this handle ran;
        #: surfaced through :meth:`stats` and the service's ``/metrics``.
        self.retry_stats = RetryStats()
        self._checkpoint_max_entries = checkpoint_max_entries
        self._checkpoints: Optional[PersistentCheckpointStore] = None
        #: Write-ahead replication journal: every index mutation is journaled
        #: (fsynced) before it is published, so replicas can tail and mirror
        #: this root.  ``journal=False`` disables the writes (the journal can
        #: still be *read* through :attr:`journal`).
        self._journal_enabled = journal
        self._journal: Optional[CatalogJournal] = None
        #: The fencing epoch this handle writes at (lazily adopted from the
        #: persisted ``EPOCH`` marker on first use; raised by promotion and
        #: by applying higher-epoch journal entries).
        self._epoch: Optional[int] = None
        #: Per-shard cache: shard id -> (file stat stamp, entries).  A stale
        #: stamp means another process wrote the shard; it is then re-read.
        self._shards: Dict[int, Tuple[Optional[tuple], _ShardEntries]] = {}
        self._migrate_legacy_index()

    # -- index sharding ------------------------------------------------------------

    @staticmethod
    def _shard_id(kind: str, name: str) -> int:
        digest = blake2b(f"{kind}/{name}".encode(), digest_size=1).digest()
        return digest[0] % _NUM_SHARDS

    def _shard_path(self, shard: int) -> Path:
        return self.root / _INDEX_DIR / f"shard-{shard:02d}.json"

    def _shard_lock_path(self, shard: int) -> Path:
        return self.root / _INDEX_DIR / f"shard-{shard:02d}.lock"

    @staticmethod
    def _stat_stamp(path: Path) -> Optional[tuple]:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _read_shard(self, shard: int) -> Tuple[Optional[tuple], _ShardEntries]:
        path = self._shard_path(shard)
        stamp = self._stat_stamp(path)
        if stamp is None:
            return None, {}

        def read() -> str:
            faults.fire("catalog.shard.read", path=str(path))
            return path.read_text(encoding="utf-8")

        try:
            payload = json.loads(
                self._retry.run(
                    read, stats=self.retry_stats, description=f"read shard {shard}"
                )
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise CatalogError(f"cannot read catalog index shard {path}: {exc}") from exc
        if payload.get("schema_version") != _INDEX_SCHEMA_VERSION:
            raise CatalogError(
                f"catalog index shard {path} has schema version "
                f"{payload.get('schema_version')!r}; this library reads version "
                f"{_INDEX_SCHEMA_VERSION}"
            )
        return stamp, payload.get("entries", {})

    def _write_shard(self, shard: int, entries: _ShardEntries) -> None:
        payload = {
            "schema_version": _INDEX_SCHEMA_VERSION,
            "shard": shard,
            "updated_at": _utc_now(),
            "entries": entries,
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self._retry.run(
            lambda: atomic_write_text(self._shard_path(shard), text),
            stats=self.retry_stats,
            description=f"write shard {shard}",
        )

    def _shard_entries(self, shard: int) -> _ShardEntries:
        """This shard's entries, re-read from disk whenever the file changed."""
        with self._lock:
            stamp = self._stat_stamp(self._shard_path(shard))
            cached = self._shards.get(shard)
            if cached is not None and cached[0] == stamp:
                return cached[1]
            stamp, entries = self._read_shard(shard)
            self._shards[shard] = (stamp, entries)
            return entries

    def _mutate_shard(self, shard: int, mutate: Callable[[_ShardEntries], Tuple[object, bool]]):
        """Run one read-modify-write cycle on a shard under its file lock.

        ``mutate`` receives the freshly re-read entries — never a cached copy,
        so concurrent writers in other processes are always merged in — and
        returns ``(result, changed)``; the shard file is rewritten only when
        ``changed`` is true.

        The shard lock is taken with the catalog's ``lock_timeout_seconds``
        (a live peer stalling past it raises
        :class:`~repro.exceptions.CatalogLockTimeoutError`); transient I/O
        faults during acquisition are retried under the retry policy.
        """
        with self._lock:
            lock = FileLock(self._shard_lock_path(shard), timeout=self._lock_timeout)
            with obs.span("catalog.shard_lock", shard=shard):
                self._retry.run(
                    lock.acquire, stats=self.retry_stats, description=f"lock shard {shard}"
                )
            try:
                stamp, entries = self._read_shard(shard)
                result, changed = mutate(entries)
                if changed:
                    self._write_shard(shard, entries)
                    stamp = self._stat_stamp(self._shard_path(shard))
                self._shards[shard] = (stamp, entries)
                return result
            finally:
                lock.release()

    def _combined_index(self) -> _ShardEntries:
        """Every shard's entries merged into one kind -> name -> versions view."""
        combined: _ShardEntries = {}
        for shard in range(_NUM_SHARDS):
            for kind, by_name in self._shard_entries(shard).items():
                combined.setdefault(kind, {}).update(by_name)
        return combined

    def _migrate_legacy_index(self) -> None:
        """Split a schema-version-1 single-file index into shards (one-shot).

        Serialized across processes by the migration lock; completion is
        marked by renaming the legacy file, so a crashed migration simply
        re-runs (shard writes are idempotent — the legacy file's contents
        are authoritative until the rename).
        """
        legacy = self.root / _LEGACY_INDEX_FILE
        if not legacy.exists():
            return
        with FileLock(self.root / _INDEX_DIR / "migrate.lock", timeout=self._lock_timeout):
            if not legacy.exists():
                return  # another process migrated while we waited
            try:
                payload = json.loads(legacy.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                raise CatalogError(f"cannot read catalog index {legacy}: {exc}") from exc
            if payload.get("schema_version") != 1:
                raise CatalogError(
                    f"catalog index {legacy} has schema version "
                    f"{payload.get('schema_version')!r}; cannot migrate"
                )
            shards: Dict[int, _ShardEntries] = {}
            for kind, by_name in payload.get("entries", {}).items():
                for name, versions in by_name.items():
                    shard = shards.setdefault(self._shard_id(kind, name), {})
                    shard.setdefault(kind, {})[name] = versions
            for shard_id, entries in shards.items():
                # Migrated records are journaled like fresh puts, so a replica
                # tailing this root mirrors the pre-migration history too.
                for kind, by_name in entries.items():
                    for name, versions in by_name.items():
                        for record in versions:
                            try:
                                text = (self.root / record["path"]).read_text(
                                    encoding="utf-8"
                                )
                            except OSError:
                                continue  # a missing object file: index-only entry
                            self._journal_append(
                                shard_id,
                                {
                                    "op": "put",
                                    "kind": kind,
                                    "name": name,
                                    "record": dict(record),
                                    "text": text,
                                },
                            )
                self._write_shard(shard_id, entries)
            legacy.rename(legacy.with_name(_LEGACY_INDEX_FILE + ".migrated"))

    # -- replication journal -------------------------------------------------------

    @property
    def journal(self) -> CatalogJournal:
        """The catalog's replication journal (created lazily)."""
        with self._lock:
            if self._journal is None:
                self._journal = CatalogJournal(
                    self.root / "journal", num_shards=_NUM_SHARDS
                )
            return self._journal

    def _journal_append(
        self, shard: int, payload: dict, seq: Optional[int] = None
    ) -> Optional[int]:
        """Journal one mutation (write-ahead: before the index publish).

        Called from inside :meth:`_mutate_shard`'s locked cycle, so sequence
        assignment is serialized across processes.  Retried under the retry
        policy: a torn first attempt leaves a torn tail that the retry's
        rescan heals before appending cleanly.  Returns the appended sequence
        number (``None`` with journaling disabled).

        A *local* write (``seq=None``) is fenced: if this root carries a
        higher-epoch ``FENCED`` tombstone or the persisted epoch has outrun
        this handle's, :class:`~repro.exceptions.StaleEpochError` is raised
        before anything lands — the write-ahead order then guarantees the
        index is never published either.  Mirrored appends (``seq`` given)
        are exempt, so a fenced root can still be re-seeded as a follower.
        """
        if not self._journal_enabled:
            return None
        if seq is None:
            payload = self._fence_check_and_stamp(payload)
            context = obs.current()
            if context is not None and "trace" not in payload:
                # Stamp the request's trace identity into the entry (same
                # copy-then-add pattern as the epoch stamp): mirrored appends
                # replay the dict verbatim, so a follower's apply can join
                # the originating write's trace across the process boundary.
                payload = dict(payload)
                payload["trace"] = {
                    "trace_id": context.trace_id,
                    "span_id": context.span_id,
                }
        return self._retry.run(
            lambda: self.journal.append(shard, payload, seq=seq),
            stats=self.retry_stats,
            description=f"journal append shard {shard}",
        )

    def _fence_check_and_stamp(self, payload: dict) -> dict:
        """Refuse a stale-epoch local write; stamp the adopted epoch otherwise."""
        journal = self.journal
        epoch = self.epoch
        fenced = journal.fenced_epoch()
        if fenced is not None and fenced > epoch:
            raise StaleEpochError(
                f"catalog root {self.root} is fenced at epoch {fenced}; this "
                f"writer's epoch {epoch} is stale — a replica was promoted "
                "past it"
            )
        persisted = journal.read_epoch()
        if persisted > epoch:
            raise StaleEpochError(
                f"catalog root {self.root} is at epoch {persisted}; this "
                f"writer adopted epoch {epoch} and must not write anymore"
            )
        if epoch > 0:
            payload = dict(payload)
            payload["epoch"] = epoch
        return payload

    @property
    def epoch(self) -> int:
        """The fencing epoch this handle writes at (0 = never promoted)."""
        with self._lock:
            if self._epoch is None:
                self._epoch = self.journal.read_epoch()
            return self._epoch

    def adopt_epoch(self) -> int:
        """Re-read the persisted epoch and raise this handle's to match."""
        with self._lock:
            persisted = self.journal.read_epoch()
            if self._epoch is None or persisted > self._epoch:
                self._epoch = persisted
            return self._epoch

    def bump_epoch(self) -> int:
        """Mint the next fencing epoch (persisted, then adopted); returns it.

        The promotion path: the new primary calls this once, after which its
        journal entries and write acks carry the new epoch and every stale
        writer sharing (or fenced on) a root is rejected.
        """
        epoch = self.journal.bump_epoch()
        with self._lock:
            if self._epoch is None or epoch > self._epoch:
                self._epoch = epoch
        return epoch

    def _note_epoch(self, epoch: int) -> None:
        """Adopt a higher epoch observed in a replicated journal entry.

        Raises the handle's epoch immediately (authoritative: the entry came
        from a promoted primary) and persists it best-effort, so a later
        promotion of *this* root mints a strictly higher epoch even across
        restarts.
        """
        if epoch <= 0:
            return
        with self._lock:
            if self._epoch is None:
                self._epoch = self.journal.read_epoch()
            if epoch > self._epoch:
                self._epoch = epoch
        if epoch > self.journal.read_epoch():
            try:
                self.journal.write_epoch(epoch)
            except (OSError, JournalError):
                pass  # persistence is best-effort; the handle's epoch rose

    # -- checkpoints ---------------------------------------------------------------

    @property
    def checkpoints(self) -> PersistentCheckpointStore:
        """The catalog's durable hop-checkpoint store (created lazily)."""
        with self._lock:
            if self._checkpoints is None:
                self._checkpoints = PersistentCheckpointStore(
                    self.root / "checkpoints",
                    max_entries=self._checkpoint_max_entries,
                )
            return self._checkpoints

    # -- generic storage -----------------------------------------------------------

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in KINDS:
            raise CatalogError(f"unknown catalog kind {kind!r}; expected one of {KINDS}")

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name or ""):
            raise CatalogError(
                f"invalid entry name {name!r}: names must be 1-128 characters "
                "from [A-Za-z0-9._-] and start with a letter or digit"
            )

    def _entry_from_record(
        self, kind: str, name: str, record: dict, journal_seq: Optional[int] = None
    ) -> CatalogEntry:
        return CatalogEntry(
            kind=kind,
            name=name,
            version=record["version"],
            fingerprint=record["fingerprint"],
            created_at=record["created_at"],
            path=record["path"],
            journal_seq=journal_seq,
        )

    def _put(
        self,
        kind: str,
        name: str,
        fingerprint: bytes,
        make_text: Callable[[List[dict]], Tuple[str, dict]],
    ) -> CatalogEntry:
        """Append one version under the shard lock.

        ``make_text`` runs inside the locked read-modify-write cycle and sees
        the freshly merged version history, so it may serialize against the
        *actual* previous version (delta chains depend on this); it returns
        the record text plus extra bookkeeping fields for the index record.
        """
        self._check_kind(kind)
        self._check_name(name)
        digest = fingerprint.hex()
        shard = self._shard_id(kind, name)

        def mutate(entries: _ShardEntries) -> Tuple[CatalogEntry, bool]:
            versions = entries.setdefault(kind, {}).setdefault(name, [])
            if versions and versions[-1]["fingerprint"] == digest:
                # Content-addressed dedupe: identical content is the same version.
                return self._entry_from_record(kind, name, versions[-1]), False
            version = versions[-1]["version"] + 1 if versions else 1
            relative = f"objects/{kind}/{name}/v{version}.txt"
            text, extra = make_text(versions)
            self._retry.run(
                lambda: atomic_write_text(self.root / relative, text),
                stats=self.retry_stats,
                description=f"write {relative}",
            )
            record = {
                "version": version,
                "fingerprint": digest,
                "created_at": _utc_now(),
                "path": relative,
            }
            record.update(extra)
            # Write-ahead order: object file, then the fsynced journal entry,
            # then the index publish (after this mutate returns).  A crash
            # between journal and publish leaves an unacknowledged extra
            # journal entry — harmless, replay is fingerprint-idempotent —
            # and never an acknowledged version missing from the journal.
            seq = self._journal_append(
                shard,
                {
                    "op": "put",
                    "kind": kind,
                    "name": name,
                    "record": dict(record),
                    "text": text,
                },
            )
            versions.append(record)
            return self._entry_from_record(kind, name, record, journal_seq=seq), True

        return self._mutate_shard(shard, mutate)

    def _put_text(self, kind: str, name: str, text: str, fingerprint: bytes) -> CatalogEntry:
        return self._put(kind, name, fingerprint, lambda versions: (text, {}))

    def _versions(self, kind: str, name: str) -> List[dict]:
        self._check_kind(kind)
        entries = self._shard_entries(self._shard_id(kind, name))
        versions = entries.get(kind, {}).get(name)
        if not versions:
            raise CatalogError(f"no {kind} named {name!r} in the catalog")
        return versions

    def _record(self, kind: str, name: str, version: Optional[int]) -> dict:
        versions = self._versions(kind, name)
        if version is None:
            return versions[-1]
        for record in versions:
            if record["version"] == version:
                return record
        raise CatalogError(
            f"{kind} {name!r} has no version {version} "
            f"(available: 1..{versions[-1]['version']})"
        )

    def _read_object(self, record: dict) -> str:
        path = self.root / record["path"]
        try:
            return path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CatalogError(f"catalog file {path} is missing or unreadable: {exc}") from exc

    # -- writing -------------------------------------------------------------------

    def put_schema(self, name: str, signature: Signature, description: str = "") -> CatalogEntry:
        """Store a named schema; identical content returns the existing version."""
        text = signature_to_text(signature, name=name, description=description)
        return self._put_text("schema", name, text, signature.fingerprint())

    def put_mapping(self, name: str, mapping: Mapping, description: str = "") -> CatalogEntry:
        """Store a named mapping (a schema-evolution edit appends a new version)."""
        text = mapping_to_text(mapping, name=name, description=description)
        return self._put_text("mapping", name, text, mapping.fingerprint())

    def put_chain(
        self, name: str, mappings: Sequence[Mapping], description: str = ""
    ) -> CatalogEntry:
        """Store a whole mapping chain under one name.

        A version that shares a prefix with the previous stored version is
        written as a ``chain-delta`` record — the base version's number and
        fingerprint plus only the replacement suffix — so an n-edit history
        costs O(n) hops of text on disk.  Readers always get materialized
        full chains (:meth:`get_chain`, :meth:`text`); the delta layout is
        visible only through :meth:`raw_text`.
        """
        chain = tuple(mappings)
        fingerprint = chain_fingerprint(chain)

        def make_text(versions: List[dict]) -> Tuple[str, dict]:
            full = chain_to_text(chain, name=name, description=description)
            if not versions:
                return full, {}
            latest = versions[-1]
            depth = latest.get("delta_depth", 0)
            if depth >= _MAX_DELTA_DEPTH:
                return full, {}
            try:
                base = self._chain_from_record(name, versions, latest)
            except (CatalogError, ParseError):
                # An unreadable base must never poison new versions.
                return full, {}
            shared = 0
            limit = min(len(base), len(chain) - 1)  # a delta needs >= 1 suffix hop
            while shared < limit and base[shared].fingerprint() == chain[shared].fingerprint():
                shared += 1
            if shared < 1:
                return full, {}
            delta = chain_delta_to_text(
                chain[shared:],
                base_version=latest["version"],
                base_fingerprint=latest["fingerprint"],
                prefix_hops=shared,
                name=name,
                description=description,
            )
            return delta, {"delta_base": latest["version"], "delta_depth": depth + 1}

        return self._put("chain", name, fingerprint, make_text)

    def put_problem(self, name: str, problem: CompositionProblem) -> CatalogEntry:
        """Store a composition problem (the paper's task-distribution format)."""
        text = "# kind: problem\n" + problem_to_text(problem)
        return self._put_text("problem", name, text, problem.fingerprint())

    def put_result(
        self, name: str, result: CompositionResult, description: str = ""
    ) -> CatalogEntry:
        """Store a composed result (plan and phase timings included)."""
        text = result_to_text(result, name=name, description=description)
        return self._put_text("result", name, text, _result_fingerprint(result))

    def add_text(
        self, text: str, name: Optional[str] = None, kind: Optional[str] = None
    ) -> CatalogEntry:
        """Ingest a raw record text (the CLI's ``catalog add``).

        The kind is detected from the ``# kind:`` metadata (kind-less texts in
        the original problem format are accepted as problems); the record is
        parsed back into its object — rejecting malformed input before
        anything touches disk — and stored under ``name`` (defaulting to the
        record's ``# name:`` metadata).
        """
        detected = kind or detect_kind(text)
        self._check_kind(detected)
        try:
            if detected == "schema":
                obj = signature_from_text(text)
                record_name = name or _record_name(text)
                return self.put_schema(record_name, obj, description=_record_description(text))
            if detected == "mapping":
                obj = mapping_from_text(text)
                record_name = name or _record_name(text)
                return self.put_mapping(record_name, obj, description=_record_description(text))
            if detected == "chain":
                obj = chain_from_text(text)
                record_name = name or _record_name(text)
                return self.put_chain(record_name, obj, description=_record_description(text))
            if detected == "result":
                obj = result_from_text(text)
                record_name = name or _record_name(text)
                return self.put_result(record_name, obj, description=_record_description(text))
            problem = problem_from_text(text)
            return self.put_problem(name or problem.name, problem)
        except ParseError as exc:
            raise CatalogError(f"cannot ingest {detected} record: {exc}") from exc

    # -- reading -------------------------------------------------------------------

    def raw_text(self, kind: str, name: str, version: Optional[int] = None) -> str:
        """The stored on-disk record text of one version (latest by default).

        Unlike :meth:`text` this does *not* materialize ``chain-delta``
        records into full chains.
        """
        return self._read_object(self._record(kind, name, version))

    def text(self, kind: str, name: str, version: Optional[int] = None) -> str:
        """The record text of one version (latest by default), materialized.

        Chain versions stored as deltas are reconstructed into full ``chain``
        records, so callers (the CLI's ``catalog show``, the HTTP catalog
        endpoint) always see self-contained, re-ingestable texts.
        """
        record = self._record(kind, name, version)
        raw = self._read_object(record)
        if kind == "chain":
            try:
                stored_kind = detect_kind(raw)
            except ParseError:
                return raw
            if stored_kind == "chain-delta":
                parsed = parse_record(raw)
                chain = self._chain_from_record(name, self._versions(kind, name), record)
                return chain_to_text(
                    chain, name=parsed.name or name, description=parsed.description
                )
        return raw

    def _chain_from_record(
        self, name: str, versions: List[dict], record: dict
    ) -> Tuple[Mapping, ...]:
        """Materialize one stored chain version, resolving delta references.

        Walks base references back to a full ``chain`` record (iteratively —
        histories are long), then replays the deltas forward:
        ``base[:prefix_hops] + suffix`` per step.
        """
        deltas = []
        seen = set()
        current = record
        while True:
            if current["version"] in seen:
                raise CatalogError(
                    f"chain {name!r} has a cyclic delta reference at version "
                    f"{current['version']}"
                )
            seen.add(current["version"])
            text = self._read_object(current)
            try:
                stored_kind = detect_kind(text)
            except ParseError as exc:
                raise CatalogError(
                    f"chain {name!r} v{current['version']} is unreadable: {exc}"
                ) from exc
            if stored_kind == "chain":
                chain = chain_from_text(text)
                break
            if stored_kind != "chain-delta":
                raise CatalogError(
                    f"chain {name!r} v{current['version']} holds a {stored_kind!r} record"
                )
            delta = chain_delta_from_text(text)
            base = next(
                (rec for rec in versions if rec["version"] == delta.base_version), None
            )
            if base is None:
                raise CatalogError(
                    f"chain {name!r} v{current['version']} references missing base "
                    f"version {delta.base_version}"
                )
            if base["fingerprint"] != delta.base_fingerprint:
                raise CatalogError(
                    f"chain {name!r} v{current['version']} references base version "
                    f"{delta.base_version} whose fingerprint does not match"
                )
            deltas.append(delta)
            current = base
        for delta in reversed(deltas):
            if delta.prefix_hops > len(chain):
                raise CatalogError(
                    f"chain {name!r} delta expects a base of at least "
                    f"{delta.prefix_hops} hops, found {len(chain)}"
                )
            chain = chain[: delta.prefix_hops] + delta.suffix
        return chain

    def get_schema(self, name: str, version: Optional[int] = None) -> Signature:
        return signature_from_text(self.text("schema", name, version))

    def get_mapping(self, name: str, version: Optional[int] = None) -> Mapping:
        return mapping_from_text(self.text("mapping", name, version))

    def get_chain(self, name: str, version: Optional[int] = None) -> Tuple[Mapping, ...]:
        return self._chain_from_record(
            name, self._versions("chain", name), self._record("chain", name, version)
        )

    def get_problem(self, name: str, version: Optional[int] = None) -> CompositionProblem:
        return problem_from_text(self.text("problem", name, version))

    def get_result(self, name: str, version: Optional[int] = None) -> CompositionResult:
        return result_from_text(self.text("result", name, version))

    # -- garbage collection --------------------------------------------------------

    def gc(
        self,
        checkpoint_max_files: Optional[int] = None,
        checkpoint_max_age_seconds: Optional[float] = None,
        result_max_age_seconds: Optional[float] = None,
        result_keep_versions: Optional[int] = None,
        chain_max_age_seconds: Optional[float] = None,
        chain_keep_versions: Optional[int] = None,
        journal_max_segments: Optional[int] = None,
        journal_max_age_seconds: Optional[float] = None,
        grace_seconds: float = 0.0,
        dry_run: bool = False,
    ) -> dict:
        """Bound the catalog's disk growth (checkpoints, history, journal).

        * ``checkpoint_max_files`` / ``checkpoint_max_age_seconds`` evict hop
          checkpoints least-recently-used first (mtimes are freshened on
          every hit) and by age; retained checkpoints keep working — prefix
          reuse needs only the deepest matching file.
        * ``result_max_age_seconds`` / ``result_keep_versions`` prune stored
          *result* versions: the newest ``result_keep_versions`` versions of
          each name are always retained (default 1 — the latest version is
          never pruned), and with an age bound only older versions beyond
          that are removed.
        * ``chain_max_age_seconds`` / ``chain_keep_versions`` prune stored
          *chain* versions the same way, with one extra guard: a version that
          any retained version still references — directly or transitively —
          through its ``delta_base`` is never evicted, whatever the age and
          keep policies say, so every surviving delta remains materializable.
          Schemas, mappings and problems are never pruned — they are the
          modeled history.
        * ``journal_max_segments`` / ``journal_max_age_seconds`` drop old
          replication-journal segments per shard (the active tail always
          survives); a follower older than the retention window must re-seed.

        Parameters left at ``None`` disable that policy.  ``grace_seconds``
        is the multi-process age floor: checkpoints used and versions created
        within the last ``grace_seconds`` are never evicted, no matter what
        the other policies say — so a sweep in one process cannot race a
        peer that wrote (and is about to reuse) an entry microseconds ago.
        ``dry_run`` reports what would be removed without touching disk.
        Safe to run concurrently with other processes: index pruning happens
        under the shard locks (record files are unlinked after the index no
        longer references them), and every eviction is journaled so replicas
        mirror the pruning too.
        """
        if result_keep_versions is not None and result_keep_versions < 1:
            raise CatalogError("result_keep_versions must be positive")
        if chain_keep_versions is not None and chain_keep_versions < 1:
            raise CatalogError("chain_keep_versions must be positive")
        if grace_seconds < 0:
            raise CatalogError("grace_seconds must be non-negative")
        report: dict = {"dry_run": dry_run, "grace_seconds": grace_seconds}
        if checkpoint_max_files is not None or checkpoint_max_age_seconds is not None:
            report["checkpoints"] = self.checkpoints.gc(
                max_files=checkpoint_max_files,
                max_age_seconds=checkpoint_max_age_seconds,
                grace_seconds=grace_seconds,
                dry_run=dry_run,
            )
        else:
            report["checkpoints"] = {"examined": 0, "removed": 0, "retained": 0}

        now = time.time()
        report["results"] = self._prune_versions(
            "result", result_keep_versions, result_max_age_seconds,
            grace_seconds, now, dry_run,
        )
        report["chains"] = self._prune_versions(
            "chain", chain_keep_versions, chain_max_age_seconds,
            grace_seconds, now, dry_run,
        )
        if journal_max_segments is not None or journal_max_age_seconds is not None:
            report["journal"] = self.journal.gc(
                max_segments=journal_max_segments,
                max_age_seconds=journal_max_age_seconds,
                dry_run=dry_run,
            )
        else:
            report["journal"] = {"examined": 0, "removed": 0, "retained": 0}
        return report

    def _prune_versions(
        self,
        kind: str,
        keep_versions: Optional[int],
        max_age_seconds: Optional[float],
        grace_seconds: float,
        now: float,
        dry_run: bool,
    ) -> dict:
        """Prune one kind's version history under the shard locks.

        Returns the per-kind GC report section.  Disabled (all zeros) when
        both policies are ``None``.
        """
        if keep_versions is None and max_age_seconds is None:
            return {"examined": 0, "removed": 0, "retained": 0}
        keep = keep_versions if keep_versions is not None else 1
        removed_total = 0
        examined_total = 0
        for shard in range(_NUM_SHARDS):

            def prune(entries: _ShardEntries, shard: int = shard):
                examined = 0
                doomed: List[Tuple[str, dict]] = []
                for name, versions in entries.get(kind, {}).items():
                    examined += len(versions)
                    if len(versions) <= keep:
                        continue
                    candidates = []
                    for record in versions[:-keep]:
                        created = _created_at_epoch(record)
                        if (
                            grace_seconds > 0
                            and created is not None
                            and now - created < grace_seconds
                        ):
                            # Age floor: a version written moments ago may still
                            # be mid-handoff to a peer process — never evict it.
                            continue
                        if max_age_seconds is not None:
                            if created is None or now - created <= max_age_seconds:
                                continue
                        candidates.append(record)
                    if kind == "chain" and candidates:
                        # Delta guard: walk the delta_base references of every
                        # version that survives and rescue any candidate the
                        # walk reaches — evicting a live base would make the
                        # versions built on it unmaterializable.
                        protected = _delta_protected_versions(
                            versions, {record["version"] for record in candidates}
                        )
                        candidates = [
                            record
                            for record in candidates
                            if record["version"] not in protected
                        ]
                    doomed.extend((name, record) for record in candidates)
                if dry_run or not doomed:
                    return (examined, doomed), False
                by_name = entries[kind]
                for name, record in doomed:
                    by_name[name].remove(record)
                    self._journal_append(
                        shard,
                        {
                            "op": "evict",
                            "kind": kind,
                            "name": name,
                            "version": record["version"],
                            "fingerprint": record["fingerprint"],
                            "path": record["path"],
                        },
                    )
                return (examined, doomed), True

            examined, doomed = self._mutate_shard(shard, prune)
            examined_total += examined
            removed_total += len(doomed)
            if not dry_run:
                for _, record in doomed:
                    try:
                        (self.root / record["path"]).unlink()
                    except OSError:
                        pass
        return {
            "examined": examined_total,
            "removed": removed_total,
            "retained": examined_total - removed_total,
        }

    # -- replication apply ---------------------------------------------------------

    def apply_journal_entry(self, entry: dict) -> str:
        """Apply one replicated journal entry into this catalog (idempotent).

        The follower's half of the protocol: entries read from a primary's
        journal are applied *verbatim* — the stored text, index record (with
        its ``created_at`` and delta bookkeeping) and sequence number are
        preserved, so a caught-up replica is fingerprint- and byte-identical
        to its source.  Replay is keyed on content fingerprints: an entry
        whose (version, fingerprint) is already present is skipped, and a
        version number re-assigned by the primary after a crash-before-
        publish replaces the stale record.  Applied entries are re-journaled
        with their original sequence numbers, so a promoted replica's
        journal continues seamlessly and can itself be tailed.

        Returns ``"applied"``, ``"skipped"``, ``"replaced"`` or ``"evicted"``.
        """
        op = entry.get("op")
        kind = entry.get("kind")
        name = entry.get("name")
        self._check_kind(kind)
        self._check_name(name)
        shard = self._shard_id(kind, name)
        seq = entry.get("seq")
        # A higher epoch in a replicated entry is authoritative: the source
        # was promoted past whatever this handle believed.
        try:
            self._note_epoch(int(entry.get("epoch", 0)))
        except (TypeError, ValueError):
            pass

        if op == "put":
            record = dict(entry["record"])
            text = entry["text"]

            def mutate(entries: _ShardEntries) -> Tuple[str, bool]:
                versions = entries.setdefault(kind, {}).setdefault(name, [])
                existing = next(
                    (r for r in versions if r["version"] == record["version"]), None
                )
                if (
                    existing is not None
                    and existing["fingerprint"] == record["fingerprint"]
                ):
                    self._journal_append(shard, entry, seq=seq)
                    return "skipped", False
                self._retry.run(
                    lambda: atomic_write_text(self.root / record["path"], text),
                    stats=self.retry_stats,
                    description=f"mirror {record['path']}",
                )
                self._journal_append(shard, entry, seq=seq)
                if existing is not None:
                    versions[versions.index(existing)] = record
                    return "replaced", True
                versions.append(record)
                versions.sort(key=lambda item: item["version"])
                return "applied", True

            return self._mutate_shard(shard, mutate)

        if op == "evict":
            version = entry.get("version")

            def mutate(entries: _ShardEntries) -> Tuple[str, bool]:
                versions = entries.get(kind, {}).get(name, [])
                existing = next(
                    (r for r in versions if r["version"] == version), None
                )
                self._journal_append(shard, entry, seq=seq)
                if existing is None:
                    return "skipped", False
                versions.remove(existing)
                return "evicted", True

            outcome = self._mutate_shard(shard, mutate)
            if outcome == "evicted" and entry.get("path"):
                try:
                    (self.root / entry["path"]).unlink()
                except OSError:
                    pass
            return outcome

        raise CatalogError(f"unknown journal entry op {op!r}")

    def verify(self, kind: str, name: str, version: Optional[int] = None) -> bool:
        """Recompute one stored version's content fingerprint; ``True`` if it matches.

        Reads the version back from disk (materializing chain deltas),
        re-derives the fingerprint the way the original ``put_*`` did, and
        compares it to the index record — the replica's post-apply check
        that mirrored bytes reproduce the content the primary acknowledged.
        """
        record = self._record(kind, name, version)
        expected = record["fingerprint"]
        if kind == "chain":
            actual = chain_fingerprint(
                self._chain_from_record(name, self._versions(kind, name), record)
            ).hex()
            return actual == expected
        text = self.text(kind, name, record["version"])
        try:
            if kind == "schema":
                actual = signature_from_text(text).fingerprint().hex()
            elif kind == "mapping":
                actual = mapping_from_text(text).fingerprint().hex()
            elif kind == "problem":
                actual = problem_from_text(text).fingerprint().hex()
            else:  # result: the structural fingerprint over the parsed record
                actual = _result_fingerprint(result_from_text(text)).hex()
        except ParseError:
            return False
        return actual == expected

    # -- queries -------------------------------------------------------------------

    def entry(self, kind: str, name: str, version: Optional[int] = None) -> CatalogEntry:
        """The :class:`CatalogEntry` of one version (latest by default)."""
        return self._entry_from_record(kind, name, self._record(kind, name, version))

    def versions(self, kind: str, name: str) -> Tuple[CatalogEntry, ...]:
        """Every stored version of one name, oldest first."""
        return tuple(
            self._entry_from_record(kind, name, record)
            for record in self._versions(kind, name)
        )

    def names(self, kind: str) -> Tuple[str, ...]:
        """The stored names of one kind, sorted."""
        self._check_kind(kind)
        collected = set()
        for shard in range(_NUM_SHARDS):
            collected.update(self._shard_entries(shard).get(kind, {}))
        return tuple(sorted(collected))

    def entries(self, kind: Optional[str] = None) -> Tuple[CatalogEntry, ...]:
        """Latest version of every stored name (optionally of one kind)."""
        kinds = (kind,) if kind is not None else KINDS
        collected = []
        for each in kinds:
            self._check_kind(each)
            for name in self.names(each):
                collected.append(self.entry(each, name))
        return tuple(collected)

    def find_fingerprint(self, fingerprint: str) -> Tuple[CatalogEntry, ...]:
        """Every entry (any kind, any version) whose content has this fingerprint."""
        matches = []
        for kind, by_name in self._combined_index().items():
            for name, versions in by_name.items():
                for record in versions:
                    if record["fingerprint"] == fingerprint:
                        matches.append(self._entry_from_record(kind, name, record))
        return tuple(matches)

    def __len__(self) -> int:
        """Total number of stored versions across all kinds and names."""
        return sum(
            len(versions)
            for by_name in self._combined_index().values()
            for versions in by_name.values()
        )

    def stats(self) -> Dict[str, object]:
        """Per-kind name/version counts plus checkpoint-store counters."""
        combined = self._combined_index()
        per_kind = {}
        total = 0
        for kind in KINDS:
            by_name = combined.get(kind, {})
            versions = sum(len(records) for records in by_name.values())
            per_kind[kind] = {"names": len(by_name), "versions": versions}
            total += versions
        stats: Dict[str, object] = {"kinds": per_kind, "total_versions": total}
        if self._checkpoints is not None:
            stats["checkpoints"] = self._checkpoints.stats()
        if self._journal is not None:
            stats["journal"] = self._journal.stats()
            stats["epoch"] = self.epoch
        stats["retries"] = self.retry_stats.snapshot()
        return stats

    def __repr__(self) -> str:
        return f"<MappingCatalog at {str(self.root)!r}: {len(self)} stored versions>"


def _delta_protected_versions(versions: List[dict], doomed: set) -> set:
    """Version numbers that GC must not evict because a survivor depends on them.

    Walks the ``delta_base`` reference chain starting from every version
    *not* in ``doomed`` and collects each version the walk reaches — the
    walk deliberately continues *through* doomed versions, so a transitive
    base (survivor → doomed delta → doomed base) is rescued too.
    """
    by_version = {record["version"]: record for record in versions}
    protected: set = set()
    for record in versions:
        if record["version"] in doomed:
            continue
        current = record
        while True:
            base_version = current.get("delta_base")
            if base_version is None or base_version in protected:
                break
            protected.add(base_version)
            current = by_version.get(base_version)
            if current is None:
                break
    return protected


def _record_name(text: str) -> str:
    name = parse_record(text).name
    if not name:
        raise CatalogError(
            "record declares no '# name:'; pass an explicit name to store it"
        )
    return name


def _record_description(text: str) -> str:
    return parse_record(text).description
