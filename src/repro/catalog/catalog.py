"""The mapping catalog: a disk-backed, versioned store of named objects.

The paper frames COMPOSE as one operator inside a model-management system
that keeps *many* named schemas and mappings alive over time.  This module
is that memory: a :class:`MappingCatalog` persists schemas, mappings, whole
mapping chains, composition problems and composed results under stable names,
serialized in the extended plain-text format of :mod:`repro.textio.records`
(the paper's own distribution syntax), with

* **content addressing** — every stored version is keyed by its deterministic
  content fingerprint (:mod:`repro.algebra.digest`), so re-registering
  identical content is a no-op that returns the existing version;
* **version history** — registering changed content under an existing name
  appends a new version instead of overwriting (a schema-evolution edit is a
  new catalog version, never a lost one);
* **atomic writes** — record files and the JSON index are replaced atomically
  (:mod:`repro.catalog.storage`), so a crash never leaves a torn file; and
* **durable hop checkpoints** — the catalog owns a
  :class:`~repro.catalog.checkpoints.PersistentCheckpointStore` under its
  root, so ``compose_chain`` prefix reuse survives process restarts.

On-disk layout::

    <root>/catalog.json                     the index (version history per name)
    <root>/objects/<kind>/<name>/v<N>.txt   one record file per stored version
    <root>/checkpoints/<token>.ckpt         pickled hop checkpoints

The catalog is safe for concurrent readers and threaded writers within one
process (one writer mutates the index at a time under an internal lock).
Multiple *processes* writing the same root concurrently are not coordinated —
run one catalog-owning service per root, which is exactly what
:mod:`repro.service` provides.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.algebra.digest import DIGEST_SIZE
from repro.catalog.checkpoints import PersistentCheckpointStore
from repro.catalog.storage import atomic_write_text
from repro.compose.result import CompositionResult
from repro.engine.checkpoint import DEFAULT_MAX_CHECKPOINTS
from repro.engine.fingerprint import chain_fingerprint
from repro.exceptions import CatalogError, ParseError
from repro.mapping.composition_problem import CompositionProblem
from repro.mapping.mapping import Mapping
from repro.schema.signature import Signature
from repro.textio.format import problem_from_text, problem_to_text
from repro.textio.records import (
    chain_from_text,
    chain_to_text,
    detect_kind,
    mapping_from_text,
    mapping_to_text,
    result_from_text,
    result_to_text,
    signature_from_text,
    signature_to_text,
)

__all__ = ["CatalogEntry", "MappingCatalog", "KINDS"]

#: The kinds of objects the catalog stores, in display order.
KINDS = ("schema", "mapping", "chain", "problem", "result")

#: Entry names become path components, so they are restricted to a safe set.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

_INDEX_FILE = "catalog.json"
_INDEX_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CatalogEntry:
    """One stored version of one named object."""

    kind: str
    name: str
    version: int
    fingerprint: str
    created_at: str
    path: str  # record file, relative to the catalog root

    def __repr__(self) -> str:
        return (
            f"<CatalogEntry {self.kind}/{self.name} v{self.version} "
            f"{self.fingerprint[:8]}>"
        )


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _result_fingerprint(result: CompositionResult) -> bytes:
    """Structural fingerprint of a composed result.

    Covers the output content — signatures, residual, constraints, per-symbol
    outcome structure and the planner's orders — but *not* the wall-clock
    timings, so recomposing the same inputs dedupes to one stored version
    even though its timings differ run to run.
    """
    h = blake2b(digest_size=DIGEST_SIZE)
    h.update(result.sigma1.fingerprint())
    h.update(result.residual_sigma2.fingerprint())
    h.update(result.sigma3.fingerprint())
    h.update(result.constraints.fingerprint())
    for outcome in result.outcomes:
        h.update(
            repr(
                (outcome.symbol, outcome.success, outcome.method.value, outcome.blowup_aborted)
            ).encode()
        )
    h.update(repr(result.plan).encode())
    return h.digest()


class MappingCatalog:
    """A persistent, versioned store rooted at one directory."""

    def __init__(
        self,
        root: Union[str, Path],
        checkpoint_max_entries: int = DEFAULT_MAX_CHECKPOINTS,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._checkpoint_max_entries = checkpoint_max_entries
        self._checkpoints: Optional[PersistentCheckpointStore] = None
        self._index: Dict[str, Dict[str, List[dict]]] = self._load_index()

    # -- index persistence ---------------------------------------------------------

    @property
    def _index_path(self) -> Path:
        return self.root / _INDEX_FILE

    def _load_index(self) -> Dict[str, Dict[str, List[dict]]]:
        if not self._index_path.exists():
            return {}
        try:
            payload = json.loads(self._index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CatalogError(f"cannot read catalog index {self._index_path}: {exc}") from exc
        if payload.get("schema_version") != _INDEX_SCHEMA_VERSION:
            raise CatalogError(
                f"catalog index {self._index_path} has schema version "
                f"{payload.get('schema_version')!r}; this library reads version "
                f"{_INDEX_SCHEMA_VERSION}"
            )
        return payload.get("entries", {})

    def _write_index(self) -> None:
        payload = {
            "schema_version": _INDEX_SCHEMA_VERSION,
            "updated_at": _utc_now(),
            "entries": self._index,
        }
        atomic_write_text(self._index_path, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # -- checkpoints ---------------------------------------------------------------

    @property
    def checkpoints(self) -> PersistentCheckpointStore:
        """The catalog's durable hop-checkpoint store (created lazily)."""
        with self._lock:
            if self._checkpoints is None:
                self._checkpoints = PersistentCheckpointStore(
                    self.root / "checkpoints",
                    max_entries=self._checkpoint_max_entries,
                )
            return self._checkpoints

    # -- generic storage -----------------------------------------------------------

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in KINDS:
            raise CatalogError(f"unknown catalog kind {kind!r}; expected one of {KINDS}")

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name or ""):
            raise CatalogError(
                f"invalid entry name {name!r}: names must be 1-128 characters "
                "from [A-Za-z0-9._-] and start with a letter or digit"
            )

    def _entry_from_record(self, kind: str, name: str, record: dict) -> CatalogEntry:
        return CatalogEntry(
            kind=kind,
            name=name,
            version=record["version"],
            fingerprint=record["fingerprint"],
            created_at=record["created_at"],
            path=record["path"],
        )

    def _put(self, kind: str, name: str, text: str, fingerprint: bytes) -> CatalogEntry:
        self._check_kind(kind)
        self._check_name(name)
        digest = fingerprint.hex()
        with self._lock:
            versions = self._index.setdefault(kind, {}).setdefault(name, [])
            if versions and versions[-1]["fingerprint"] == digest:
                # Content-addressed dedupe: identical content is the same version.
                return self._entry_from_record(kind, name, versions[-1])
            version = len(versions) + 1
            relative = f"objects/{kind}/{name}/v{version}.txt"
            atomic_write_text(self.root / relative, text)
            record = {
                "version": version,
                "fingerprint": digest,
                "created_at": _utc_now(),
                "path": relative,
            }
            versions.append(record)
            self._write_index()
            return self._entry_from_record(kind, name, record)

    def _versions(self, kind: str, name: str) -> List[dict]:
        self._check_kind(kind)
        versions = self._index.get(kind, {}).get(name)
        if not versions:
            raise CatalogError(f"no {kind} named {name!r} in the catalog")
        return versions

    def _record(self, kind: str, name: str, version: Optional[int]) -> dict:
        versions = self._versions(kind, name)
        if version is None:
            return versions[-1]
        for record in versions:
            if record["version"] == version:
                return record
        raise CatalogError(
            f"{kind} {name!r} has no version {version} "
            f"(available: 1..{versions[-1]['version']})"
        )

    # -- writing -------------------------------------------------------------------

    def put_schema(self, name: str, signature: Signature, description: str = "") -> CatalogEntry:
        """Store a named schema; identical content returns the existing version."""
        text = signature_to_text(signature, name=name, description=description)
        return self._put("schema", name, text, signature.fingerprint())

    def put_mapping(self, name: str, mapping: Mapping, description: str = "") -> CatalogEntry:
        """Store a named mapping (a schema-evolution edit appends a new version)."""
        text = mapping_to_text(mapping, name=name, description=description)
        return self._put("mapping", name, text, mapping.fingerprint())

    def put_chain(
        self, name: str, mappings: Sequence[Mapping], description: str = ""
    ) -> CatalogEntry:
        """Store a whole mapping chain under one name."""
        text = chain_to_text(mappings, name=name, description=description)
        return self._put("chain", name, text, chain_fingerprint(mappings))

    def put_problem(self, name: str, problem: CompositionProblem) -> CatalogEntry:
        """Store a composition problem (the paper's task-distribution format)."""
        text = "# kind: problem\n" + problem_to_text(problem)
        return self._put("problem", name, text, problem.fingerprint())

    def put_result(
        self, name: str, result: CompositionResult, description: str = ""
    ) -> CatalogEntry:
        """Store a composed result (plan and phase timings included)."""
        text = result_to_text(result, name=name, description=description)
        return self._put("result", name, text, _result_fingerprint(result))

    def add_text(
        self, text: str, name: Optional[str] = None, kind: Optional[str] = None
    ) -> CatalogEntry:
        """Ingest a raw record text (the CLI's ``catalog add``).

        The kind is detected from the ``# kind:`` metadata (kind-less texts in
        the original problem format are accepted as problems); the record is
        parsed back into its object — rejecting malformed input before
        anything touches disk — and stored under ``name`` (defaulting to the
        record's ``# name:`` metadata).
        """
        detected = kind or detect_kind(text)
        self._check_kind(detected)
        try:
            if detected == "schema":
                obj = signature_from_text(text)
                record_name = name or _record_name(text)
                return self.put_schema(record_name, obj, description=_record_description(text))
            if detected == "mapping":
                obj = mapping_from_text(text)
                record_name = name or _record_name(text)
                return self.put_mapping(record_name, obj, description=_record_description(text))
            if detected == "chain":
                obj = chain_from_text(text)
                record_name = name or _record_name(text)
                return self.put_chain(record_name, obj, description=_record_description(text))
            if detected == "result":
                obj = result_from_text(text)
                record_name = name or _record_name(text)
                return self.put_result(record_name, obj, description=_record_description(text))
            problem = problem_from_text(text)
            return self.put_problem(name or problem.name, problem)
        except ParseError as exc:
            raise CatalogError(f"cannot ingest {detected} record: {exc}") from exc

    # -- reading -------------------------------------------------------------------

    def text(self, kind: str, name: str, version: Optional[int] = None) -> str:
        """The stored record text of one version (latest by default)."""
        record = self._record(kind, name, version)
        path = self.root / record["path"]
        try:
            return path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CatalogError(f"catalog file {path} is missing or unreadable: {exc}") from exc

    def get_schema(self, name: str, version: Optional[int] = None) -> Signature:
        return signature_from_text(self.text("schema", name, version))

    def get_mapping(self, name: str, version: Optional[int] = None) -> Mapping:
        return mapping_from_text(self.text("mapping", name, version))

    def get_chain(self, name: str, version: Optional[int] = None) -> Tuple[Mapping, ...]:
        return chain_from_text(self.text("chain", name, version))

    def get_problem(self, name: str, version: Optional[int] = None) -> CompositionProblem:
        return problem_from_text(self.text("problem", name, version))

    def get_result(self, name: str, version: Optional[int] = None) -> CompositionResult:
        return result_from_text(self.text("result", name, version))

    # -- queries -------------------------------------------------------------------

    def entry(self, kind: str, name: str, version: Optional[int] = None) -> CatalogEntry:
        """The :class:`CatalogEntry` of one version (latest by default)."""
        return self._entry_from_record(kind, name, self._record(kind, name, version))

    def versions(self, kind: str, name: str) -> Tuple[CatalogEntry, ...]:
        """Every stored version of one name, oldest first."""
        return tuple(
            self._entry_from_record(kind, name, record)
            for record in self._versions(kind, name)
        )

    def names(self, kind: str) -> Tuple[str, ...]:
        """The stored names of one kind, sorted."""
        self._check_kind(kind)
        return tuple(sorted(self._index.get(kind, {})))

    def entries(self, kind: Optional[str] = None) -> Tuple[CatalogEntry, ...]:
        """Latest version of every stored name (optionally of one kind)."""
        kinds = (kind,) if kind is not None else KINDS
        collected = []
        for each in kinds:
            self._check_kind(each)
            for name in self.names(each):
                collected.append(self.entry(each, name))
        return tuple(collected)

    def find_fingerprint(self, fingerprint: str) -> Tuple[CatalogEntry, ...]:
        """Every entry (any kind, any version) whose content has this fingerprint."""
        matches = []
        for kind, by_name in self._index.items():
            for name, versions in by_name.items():
                for record in versions:
                    if record["fingerprint"] == fingerprint:
                        matches.append(self._entry_from_record(kind, name, record))
        return tuple(matches)

    def __len__(self) -> int:
        """Total number of stored versions across all kinds and names."""
        return sum(
            len(versions)
            for by_name in self._index.values()
            for versions in by_name.values()
        )

    def stats(self) -> Dict[str, object]:
        """Per-kind name/version counts plus checkpoint-store counters."""
        per_kind = {}
        for kind in KINDS:
            by_name = self._index.get(kind, {})
            per_kind[kind] = {
                "names": len(by_name),
                "versions": sum(len(versions) for versions in by_name.values()),
            }
        stats: Dict[str, object] = {"kinds": per_kind, "total_versions": len(self)}
        if self._checkpoints is not None:
            stats["checkpoints"] = self._checkpoints.stats()
        return stats

    def __repr__(self) -> str:
        return f"<MappingCatalog at {str(self.root)!r}: {len(self)} stored versions>"


def _record_name(text: str) -> str:
    from repro.textio.records import parse_record

    name = parse_record(text).name
    if not name:
        raise CatalogError(
            "record declares no '# name:'; pass an explicit name to store it"
        )
    return name


def _record_description(text: str) -> str:
    from repro.textio.records import parse_record

    return parse_record(text).description
