"""The catalog's replication journal: an append-only, per-shard change log.

A shared catalog root (PR 6-7) keeps *one host's* processes consistent; this
module is the cross-host half.  Every index mutation the catalog publishes —
a ``put`` appending a version, a GC ``evict``, a legacy-index migration — is
first appended, fsynced, to this journal, so a replica that tails the journal
and applies its entries reconstructs a fingerprint-identical catalog without
ever reading the primary's index shards.

Layout and format
-----------------

One directory per index shard, segment files named by the sequence number of
their first entry::

    <catalog root>/journal/shard-<NN>/<first-seq, 20 digits>.seg

Each entry is length-prefixed and checksummed::

    +----------------+----------------+------------------------+
    | payload length | CRC32(payload) | payload (JSON, UTF-8)  |
    |   u32, BE      |    u32, BE     |   canonical encoding   |
    +----------------+----------------+------------------------+

The payload is deterministic JSON (sorted keys, compact separators, ASCII),
so encoding the same entry twice yields the same bytes — replicas can compare
journals byte for byte, and the property tests assert the round-trip is
byte-stable.  Entries carry monotonic per-shard ``seq`` numbers starting at
1; the follower's replay cursor is simply its own journal's last sequence.

Durability and recovery
-----------------------

Appends are written with ``O_APPEND`` and fsynced before the caller may
publish the corresponding index mutation (write-ahead order: object file,
journal, index).  A writer that dies mid-append leaves a *torn tail* —
a trailing partial entry whose length/CRC do not check out.  The next
append under the shard lock detects the tear, truncates the segment back
to its last whole entry, and continues; readers simply stop at the first
bad entry (they will see the rest next poll).  Because every acknowledged
mutation was journaled before the index was published, truncating unacked
tail bytes never loses an acknowledged version.

Replay is idempotent: entries carry the content fingerprint of the version
they describe, and :meth:`~repro.catalog.MappingCatalog.apply_journal_entry`
skips entries whose (version, fingerprint) is already present.

Fencing epochs
--------------

Failover needs more than replay: a SIGKILLed primary can *come back*.  The
journal therefore persists a monotonically increasing **fencing epoch** in
``<journal>/EPOCH`` (absent = epoch 0, the never-promoted state).  Promotion
bumps it under a file lock; every local write stamps the writer's adopted
epoch into its journal entry, and the catalog refuses local writes once the
persisted epoch outruns the handle's (or once a ``FENCED`` tombstone names a
higher authority) — the zombie ex-primary gets
:class:`~repro.exceptions.StaleEpochError` instead of split-braining the
store.  Mirroring through ``apply_journal_entry`` stays allowed on a fenced
root, so it can be re-seeded as a follower of the new primary.

Fault points: ``journal.append.torn`` (a prefix of the entry lands and the
append dies), ``journal.append.fsync`` (the fsync fails or stalls),
``journal.replay`` (reading entries back), and ``journal.epoch.write``
(persisting the epoch or the fence tombstone).
"""

from __future__ import annotations

import errno
import json
import os
import struct
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import faults, obs
from repro.catalog.storage import FileLock, atomic_write_text
from repro.exceptions import JournalError

__all__ = [
    "CatalogJournal",
    "encode_entry",
    "decode_entry",
    "scan_entries",
    "DEFAULT_MAX_SEGMENT_BYTES",
]

#: ``>II`` — payload length then CRC32 of the payload, both unsigned 32-bit BE.
_HEADER = struct.Struct(">II")

#: Rotation threshold: a segment past this size stops accepting appends.
DEFAULT_MAX_SEGMENT_BYTES = 1 << 20

#: Entries beyond this are treated as corruption, not data — a garbage length
#: prefix must not make a reader try to allocate gigabytes.
_MAX_ENTRY_BYTES = 64 << 20

_SEGMENT_SUFFIX = ".seg"

#: The persisted fencing epoch (absent = 0) and the fence tombstone.
_EPOCH_FILE = "EPOCH"
_FENCED_FILE = "FENCED"
_EPOCH_LOCK_FILE = "EPOCH.lock"
_EPOCH_LOCK_TIMEOUT_SECONDS = 10.0

#: Follower applied-seq metadata persisted by an ``ack_level=replica``
#: primary; its presence activates the GC retention floor.
_REPLICA_ACKS_FILE = "replica-acks.json"


def encode_entry(payload: dict) -> bytes:
    """One journal entry as bytes: header + canonical JSON payload.

    The JSON encoding is deterministic (sorted keys, compact separators,
    ASCII-only), so ``encode_entry(decode_entry(data)[0]) == data`` holds for
    every well-formed entry — the byte-stability the replication protocol
    and the property tests rely on.
    """
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")
    if len(body) > _MAX_ENTRY_BYTES:
        raise JournalError(f"journal entry of {len(body)} bytes exceeds the size bound")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_entry(data: bytes, offset: int = 0) -> Tuple[dict, int]:
    """Decode the entry at ``offset``; returns ``(payload, next_offset)``.

    Raises :class:`~repro.exceptions.JournalError` on a truncated header or
    body, a CRC mismatch, or an undecodable payload — the conditions a torn
    or corrupted tail presents.
    """
    if offset + _HEADER.size > len(data):
        raise JournalError("truncated journal entry header")
    length, checksum = _HEADER.unpack_from(data, offset)
    if length > _MAX_ENTRY_BYTES:
        raise JournalError(f"journal entry length {length} exceeds the size bound")
    start = offset + _HEADER.size
    end = start + length
    if end > len(data):
        raise JournalError("truncated journal entry body")
    body = data[start:end]
    if zlib.crc32(body) != checksum:
        raise JournalError("journal entry checksum mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"journal entry payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise JournalError("journal entry payload is not a JSON object")
    return payload, end


def scan_entries(data: bytes) -> Tuple[List[dict], int]:
    """Every whole entry in ``data``, plus the byte length they cover.

    Scanning stops at the first truncated/corrupt entry — the torn-tail
    case — and reports how many bytes of clean entries precede it, which is
    exactly where recovery truncates.
    """
    entries: List[dict] = []
    offset = 0
    while offset < len(data):
        try:
            payload, offset = decode_entry(data, offset)
        except JournalError:
            break
        entries.append(payload)
    return entries, offset


class CatalogJournal:
    """Per-shard append-only change logs under one directory.

    Appends must happen under the owning shard's file lock (the catalog calls
    from inside :meth:`~repro.catalog.MappingCatalog._mutate_shard`), which
    serializes sequence assignment across processes; reads take no lock and
    are safe against a concurrently appending writer — a reader that catches
    a half-written tail entry simply stops before it.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        num_shards: int = 16,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ):
        if num_shards < 1:
            raise JournalError("num_shards must be positive")
        if max_segment_bytes < 1:
            raise JournalError("max_segment_bytes must be positive")
        self.directory = Path(directory)
        self.num_shards = num_shards
        self.max_segment_bytes = max_segment_bytes
        #: Torn tails healed by truncation since this handle opened.
        self.truncated_tails = 0
        # Tail cache: shard -> (tail path, size, last seq).  Revalidated by a
        # stat on every append, so another process's appends are picked up.
        self._tails: Dict[int, Tuple[Path, int, int]] = {}
        # Epoch/fence caches: (stat signature, value).  Revalidated by a stat
        # per read, so another process's promotion is observed promptly.
        self._epoch_cache: Optional[Tuple[Tuple[int, int], int]] = None
        self._fenced_cache: Optional[Tuple[Tuple[int, int], int]] = None

    # -- layout --------------------------------------------------------------------

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise JournalError(
                f"shard {shard} out of range (journal has {self.num_shards} shards)"
            )

    def shard_dir(self, shard: int) -> Path:
        self._check_shard(shard)
        return self.directory / f"shard-{shard:02d}"

    @staticmethod
    def _first_seq(path: Path) -> int:
        try:
            return int(path.name[: -len(_SEGMENT_SUFFIX)])
        except ValueError as exc:
            raise JournalError(f"malformed journal segment name {path.name!r}") from exc

    def segments(self, shard: int) -> List[Path]:
        """This shard's segment files, oldest first."""
        directory = self.shard_dir(shard)
        try:
            names = [
                name for name in os.listdir(directory) if name.endswith(_SEGMENT_SUFFIX)
            ]
        except OSError:
            return []
        return [directory / name for name in sorted(names)]

    # -- appending -----------------------------------------------------------------

    def _tail_state(self, shard: int) -> Tuple[Optional[Path], int, int]:
        """``(tail path, clean size, last seq)``; heals a torn tail in passing.

        Only the append path (which holds the shard lock) calls this, so the
        truncation never races another writer; pure readers must not — they
        may be looking at a *live* primary's files over a shared filesystem.
        """
        segments = self.segments(shard)
        if not segments:
            return None, 0, 0
        path = segments[-1]
        try:
            size = os.path.getsize(path)
        except OSError:
            size = -1
        cached = self._tails.get(shard)
        if cached is not None and cached[0] == path and cached[1] == size:
            return cached
        data = path.read_bytes()
        entries, clean = scan_entries(data)
        if clean < len(data):
            # Torn tail: a writer died mid-append.  The partial entry was
            # never acknowledged (the fsync that would have allowed the index
            # publish did not complete), so truncating it loses nothing.
            with open(path, "r+b") as handle:
                handle.truncate(clean)
                handle.flush()
                os.fsync(handle.fileno())
            self.truncated_tails += 1
        if entries:
            last = int(entries[-1].get("seq", 0))
        else:
            # An all-torn (now empty) tail: the segment name records the seq
            # its first entry would have carried.
            last = self._first_seq(path) - 1
        state = (path, clean, last)
        self._tails[shard] = state
        return state

    def append(self, shard: int, payload: dict, seq: Optional[int] = None) -> int:
        """Append one entry, fsynced; returns its sequence number.

        The caller must hold the shard's index lock.  Without ``seq`` the
        next per-shard sequence is assigned; with ``seq`` (a follower
        mirroring a primary's entry) the original number is preserved, and a
        ``seq`` at or below the current tail is an idempotent no-op — the
        entry is already journaled.
        """
        self._check_shard(shard)
        # The span covers the whole durable append — tail rescan, write, and
        # fsync — which is the store's true durability latency.  No-op when
        # the request is untraced.
        with obs.span("journal.append", shard=shard):
            path, size, last = self._tail_state(shard)
            if seq is None:
                seq = last + 1
            elif seq <= last:
                return seq
            entry = dict(payload)
            entry["seq"] = seq
            entry["shard"] = shard
            data = encode_entry(entry)
            if path is None or size >= self.max_segment_bytes:
                path = self.shard_dir(shard) / f"{seq:020d}{_SEGMENT_SUFFIX}"
                size = 0
            self._append_bytes(shard, path, data)
            self._tails[shard] = (path, size + len(data), seq)
            return seq

    def _append_bytes(self, shard: int, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            torn = faults.torn_data("journal.append.torn", data)
            if torn is not None:
                # A torn append: a prefix lands, the writer dies.  The next
                # append (or open) truncates it back — exercised by the
                # chaos suite.
                os.write(fd, torn)
                raise OSError(errno.EIO, f"injected torn journal append to {path}")
            os.write(fd, data)
            faults.fire("journal.append.fsync", path=str(path))
            os.fsync(fd)
        except BaseException:
            # Whatever happened, the tail may now hold torn bytes; drop the
            # cache so the next append rescans and heals.
            self._tails.pop(shard, None)
            raise
        finally:
            os.close(fd)

    # -- reading -------------------------------------------------------------------

    def read_since(
        self, shard: int, since: int = 0, limit: Optional[int] = None
    ) -> List[dict]:
        """Entries with ``seq > since``, oldest first (up to ``limit``).

        Lock-free: safe to call on a live primary's journal (locally or from
        the HTTP journal endpoint).  A half-written tail entry ends the scan;
        the caller sees it completed on a later poll.
        """
        self._check_shard(shard)
        faults.fire("journal.replay", shard=shard, since=since)
        out: List[dict] = []
        segments = self.segments(shard)
        for index, path in enumerate(segments):
            if index + 1 < len(segments) and self._first_seq(segments[index + 1]) <= since + 1:
                continue  # wholly covered by the cursor
            try:
                data = path.read_bytes()
            except OSError:
                continue  # raced a retention sweep
            entries, _ = scan_entries(data)
            for entry in entries:
                if int(entry.get("seq", 0)) <= since:
                    continue
                out.append(entry)
                if limit is not None and len(out) >= limit:
                    return out
        return out

    def last_seq(self, shard: int) -> int:
        """The newest sequence number journaled for ``shard`` (0 when empty).

        Lock-free and read-only (no tail healing) for the same reason as
        :meth:`read_since`.
        """
        self._check_shard(shard)
        segments = self.segments(shard)
        if not segments:
            return 0
        try:
            data = segments[-1].read_bytes()
        except OSError:
            return 0
        entries, _ = scan_entries(data)
        if entries:
            return int(entries[-1].get("seq", 0))
        return self._first_seq(segments[-1]) - 1

    def last_seqs(self) -> Dict[int, int]:
        """Every shard's newest sequence number."""
        return {shard: self.last_seq(shard) for shard in range(self.num_shards)}

    # -- fencing epochs ------------------------------------------------------------

    def _stat_cached_int(self, name: str, cache_attr: str) -> Optional[int]:
        """Read an integer marker file next to the shards, cached by stat."""
        path = self.directory / name
        try:
            st = os.stat(path)
        except OSError:
            setattr(self, cache_attr, None)
            return None
        signature = (st.st_mtime_ns, st.st_size)
        cached = getattr(self, cache_attr)
        if cached is not None and cached[0] == signature:
            return cached[1]
        try:
            value = int(path.read_text(encoding="utf-8").strip() or "0")
        except OSError:
            return None
        except ValueError as exc:
            raise JournalError(f"malformed epoch marker {path}: {exc}") from exc
        setattr(self, cache_attr, (signature, value))
        return value

    def read_epoch(self) -> int:
        """The persisted fencing epoch (0 when this root was never promoted)."""
        value = self._stat_cached_int(_EPOCH_FILE, "_epoch_cache")
        return 0 if value is None else value

    def write_epoch(self, epoch: int) -> int:
        """Persist ``epoch`` (must not regress); returns it.

        Fault point: ``journal.epoch.write``.
        """
        if epoch < 1:
            raise JournalError("epoch must be positive")
        current = self.read_epoch()
        if epoch < current:
            raise JournalError(
                f"fencing epoch is monotonic: cannot write {epoch} over {current}"
            )
        path = self.directory / _EPOCH_FILE
        faults.fire("journal.epoch.write", path=str(path), epoch=epoch)
        atomic_write_text(path, f"{epoch}\n")
        self._epoch_cache = None
        return epoch

    def bump_epoch(self) -> int:
        """Atomically increment and persist the epoch; returns the new value.

        Serialized by a file lock so two racing promotions (the election's
        losing candidate finishing a beat late) still mint distinct epochs.
        """
        with FileLock(
            self.directory / _EPOCH_LOCK_FILE, timeout=_EPOCH_LOCK_TIMEOUT_SECONDS
        ):
            return self.write_epoch(self.read_epoch() + 1)

    def fence(self, epoch: int) -> int:
        """Fence this root off at ``epoch``: local writes must fail from now on.

        A promoted replica calls this on its dead source's root, so a zombie
        ex-primary that resurrects there observes the tombstone and raises
        :class:`~repro.exceptions.StaleEpochError` instead of accepting
        writes.  Mirrored applies stay allowed — the fenced root can be
        re-seeded as a follower of the new primary.
        """
        if epoch < 1:
            raise JournalError("epoch must be positive")
        current = self.fenced_epoch()
        if current is not None and epoch < current:
            return current
        path = self.directory / _FENCED_FILE
        faults.fire("journal.epoch.write", path=str(path), epoch=epoch)
        atomic_write_text(path, f"{epoch}\n")
        self._fenced_cache = None
        return epoch

    def fenced_epoch(self) -> Optional[int]:
        """The epoch this root was fenced at, or ``None`` (not fenced)."""
        return self._stat_cached_int(_FENCED_FILE, "_fenced_cache")

    # -- retention -----------------------------------------------------------------

    def replica_ack_floor(self) -> Optional[Dict[int, int]]:
        """Per-shard minimum follower-acknowledged seq, or ``None``.

        Reads the ``replica-acks.json`` an ``ack_level=replica`` primary
        persists next to the shards.  ``None`` means no ack metadata is
        present (``ack_level=journal`` deployments) — retention falls back to
        the tail-protection rule alone.  A follower that has never reported a
        shard floors it at 0, and unreadable metadata floors *every* shard at
        0: both maximally conservative, nothing is dropped past them.
        """
        path = self.directory / _REPLICA_ACKS_FILE
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        zeros = {shard: 0 for shard in range(self.num_shards)}
        try:
            payload = json.loads(text)
        except ValueError:
            return zeros
        if not isinstance(payload, dict):
            return zeros
        followers = payload.get("followers")
        if not isinstance(followers, dict) or not followers:
            return zeros
        try:
            return {
                shard: min(
                    int(follower.get("applied", {}).get(str(shard), 0))
                    for follower in followers.values()
                )
                for shard in range(self.num_shards)
            }
        except (AttributeError, TypeError, ValueError):
            return zeros

    def gc(
        self,
        max_segments: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        dry_run: bool = False,
    ) -> dict:
        """Bound journal growth by dropping old *whole segments* per shard.

        ``max_segments`` keeps at most that many segments per shard (newest
        retained); ``max_age_seconds`` drops segments not written to for that
        long.  The active tail segment is never removed — it holds the
        sequence counter.  Dropping a segment shortens how far back a
        follower can catch up from this journal; a follower older than the
        retention window must re-seed from a fresh copy of the root.

        With ``ack_level=replica`` metadata present (``replica-acks.json``
        next to the shards), segments holding any entry **above** the minimum
        follower-acknowledged seq are additionally protected, whatever the
        count/age policy says — a slow follower's unacknowledged entries are
        never collected out from under it (``ack_protected`` in the report
        counts the reprieves).
        """
        if max_segments is not None and max_segments < 1:
            raise JournalError("max_segments must be positive")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise JournalError("max_age_seconds must be non-negative")
        now = time.time()
        ack_floor = self.replica_ack_floor()
        examined = removed = ack_protected = 0
        for shard in range(self.num_shards):
            segments = self.segments(shard)
            examined += len(segments)
            if len(segments) <= 1:
                continue
            doomed = []
            candidates = segments[:-1]  # the tail always survives
            if max_segments is not None and len(segments) > max_segments:
                doomed.extend(candidates[: len(segments) - max_segments])
            if max_age_seconds is not None:
                for path in candidates:
                    try:
                        age = now - os.path.getmtime(path)
                    except OSError:
                        continue
                    if age > max_age_seconds and path not in doomed:
                        doomed.append(path)
            if ack_floor is not None and doomed:
                # A candidate's newest entry is the seq just before the next
                # segment starts; dropping it would lose entries a replica
                # has not acknowledged applying yet.
                floor = ack_floor.get(shard, 0)
                survivors = []
                for path in doomed:
                    index = segments.index(path)
                    if self._first_seq(segments[index + 1]) - 1 > floor:
                        ack_protected += 1
                    else:
                        survivors.append(path)
                doomed = survivors
            if dry_run:
                removed += len(doomed)
                continue
            for path in doomed:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return {
            "examined": examined,
            "removed": removed,
            "retained": examined - removed,
            "ack_protected": ack_protected,
            "dry_run": dry_run,
        }

    # -- introspection -------------------------------------------------------------

    def stats(self) -> dict:
        """Per-journal totals: segments, bytes, newest sequence per shard."""
        segments = 0
        size = 0
        last_seqs: Dict[str, int] = {}
        for shard in range(self.num_shards):
            shard_segments = self.segments(shard)
            segments += len(shard_segments)
            for path in shard_segments:
                try:
                    size += os.path.getsize(path)
                except OSError:
                    pass
            last = self.last_seq(shard)
            if last:
                last_seqs[str(shard)] = last
        return {
            "segments": segments,
            "bytes": size,
            "last_seqs": last_seqs,
            "truncated_tails": self.truncated_tails,
        }

    def __repr__(self) -> str:
        return f"<CatalogJournal at {str(self.directory)!r}>"
